"""The codegen backend: per-model specialized kernels from the Plan IR.

The interpreting backends (:mod:`repro.engine.compiled` and its batched
twin) walk the lowered :class:`~repro.engine.plan.Plan` tables every
cycle: dict lookups for the per-``(CS, PH)`` assert/release actions,
tuple iteration over pending driver updates, closure dispatch per
module evaluation.  All of that is *static* per model -- the paper's
clockless RT subset has no runtime scheduler at all -- so this module
compiles it away:

* :func:`generate_source` walks a Plan and emits one specialized
  Python module per model: straight-line code per ``(CS, PH)`` cycle
  with every table lookup, port index, width mask and
  conflict-resolution order constant-folded into the source (no
  per-event dict/tuple dispatch remains).  The module exposes
  ``bind(...)`` returning per-control-step *chunk* thunks for the
  scalar executor and ``bind_batch(...)`` returning their numpy
  plane-sweep twins, plus ``CHUNK_STATS`` with the statically known
  part of the cycle accounting.

* :class:`CodegenCache` stores the generated artifact next to the plan
  cache as ``codegen/v<CODEGEN_VERSION>/<model_digest>.py`` (plus a
  marshal sidecar of the compiled code object, so warm starts skip
  both generation *and* recompilation).  Reads are lenient, mirroring
  :class:`~repro.engine.plan.PlanCache`: a truncated, foreign or
  digest-mismatched artifact is discarded with one RuntimeWarning and
  regenerated.

* :class:`CodegenRTSimulation` (backend ``compiled-py``) and
  :class:`CodegenBatchedRTSimulation` (``compiled-py-batched``)
  subclass the interpreting executors, replacing only the hot loop:
  result surface, stats accounting, traces, conflicts and the
  canonical probe stream are bit-identical (differential-tested in
  ``tests/engine/test_codegen_backend.py``).  Anything the generated
  code cannot reproduce exactly -- a ``max_deltas`` below the schedule
  length (the per-cycle limit check is semantic there), a
  mixed-arity multi-op module, a generation failure -- falls back to
  the interpreter transparently (``codegen_mode == "interpreter"``).

* When the ``repro[jit]`` extra is installed, the bound chunk thunks
  are additionally wrapped with :func:`numba.jit` (object mode --
  the thunks close over Python lists and callbacks); any numba
  absence or wrap failure degrades gracefully to the plain exec'd
  Python (``codegen_mode == "exec"``).  ``REPRO_CODEGEN_JIT=0``
  disables the attempt.

``resolve_codegen`` reports its outcome (``hit`` / ``miss`` / ``off``
plus the build wall time) through
:func:`repro.observe.metrics.record_codegen_request` and the
``codegen_cache`` / ``codegen_build_ms`` / ``codegen_mode`` rows of
:func:`repro.engine.run_metrics`.
"""

from __future__ import annotations

import marshal
import os
import pickle
import sys
import time
import warnings
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, Iterable, List, Mapping, Optional, Tuple, Union

from ..core.diagnostics import ConflictEvent
from ..core.model import RTModel
from ..core.phases import PHASES_PER_STEP
from ..core.values import DISC
from ..observe.emit import emit_canonical_cycle
from .batched import BatchInits, CompiledBatchedRTSimulation
from .compiled import _EXTRA_EVENTS, _SCHED_TX, CompiledRTSimulation
from .plan import (
    _MAGIC,
    PLAN_VERSION,
    Plan,
    PlanCacheArg,
    PlanHandle,
    as_plan_cache,
    default_cache_root,
    warn_entry_once,
)

#: Bump when the generated-module layout changes; versions the artifact
#: directory and the in-file header, so stale artifacts are discarded.
CODEGEN_VERSION = 1

#: Marshal sidecar header magic (the ``.pyc``-style fast-load twin).
_CODE_MAGIC = "repro-codegen-code"

_PH_NAMES = ("RA", "RB", "CM", "WA", "WB", "CR")

#: Per-module op arities, aligned with ``ModulePlan.op_names`` -- the
#: one model-side fact generation needs that the Plan does not carry
#: (operation bodies select their own operand slice).
OpArities = Tuple[Tuple[int, ...], ...]


class CodegenError(RuntimeError):
    """Raised when generation or artifact loading fails terminally."""


# ----------------------------------------------------------------------
# source generation
# ----------------------------------------------------------------------
class _Emitter:
    """Tiny indented-line builder for the generated source."""

    def __init__(self) -> None:
        self.lines: List[str] = []

    def line(self, indent: int, text: str = "") -> None:
        self.lines.append("    " * indent + text if text else "")


def _chunk_ranges(cs_max: int) -> List[Tuple[int, int]]:
    """Cycle-position ranges of the per-control-step chunks.

    Chunk boundaries sit right after each ``(step, RA)`` cycle -- the
    exact positions ``run_steps`` stops at -- so chunk 0 is the lone
    ``(1, RA)`` prelude, chunks ``1 .. cs_max-1`` each cover
    ``RB..CR`` of their step plus the next step's ``RA``, and the
    final chunk covers ``RB..CR`` of step ``cs_max`` plus the
    conditional trailing delta cycle.
    """
    total = cs_max * PHASES_PER_STEP
    ranges = [(0, 1)]
    for s in range(1, cs_max):
        ranges.append(((s - 1) * PHASES_PER_STEP + 1, s * PHASES_PER_STEP + 1))
    ranges.append(((cs_max - 1) * PHASES_PER_STEP + 1, total))
    return ranges


def _cycle_actions(plan: Plan, pos: int):
    """Static actions *scheduled during* cycle ``pos``."""
    step, ph = pos // PHASES_PER_STEP + 1, pos % PHASES_PER_STEP
    key = (step, ph)
    return step, ph, plan.asserts.get(key, ()), plan.releases.get(key, ())


def _dirty_sinks(plan: Plan, acts, rels) -> List[int]:
    """First-touch-ordered sinks of the cycle's driver updates."""
    dirty: List[int] = []
    seen: set = set()
    for drv in [a[0] for a in acts] + list(rels):
        sink = plan.drv_sink[drv]
        if sink not in seen:
            seen.add(sink)
            dirty.append(sink)
    return dirty


def _inline_plan(mp, arities: Tuple[int, ...]):
    """How to inline a module's combine, or None (interpreter closure).

    ``("uniform", a)`` -- every operation takes the same ``a`` operands,
    one shared combine with a dynamic op-table index suffices.
    ``("dispatch", arities)`` -- operand counts differ per operation,
    so the op-code select dispatches to per-operation combine branches
    (each checking exactly its own operand slice, like ``_combine``).
    """
    if not arities:
        return None
    if any(a not in (1, 2) or a > len(mp.in_idxs) for a in arities):
        return None
    if len(set(arities)) == 1:
        return ("uniform", arities[0])
    if mp.op_idx is None:  # pragma: no cover - multi-op implies op port
        return None
    return ("dispatch", arities)


def _combine_expr(fn: str, arity: int, mask: int) -> str:
    """One-line conditional-expression combine for a fixed operation."""
    if arity == 1:
        return (
            f"-2 if _i0 == -2 else -1 if _i0 == -1 "
            f"else {fn}(_i0) % {mask}"
        )
    return (
        f"-2 if _i0 == -2 or _i1 == -2 "
        f"else -1 if _i0 == -1 and _i1 == -1 "
        f"else -2 if _i0 == -1 or _i1 == -1 "
        f"else {fn}(_i0, _i1) % {mask}"
    )


def _emit_combined_scalar(em: _Emitter, ind: int, k: int, mp, inline) -> None:
    """The all-or-none operand combine + §3 op select, into ``_c``.

    Replicates ``compile_module_eval``'s ``combined()`` exactly: an
    out-of-range or ILLEGAL op code poisons the result *before* the
    operand checks, DISC selects the default operation, and results
    reduce modulo ``2**width``.
    """
    mask = 1 << mp.width
    mode, detail = inline
    if mode == "dispatch":
        arities: Tuple[int, ...] = detail
        for j, idx in enumerate(mp.in_idxs[: max(arities)]):
            em.line(ind, f"_i{j} = V[{idx}]")
        em.line(ind, f"_pc = V[{mp.op_idx}]")
        em.line(ind, f"if _pc < -1 or _pc >= {len(mp.op_names)}:")
        em.line(ind + 1, "_c = -2")
        em.line(ind, "elif _pc == -1:")
        em.line(
            ind + 1,
            "_c = "
            + _combine_expr(
                f"_op{k}_{mp.default_code}", arities[mp.default_code], mask
            ),
        )
        for code, arity in enumerate(arities):
            tail = code == len(arities) - 1
            em.line(ind, "else:" if tail else f"elif _pc == {code}:")
            em.line(
                ind + 1,
                "_c = " + _combine_expr(f"_op{k}_{code}", arity, mask),
            )
        return
    arity: int = detail
    for j, idx in enumerate(mp.in_idxs[:arity]):
        em.line(ind, f"_i{j} = V[{idx}]")
    ill = " or ".join(f"_i{j} == -2" for j in range(arity))
    alldisc = " and ".join(f"_i{j} == -1" for j in range(arity))
    anydisc = " or ".join(f"_i{j} == -1" for j in range(arity))
    args = ", ".join(f"_i{j}" for j in range(arity))
    branches: List[Tuple[str, str]] = []
    if mp.op_idx is not None:
        em.line(ind, f"_pc = V[{mp.op_idx}]")
        branches.append((f"_pc < -1 or _pc >= {len(mp.op_names)}", "_c = -2"))
    branches.append((ill, "_c = -2"))
    branches.append((alldisc, "_c = -1"))
    if arity > 1:
        branches.append((anydisc, "_c = -2"))
    if mp.op_idx is not None:
        branches.append(("_pc == -1", f"_c = _opd{k}({args}) % {mask}"))
        tail = f"_c = _ops{k}[_pc]({args}) % {mask}"
    else:
        tail = f"_c = _opd{k}({args}) % {mask}"
    first = True
    for cond, body in branches:
        em.line(ind, f"{'if' if first else 'elif'} {cond}:")
        em.line(ind + 1, body)
        first = False
    em.line(ind, "else:")
    em.line(ind + 1, tail)


def _emit_module_eval_scalar(em: _Emitter, ind: int, k: int, mp, inline) -> None:
    """One CM-phase module evaluation, result in ``_m{k}``.

    Inlines the three state machines of ``compile_module_eval``
    (combinational, pipelined, busy-poisoning non-pipelined, each with
    the sticky-ILLEGAL freeze); a module :func:`_inline_plan` rejects
    falls back to the interpreter closure ``_mev{k}``.
    """
    if inline is None:
        em.line(ind, f"_m{k} = _mev{k}()")
        return
    latency, sticky = mp.latency, mp.sticky_illegal
    if latency == 0:
        if sticky:
            em.line(ind, f"if _f{k}[0]:")
            em.line(ind + 1, f"_m{k} = -2")
            em.line(ind, "else:")
            _emit_combined_scalar(em, ind + 1, k, mp, inline)
            em.line(ind + 1, f"_m{k} = _c")
            em.line(ind + 1, "if _c == -2:")
            em.line(ind + 2, f"_f{k}[0] = 1")
        else:
            _emit_combined_scalar(em, ind, k, mp, inline)
            em.line(ind, f"_m{k} = _c")
        return
    if mp.pipelined:
        body = ind
        if sticky:
            em.line(ind, f"if _f{k}[0]:")
            em.line(ind + 1, f"_m{k} = -2")
            em.line(ind, "else:")
            body = ind + 1
        em.line(body, f"_m{k} = _p{k}[{latency - 1}]")
        _emit_combined_scalar(em, body, k, mp, inline)
        if sticky:
            em.line(body, "if _c == -2:")
            em.line(body + 1, f"_f{k}[0] = 1")
        for j in range(latency - 1, 0, -1):
            em.line(body, f"_p{k}[{j}] = _p{k}[{j - 1}]")
        em.line(body, f"_p{k}[0] = _c")
        return
    # Non-pipelined: remaining/result cells, busy arrivals poison.
    body = ind
    if sticky:
        em.line(ind, f"if _f{k}[0]:")
        em.line(ind + 1, f"_m{k} = -2")
        em.line(ind, "else:")
        body = ind + 1
    _emit_combined_scalar(em, body, k, mp, inline)
    em.line(body, f"_r = _s{k}[0]")
    em.line(body, "if _r > 0:")
    em.line(body + 1, "_r -= 1")
    em.line(body + 1, f"_s{k}[0] = _r")
    em.line(body + 1, "if _c != -1:")
    em.line(body + 2, f"_s{k}[1] = -2")
    em.line(body + 1, f"_m{k} = _s{k}[1] if _r == 0 else -1")
    em.line(body, "elif _c != -1:")
    em.line(body + 1, f"_s{k}[0] = {latency}")
    em.line(body + 1, f"_s{k}[1] = _c")
    em.line(body + 1, f"_m{k} = -1")
    em.line(body, "else:")
    em.line(body + 1, f"_m{k} = -1")
    if sticky:
        em.line(body, f"if _s{k}[1] == -2 and _s{k}[0] == 0:")
        em.line(body + 1, f"_f{k}[0] = 1")


def _emit_apply_scalar(
    em: _Emitter,
    ind: int,
    plan: Plan,
    prev_pos: int,
    pos_const: int,
    conflicts: bool,
    latch_values: Optional[List[str]] = None,
) -> None:
    """Apply the updates cycle ``prev_pos`` scheduled (due this cycle).

    Mirrors the interpreter's ``_apply_pending`` exactly: driver
    contributions land first (asserts in table order, then releases),
    then non-resolved port updates (module outputs after CM, register
    latches after CR, each effective change one event, each non-DISC
    latch one transaction), then the first-touch-ordered dirty sinks
    re-resolve with the conflict-episode bookkeeping.  All values a
    cycle reads are read before it writes anything, which is safe
    because every port is written at most once per apply.
    """
    _step, pph, acts, rels = _cycle_actions(plan, prev_pos)
    mods = list(enumerate(plan.modules)) if pph == 2 else []
    latches = list(plan.reg_ports) if pph == 5 else []
    if not (acts or rels or mods or latches):
        return
    for j, (_drv, src, _const) in enumerate(acts):
        if src is not None:
            em.line(ind, f"_a{j} = V[{src}]")
    if latches and latch_values is None:
        latch_values = []
        for j, (_reg, in_idx, _out) in enumerate(latches):
            em.line(ind, f"_l{j} = V[{in_idx}]")
            latch_values.append(f"_l{j}")
    for j, (drv, src, const) in enumerate(acts):
        value = f"_a{j}" if src is not None else str(const)
        sink = plan.drv_sink[drv]
        if len(plan.sink_drivers[sink]) == 1:
            em.line(ind, f"C[{drv}] = {value}")
            continue
        # Multi-driver sink: keep its incremental resolution state --
        # ND (non-DISC contribution count) and VS (their sum) -- in
        # step, so re-resolution below is O(1) in the sink's fan-in.
        em.line(ind, f"_o = C[{drv}]")
        em.line(ind, f"if _o != {value}:")
        em.line(ind + 1, f"C[{drv}] = {value}")
        if src is None and const != DISC:
            em.line(ind + 1, "if _o == -1:")
            em.line(ind + 2, f"ND[{sink}] += 1")
            em.line(ind + 2, f"VS[{sink}] += {const}")
            em.line(ind + 1, "else:")
            em.line(ind + 2, f"VS[{sink}] += {const} - _o")
        else:
            em.line(ind + 1, "if _o == -1:")
            em.line(ind + 2, f"ND[{sink}] += 1")
            em.line(ind + 2, f"VS[{sink}] += {value}")
            em.line(ind + 1, f"elif {value} == -1:")
            em.line(ind + 2, f"ND[{sink}] -= 1")
            em.line(ind + 2, f"VS[{sink}] -= _o")
            em.line(ind + 1, "else:")
            em.line(ind + 2, f"VS[{sink}] += {value} - _o")
    for drv in rels:
        sink = plan.drv_sink[drv]
        if len(plan.sink_drivers[sink]) == 1:
            em.line(ind, f"C[{drv}] = -1")
            continue
        em.line(ind, f"_o = C[{drv}]")
        em.line(ind, "if _o != -1:")
        em.line(ind + 1, f"C[{drv}] = -1")
        em.line(ind + 1, f"ND[{sink}] -= 1")
        em.line(ind + 1, f"VS[{sink}] -= _o")
    for k, mp in mods:
        em.line(ind, f"if V[{mp.out_idx}] != _m{k}:")
        em.line(ind + 1, f"V[{mp.out_idx}] = _m{k}")
        em.line(ind + 1, "ev += 1")
    for j, (_reg, _in_idx, out_idx) in enumerate(latches):
        lv = latch_values[j]
        em.line(ind, f"if {lv} != -1:")
        em.line(ind + 1, "tx += 1")
        em.line(ind + 1, f"if V[{out_idx}] != {lv}:")
        em.line(ind + 2, f"V[{out_idx}] = {lv}")
        em.line(ind + 2, "ev += 1")
    for sink in _dirty_sinks(plan, acts, rels):
        drivers = plan.sink_drivers[sink]
        if len(drivers) == 1:
            em.line(ind, f"_n = C[{drivers[0]}]")
        else:
            # resolve_rt from the incremental state: no contribution
            # -> DISC, exactly one -> its value (ILLEGAL included),
            # two or more -> ILLEGAL.
            em.line(ind, f"_nd = ND[{sink}]")
            em.line(
                ind,
                f"_n = -1 if _nd == 0 else VS[{sink}] if _nd == 1 else -2",
            )
        em.line(ind, f"if _n != V[{sink}]:")
        em.line(ind + 1, f"V[{sink}] = _n")
        em.line(ind + 1, "ev += 1")
        if conflicts:
            em.line(ind + 1, "if _n == -2:")
            em.line(ind + 2, f"if not A[{sink}]:")
            em.line(ind + 3, f"A[{sink}] = 1")
            em.line(ind + 3, f"K({pos_const}, {sink})")
            em.line(ind + 1, f"elif A[{sink}]:")
            em.line(ind + 2, f"A[{sink}] = 0")
        else:
            em.line(ind + 1, "if _n == -2:")
            em.line(ind + 2, f"A[{sink}] = 1")
            em.line(ind + 1, "else:")
            em.line(ind + 2, f"A[{sink}] = 0")


def _emit_finish_scalar(em: _Emitter, ind: int, plan: Plan) -> None:
    """The conditional trailing delta cycle after the final CR."""
    last = plan.cs_max * PHASES_PER_STEP - 1
    _step, _ph, acts, rels = _cycle_actions(plan, last)
    latches = list(plan.reg_ports)
    has_drv = bool(acts or rels)
    if not (has_drv or latches):
        em.line(ind, "return ev, tx, 0")
        return
    latch_values = []
    for j, (_reg, in_idx, _out) in enumerate(latches):
        em.line(ind, f"_l{j} = V[{in_idx}]")
        latch_values.append(f"_l{j}")
    body = ind
    if not has_drv:
        cond = " or ".join(f"_l{j} != -1" for j in range(len(latches)))
        em.line(ind, f"if {cond}:")
        body = ind + 1
    _emit_apply_scalar(
        em, body, plan, last, last, conflicts=False, latch_values=latch_values
    )
    em.line(body, "return ev, tx, 1")
    if not has_drv:
        em.line(ind, "return ev, tx, 0")


def _emit_bind_scalar(em: _Emitter, plan: Plan, inlines: List) -> None:
    em.line(0, "def bind(values, contrib, act, nd, vs, ops, mev, conflict, hook):")
    em.line(1, '"""Bind the scalar chunk thunks to one executor\'s state.')
    em.line(1, "")
    em.line(1, "``values``/``contrib``/``act`` are the executor's port,")
    em.line(1, "driver-contribution and active-illegal tables, ``nd``/``vs``")
    em.line(1, "the per-sink incremental resolution state (all mutated in")
    em.line(1, "place); ``ops`` the per-module operation-body tuples in op")
    em.line(1, "code order, ``mev`` the interpreter evaluator closures")
    em.line(1, "(fallback for non-inlinable modules), ``conflict(pos, sink)``")
    em.line(1, "and ``hook(pos)`` the runner callbacks.  Returns one thunk")
    em.line(1, "per chunk; each returns (events, transactions, extra_deltas)")
    em.line(1, 'for the dynamic part of the stats accounting."""')
    em.line(1, "V = values")
    em.line(1, "C = contrib")
    em.line(1, "A = act")
    em.line(1, "ND = nd")
    em.line(1, "VS = vs")
    em.line(1, "H = hook")
    em.line(1, "K = conflict")
    em.line(1, "HN = hook is not None")
    for k, mp in enumerate(plan.modules):
        if inlines[k] is None:
            em.line(1, f"_mev{k} = mev[{k}]")
            continue
        if inlines[k][0] == "dispatch":
            for code in range(len(mp.op_names)):
                em.line(1, f"_op{k}_{code} = ops[{k}][{code}]")
        else:
            em.line(1, f"_ops{k} = ops[{k}]")
            em.line(1, f"_opd{k} = _ops{k}[{mp.default_code}]")
        if mp.latency == 0:
            if mp.sticky_illegal:
                em.line(1, f"_f{k} = [0]")
        elif mp.pipelined:
            em.line(1, f"_p{k} = [-1] * {mp.latency}")
            if mp.sticky_illegal:
                em.line(1, f"_f{k} = [0]")
        else:
            em.line(1, f"_s{k} = [0, -1]")
            if mp.sticky_illegal:
                em.line(1, f"_f{k} = [0]")
    ranges = _chunk_ranges(plan.cs_max)
    for ci, (lo, hi) in enumerate(ranges):
        final = ci == len(ranges) - 1
        em.line(1, f"def _k{ci}():")
        em.line(2, "ev = 0")
        em.line(2, "tx = 0")
        for pos in range(lo, hi):
            step, ph, _acts, _rels = _cycle_actions(plan, pos)
            em.line(2, f"# ({step}, {_PH_NAMES[ph]})")
            if pos > 0:
                _emit_apply_scalar(em, 2, plan, pos - 1, pos, conflicts=True)
            em.line(2, "if HN:")
            em.line(3, f"H({pos})")
            if ph == 2:
                for k, mp in enumerate(plan.modules):
                    _emit_module_eval_scalar(em, 2, k, mp, inlines[k])
        if final:
            _emit_finish_scalar(em, 2, plan)
        else:
            em.line(2, "return ev, tx, 0")
    em.line(1, "return (" + ", ".join(f"_k{ci}" for ci in range(len(ranges))) + ",)")


def _emit_apply_batch(
    em: _Emitter,
    ind: int,
    plan: Plan,
    prev_pos: int,
    pos_const: int,
    conflicts: bool,
    latch_values: Optional[List[Tuple[str, str]]] = None,
) -> None:
    """The numpy plane-sweep twin of :func:`_emit_apply_scalar`.

    Same ordering contract; per-lane change counts feed events, lane
    masks gate latches, and newly-ILLEGAL lane masks go to the
    conflict callback (recorded per lane in ascending order).
    """
    _step, pph, acts, rels = _cycle_actions(plan, prev_pos)
    mods = list(enumerate(plan.modules)) if pph == 2 else []
    latches = list(plan.reg_ports) if pph == 5 else []
    if not (acts or rels or mods or latches):
        return
    for j, (_drv, src, _const) in enumerate(acts):
        if src is not None:
            em.line(ind, f"_a{j} = V[:, {src}]")
    if latches and latch_values is None:
        latch_values = []
        for j, (_reg, in_idx, _out) in enumerate(latches):
            em.line(ind, f"_l{j} = V[:, {in_idx}]")
            em.line(ind, f"_ln{j} = _l{j} != -1")
            latch_values.append((f"_l{j}", f"_ln{j}"))
    for j, (drv, src, const) in enumerate(acts):
        em.line(
            ind, f"C[:, {drv}] = " + (f"_a{j}" if src is not None else str(const))
        )
    for drv in rels:
        em.line(ind, f"C[:, {drv}] = -1")
    for k, mp in mods:
        em.line(ind, f"_cur = V[:, {mp.out_idx}]")
        em.line(ind, f"_cnt = int((_m{k} != _cur).sum())")
        em.line(ind, "if _cnt:")
        em.line(ind + 1, f"V[:, {mp.out_idx}] = _m{k}")
        em.line(ind + 1, "ev += _cnt")
    for j, (_reg, _in_idx, out_idx) in enumerate(latches):
        lv, ln = latch_values[j]
        em.line(ind, f"_lc = int({ln}.sum())")
        em.line(ind, "if _lc:")
        em.line(ind + 1, "tx += _lc")
        em.line(ind + 1, f"_cur = V[:, {out_idx}]")
        em.line(ind + 1, f"_new = _np.where({ln}, {lv}, _cur)")
        em.line(ind + 1, "_cnt = int((_new != _cur).sum())")
        em.line(ind + 1, "if _cnt:")
        em.line(ind + 2, f"V[:, {out_idx}] = _new")
        em.line(ind + 2, "ev += _cnt")
    for sink in _dirty_sinks(plan, acts, rels):
        drivers = plan.sink_drivers[sink]
        if len(drivers) == 1:
            em.line(ind, f"_new = C[:, {drivers[0]}]")
        else:
            cols = ", ".join(str(d) for d in drivers)
            em.line(ind, f"_new = _rb(C[:, ({cols})])")
        em.line(ind, f"_cur = V[:, {sink}]")
        em.line(ind, "_ch = _new != _cur")
        em.line(ind, "_cnt = int(_ch.sum())")
        em.line(ind, "if _cnt:")
        em.line(ind + 1, f"V[:, {sink}] = _new")
        em.line(ind + 1, "ev += _cnt")
        em.line(ind + 1, "_ill = _new == -2")
        em.line(ind + 1, f"_ac = A[:, {sink}]")
        if conflicts:
            em.line(ind + 1, "_nw = _ch & _ill & ~_ac")
            em.line(
                ind + 1,
                f"A[:, {sink}] = (_ac | _nw) & ~(_ch & ~_ill)",
            )
            em.line(ind + 1, "if _nw.any():")
            em.line(ind + 2, f"K({pos_const}, {sink}, _nw)")
        else:
            em.line(
                ind + 1,
                f"A[:, {sink}] = (_ac | (_ch & _ill & ~_ac)) & ~(_ch & ~_ill)",
            )


def _emit_finish_batch(em: _Emitter, ind: int, plan: Plan) -> None:
    last = plan.cs_max * PHASES_PER_STEP - 1
    _step, _ph, acts, rels = _cycle_actions(plan, last)
    latches = list(plan.reg_ports)
    has_drv = bool(acts or rels)
    if not (has_drv or latches):
        em.line(ind, "return ev, tx, 0")
        return
    latch_values = []
    for j, (_reg, in_idx, _out) in enumerate(latches):
        em.line(ind, f"_l{j} = V[:, {in_idx}]")
        em.line(ind, f"_ln{j} = _l{j} != -1")
        latch_values.append((f"_l{j}", f"_ln{j}"))
    body = ind
    if not has_drv:
        cond = " or ".join(f"bool(_ln{j}.any())" for j in range(len(latches)))
        em.line(ind, f"if {cond}:")
        body = ind + 1
    _emit_apply_batch(
        em, body, plan, last, last, conflicts=False, latch_values=latch_values
    )
    em.line(body, "return ev, tx, 1")
    if not has_drv:
        em.line(ind, "return ev, tx, 0")


def _emit_bind_batch(em: _Emitter, plan: Plan) -> None:
    em.line(0, "def bind_batch(np, resolve_batch, values, contrib, act, mev,")
    em.line(0, "               conflict, hook, n):")
    em.line(1, '"""Bind the numpy plane-sweep chunk thunks (batched twin).')
    em.line(1, "")
    em.line(1, "``values`` is the (N, ports) value plane, ``contrib`` the")
    em.line(1, "(N, drivers) contribution plane, ``act`` the (N, ports)")
    em.line(1, "active-illegal mask; module evaluation reuses the")
    em.line(1, "vectorized ``mev`` closures.  ``conflict(pos, sink, lanes)``")
    em.line(1, 'receives the newly-ILLEGAL lane mask."""')
    em.line(1, "V = values")
    em.line(1, "C = contrib")
    em.line(1, "A = act")
    em.line(1, "H = hook")
    em.line(1, "K = conflict")
    em.line(1, "HN = hook is not None")
    em.line(1, "_np = np")
    em.line(1, "_rb = resolve_batch")
    for k in range(len(plan.modules)):
        em.line(1, f"_mev{k} = mev[{k}]")
    ranges = _chunk_ranges(plan.cs_max)
    for ci, (lo, hi) in enumerate(ranges):
        final = ci == len(ranges) - 1
        em.line(1, f"def _b{ci}():")
        em.line(2, "ev = 0")
        em.line(2, "tx = 0")
        for pos in range(lo, hi):
            step, ph, _acts, _rels = _cycle_actions(plan, pos)
            em.line(2, f"# ({step}, {_PH_NAMES[ph]})")
            if pos > 0:
                _emit_apply_batch(em, 2, plan, pos - 1, pos, conflicts=True)
            em.line(2, "if HN:")
            em.line(3, f"H({pos})")
            if ph == 2:
                for k in range(len(plan.modules)):
                    em.line(2, f"_m{k} = _mev{k}()")
        if final:
            _emit_finish_batch(em, 2, plan)
        else:
            em.line(2, "return ev, tx, 0")
    em.line(1, "return (" + ", ".join(f"_b{ci}" for ci in range(len(ranges))) + ",)")


def _chunk_stats(plan: Plan) -> List[Tuple[int, int, int, int]]:
    """Statically known per-chunk stats: (cycles, base events,
    bookkeeping transactions, per-lane action transactions)."""
    total = plan.cs_max * PHASES_PER_STEP
    rows = []
    for lo, hi in _chunk_ranges(plan.cs_max):
        cycles = hi - lo
        ev_base = 0
        tx_once = 0
        tx_pern = 0
        for pos in range(lo, hi):
            _step, ph, acts, rels = _cycle_actions(plan, pos)
            ev_base += 1 + _EXTRA_EVENTS.get(ph, 0)
            if pos < total - 1 or ph != 5:
                tx_once += _SCHED_TX[ph]
            tx_pern += len(acts) + len(rels)
            if ph == 2:
                tx_pern += len(plan.modules)
        rows.append((cycles, ev_base, tx_once, tx_pern))
    return rows


def generate_source(plan: Plan, op_arities: OpArities) -> str:
    """Emit the specialized executor module for ``plan``.

    ``op_arities`` carries, per module, the operand count of each
    operation in ``op_names`` order (from the live model -- the one
    behavioral fact the Plan does not record).  The output is a
    self-contained Python module: header constants, ``CHUNK_STATS``,
    the ``_rs`` resolution helper, ``bind`` and ``bind_batch``.
    """
    if len(op_arities) != len(plan.modules):
        raise CodegenError(
            f"op_arities covers {len(op_arities)} modules, "
            f"plan has {len(plan.modules)}"
        )
    inlines: List = [
        _inline_plan(mp, op_arities[k]) for k, mp in enumerate(plan.modules)
    ]
    em = _Emitter()
    em.line(0, '"""Generated by repro.engine.codegen -- DO NOT EDIT.')
    em.line(0, "")
    em.line(0, f"Specialized straight-line executor for model {plan.name!r}:")
    em.line(0, "one function per control-step chunk, all (CS, PH) action")
    em.line(0, "tables, port indices, width masks and resolution orders")
    em.line(0, "constant-folded from the Plan IR.  Inspect or regenerate")
    em.line(0, "with `repro plan <model> --emit-code`.")
    em.line(0, '"""')
    em.line(0, f"CODEGEN_VERSION = {CODEGEN_VERSION}")
    em.line(0, f'PLAN_DIGEST = "{plan.digest}"')
    em.line(0, f"MODEL_NAME = {plan.name!r}")
    em.line(0, f"CS_MAX = {plan.cs_max}")
    em.line(0, f"NUM_PORTS = {plan.num_ports}")
    em.line(0, f"NUM_DRIVERS = {plan.num_drivers}")
    em.line(0, "# per chunk: (cycles, base_events, bookkeeping_tx, per_lane_tx)")
    stats = ", ".join(repr(row) for row in _chunk_stats(plan))
    em.line(0, f"CHUNK_STATS = ({stats},)")
    em.line(0)
    _emit_bind_scalar(em, plan, inlines)
    em.line(0)
    _emit_bind_batch(em, plan)
    return "\n".join(em.lines) + "\n"


def model_op_arities(model: RTModel, plan: Plan) -> OpArities:
    """Per-module operation arities, aligned with each ModulePlan's
    ``op_names`` (the ``op_arities`` argument of
    :func:`generate_source`)."""
    return tuple(
        tuple(
            model.modules[mp.name].operations[name].arity
            for name in mp.op_names
        )
        for mp in plan.modules
    )


# ----------------------------------------------------------------------
# the artifact cache
# ----------------------------------------------------------------------
class CodegenCache:
    """Content-addressed generated-artifact store.

    Artifacts live at ``<root>/codegen/v<CODEGEN_VERSION>/<digest>.py``
    next to the plan cache's ``plans/v<PLAN_VERSION>`` directory, with
    a ``<digest>.pyc`` marshal sidecar holding the compiled code
    object (keyed to the interpreter version) so warm starts skip
    recompilation too.  Reads are lenient: a truncated, foreign or
    digest-mismatched artifact is discarded with one RuntimeWarning
    per path per process and the caller regenerates.  Writes are
    atomic and best-effort, like :class:`~repro.engine.plan.PlanCache`.
    """

    def __init__(self, root: Optional[Union[str, Path]] = None) -> None:
        self.root = Path(root) if root is not None else default_cache_root()

    def path_for(self, digest: str) -> Path:
        return self.root / "codegen" / f"v{CODEGEN_VERSION}" / f"{digest}.py"

    def code_path_for(self, digest: str) -> Path:
        return self.path_for(digest).with_suffix(".pyc")

    def get(self, digest: str) -> Optional[str]:
        """The artifact source text, or None (missing / discarded)."""
        path = self.path_for(digest)
        try:
            text = path.read_text(encoding="utf-8")
        except OSError:
            return None
        if (
            f"CODEGEN_VERSION = {CODEGEN_VERSION}" not in text
            or f'PLAN_DIGEST = "{digest}"' not in text
        ):
            self.discard(digest, "stale or foreign artifact header")
            return None
        return text

    def get_code(self, digest: str):
        """The compiled code object from the sidecar, else None.

        Silent on any mismatch -- the sidecar is purely a fast path;
        the caller recompiles from the source text.
        """
        try:
            payload = marshal.loads(self.code_path_for(digest).read_bytes())
            if (
                not isinstance(payload, tuple)
                or len(payload) != 5
                or payload[0] != _CODE_MAGIC
                or payload[1] != CODEGEN_VERSION
                or payload[2] != list(sys.version_info[:2])
                or payload[3] != digest
            ):
                return None
            return payload[4]
        except Exception:
            return None

    def put(self, digest: str, text: str, code=None) -> bool:
        path = self.path_for(digest)
        tmp = path.with_name(f".{path.name}.tmp-{os.getpid()}")
        try:
            path.parent.mkdir(parents=True, exist_ok=True)
            tmp.write_text(text, encoding="utf-8")
            os.replace(tmp, path)
        except OSError:
            # Advisory cache: an unwritable root must not fail the run.
            try:
                tmp.unlink()
            except OSError:
                pass
            return False
        if code is not None:
            self.put_code(digest, code)
        return True

    def put_code(self, digest: str, code) -> bool:
        path = self.code_path_for(digest)
        tmp = path.with_name(f".{path.name}.tmp-{os.getpid()}")
        try:
            payload = marshal.dumps(
                (_CODE_MAGIC, CODEGEN_VERSION, list(sys.version_info[:2]),
                 digest, code)
            )
            path.parent.mkdir(parents=True, exist_ok=True)
            tmp.write_bytes(payload)
            os.replace(tmp, path)
        except (OSError, ValueError):
            try:
                tmp.unlink()
            except OSError:
                pass
            return False
        return True

    def discard(self, digest: str, reason: str) -> None:
        path = self.path_for(digest)
        warn_entry_once(
            path,
            f"codegen cache: discarding unusable artifact {path} "
            f"({reason}); regenerating",
        )
        for target in (path, self.code_path_for(digest)):
            try:
                target.unlink()
            except OSError:
                pass


def as_codegen_cache(plan_cache: PlanCacheArg) -> Optional[CodegenCache]:
    """The codegen cache sharing a ``plan_cache`` argument's root."""
    cache = as_plan_cache(plan_cache)
    if cache is None:
        return None
    return CodegenCache(cache.root)


# ----------------------------------------------------------------------
# resolution
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class CodegenHandle:
    """A loaded generated module plus where it came from.

    ``source`` is ``"hit"`` / ``"miss"`` (artifact cache consulted) or
    ``"off"`` (no cache configured); ``build_ms`` the wall time of
    resolution -- generate + compile + exec on a miss, load + exec on
    a hit.
    """

    module: Dict[str, Any]
    source: str
    build_ms: float


#: In-process memo: digest -> (namespace, source text).  Saves repeat
#: generation when the same model is elaborated again without a disk
#: cache (and fills a configured cache from memory on a miss).
_MEMO: Dict[str, Tuple[Dict[str, Any], str]] = {}


def _compile_artifact(text: str, digest: str):
    return compile(text, f"<repro-codegen:{digest[:16]}>", "exec")


def _exec_artifact(code, digest: str) -> Dict[str, Any]:
    namespace: Dict[str, Any] = {"__name__": f"repro_codegen_{digest[:16]}"}
    exec(code, namespace)
    if (
        namespace.get("CODEGEN_VERSION") != CODEGEN_VERSION
        or namespace.get("PLAN_DIGEST") != digest
        or not callable(namespace.get("bind"))
        or not callable(namespace.get("bind_batch"))
        or not isinstance(namespace.get("CHUNK_STATS"), tuple)
    ):
        raise CodegenError("artifact failed validation after exec")
    return namespace


def resolve_codegen(
    plan: Plan,
    op_arities: OpArities,
    plan_cache: PlanCacheArg = None,
) -> CodegenHandle:
    """Resolve the generated executor module for ``plan``.

    Precedence: artifact-cache hit (validated; corrupt entries are
    discarded with one warning and degrade to a miss), then the
    in-process memo, then a fresh :func:`generate_source` (which also
    fills the cache).  Reports the outcome to the process metrics
    registry, mirroring plan resolution.
    """
    from ..observe.metrics import record_codegen_request

    t0 = time.perf_counter()
    cache = as_codegen_cache(plan_cache)
    digest = plan.digest
    state = "off"
    namespace: Optional[Dict[str, Any]] = None
    if cache is not None:
        text = cache.get(digest)
        state = "miss" if text is None else "hit"
        if text is not None:
            try:
                code = cache.get_code(digest)
                if code is None:
                    code = _compile_artifact(text, digest)
                    cache.put_code(digest, code)
                namespace = _exec_artifact(code, digest)
            except Exception as exc:
                cache.discard(digest, str(exc))
                namespace = None
                state = "miss"
    if namespace is None:
        memo = _MEMO.get(digest)
        if memo is not None:
            namespace, text = memo
            if cache is not None:
                cache.put(digest, text, _compile_artifact(text, digest))
        else:
            text = generate_source(plan, op_arities)
            try:
                code = _compile_artifact(text, digest)
                namespace = _exec_artifact(code, digest)
            except CodegenError:
                raise
            except Exception as exc:  # pragma: no cover - generator bug
                raise CodegenError(
                    f"generated module failed to compile: {exc}"
                ) from exc
            if cache is not None:
                cache.put(digest, text, code)
        _MEMO[digest] = (namespace, text)
    else:
        _MEMO.setdefault(digest, (namespace, text))
    build_ms = (time.perf_counter() - t0) * 1000.0
    record_codegen_request(state, build_ms)
    return CodegenHandle(namespace, state, build_ms)


#: Memoized numba module (False = import failed).  A *failed* import
#: is not cached by Python -- it re-scans sys.path every time -- and
#: _jit_chunks runs once per elaboration, which profiles as ~40% of a
#: warm-plan scalar elaborate when numba is absent.
_NUMBA: Any = None


def _jit_chunks(chunks):
    """numba-wrap the bound chunk thunks (``repro[jit]``), else None.

    Object-mode compilation -- the thunks close over Python lists and
    callbacks -- attempted only when numba imports; any failure
    degrades to the plain exec'd thunks.  ``REPRO_CODEGEN_JIT=0``
    disables the attempt.
    """
    flag = os.environ.get("REPRO_CODEGEN_JIT", "").strip().lower()
    if flag in ("0", "off", "no", "false"):
        return None
    global _NUMBA
    if _NUMBA is None:
        try:
            import numba  # type: ignore[import-not-found]
            _NUMBA = numba
        except Exception:
            _NUMBA = False
    if _NUMBA is False:
        return None
    numba = _NUMBA
    try:
        with warnings.catch_warnings():
            warnings.simplefilter("ignore")
            return tuple(
                numba.jit(forceobj=True, cache=False)(fn) for fn in chunks
            )
    except Exception:
        return None


# ----------------------------------------------------------------------
# the executors
# ----------------------------------------------------------------------
class CodegenRTSimulation(CompiledRTSimulation):
    """The ``compiled-py`` backend: generated straight-line executor.

    Subclasses :class:`CompiledRTSimulation` -- same constructor, same
    result surface, bit-identical observable behaviour -- replacing
    the interpreting cycle walk with the bound chunk thunks of the
    model's generated module.  ``codegen_mode`` reports what actually
    runs (``exec`` / ``numba`` / ``interpreter`` when generation is
    unavailable or ``max_deltas`` demands the per-cycle limit check);
    ``codegen_cache_state`` / ``codegen_build_ms`` feed run_metrics.
    """

    backend_name = "compiled-py"

    def __init__(
        self,
        model: RTModel,
        register_values: Optional[Mapping[str, int]] = None,
        trace: bool = False,
        watch: Optional[Iterable[str]] = None,
        max_deltas: int = 1_000_000,
        transfer_engine: bool = True,
        observe=None,
        plan: Union[None, Plan, PlanHandle] = None,
        plan_cache: PlanCacheArg = None,
    ) -> None:
        super().__init__(
            model,
            register_values=register_values,
            trace=trace,
            watch=watch,
            max_deltas=max_deltas,
            transfer_engine=transfer_engine,
            observe=observe,
            plan=plan,
            plan_cache=plan_cache,
        )
        self.codegen_cache_state: str = "off"
        self.codegen_build_ms: float = 0.0
        self.codegen_mode: str = "interpreter"
        self._chunks = None
        self._chunk_stats = None
        self._chunk_pos = 0
        if max_deltas < len(self._schedule):
            # The interpreter's per-cycle delta-limit check is
            # semantic here (DeltaCycleLimitError mid-run); stay on it.
            return
        p = self.model_plan
        try:
            handle = resolve_codegen(
                p, model_op_arities(model, p), plan_cache
            )
            ops = tuple(
                tuple(
                    model.modules[mp.name].operations[name].fn
                    for name in mp.op_names
                )
                for mp in p.modules
            )
            mev = tuple(fn for _idx, fn in self._module_evals)
            self._act = bytearray(p.num_ports)
            self._nd = [0] * p.num_ports
            self._vs = [0] * p.num_ports
            chunks = handle.module["bind"](
                self._values,
                self._drv_contrib,
                self._act,
                self._nd,
                self._vs,
                ops,
                mev,
                self._codegen_conflict,
                self._codegen_hook(),
            )
        except Exception as exc:
            warnings.warn(
                f"codegen backend: falling back to the interpreter "
                f"({exc!r})",
                RuntimeWarning,
                stacklevel=2,
            )
            return
        self.codegen_cache_state = handle.source
        self.codegen_build_ms = handle.build_ms
        self._chunk_stats = handle.module["CHUNK_STATS"]
        jitted = _jit_chunks(chunks)
        if jitted is not None:
            self._chunks = jitted
            self.codegen_mode = "numba"
        else:
            self._chunks = chunks
            self.codegen_mode = "exec"

    # -- runner callbacks the generated code invokes -------------------
    def _codegen_conflict(self, pos: int, sink: int) -> None:
        contrib = self._drv_contrib
        sources = tuple(
            (self._drv_owner[d], contrib[d])
            for d in self._sink_drivers[sink]
            if contrib[d] != DISC
        )
        self.monitor.record(
            ConflictEvent(self._names[sink], self._schedule[pos], sources)
        )

    def _codegen_hook(self):
        """The per-cycle observation callback, or None when untraced.

        Fires after each cycle's apply (conflicts stream earlier via
        the monitor listener, exactly the interpreter's order): trace
        sample, then the canonical probe emission with the changed set
        recovered by diffing a kept previous-values snapshot -- valid
        because each port is written at most once per apply.
        """
        tracer = self.tracer
        probe = self._probe
        if tracer is None and probe is None:
            return None
        schedule = self._schedule
        values = self._values
        names = self._names
        items = self._trace_items
        bus_count = self._bus_count
        reg_out = list(self._reg_out_idx.items())
        prev = list(values) if probe is not None else None

        def hook(pos: int) -> None:
            at = schedule[pos]
            if tracer is not None:
                if items is not None:
                    tracer.append(
                        at, {name: values[idx] for name, idx in items}
                    )
                else:
                    tracer.append(at, dict(zip(names, values)))
            if probe is not None:
                changed = [
                    idx
                    for idx in range(len(values))
                    if values[idx] != prev[idx]
                ]
                for idx in changed:
                    prev[idx] = values[idx]
                cs = set(changed)
                drives = [
                    (names[idx], values[idx])
                    for idx in range(bus_count)
                    if idx in cs
                ]
                latches = [
                    (reg, values[idx]) for reg, idx in reg_out if idx in cs
                ]
                emit_canonical_cycle(probe, at, drives, latches)

        return hook

    # -- execution ------------------------------------------------------
    def _run_chunks(self, until: int) -> None:
        chunks = self._chunks
        chunk_stats = self._chunk_stats
        i = self._chunk_pos
        cyc = res = evt = txt = 0
        while i < until:
            ev, tx, extra = chunks[i]()
            cycles, ev_base, tx_once, tx_pern = chunk_stats[i]
            cyc += cycles + extra
            res += cycles
            evt += ev_base + ev
            txt += tx_once + tx_pern + tx
            i += 1
        stats = self.stats
        stats.cycles += cyc
        stats.delta_cycles += cyc
        stats.process_resumes += res
        stats.events += evt
        stats.transactions += txt
        self._chunk_pos = i
        if i >= len(chunks):
            self._pos = len(self._schedule)
            self._finished = True
        elif i:
            self._pos = (i - 1) * PHASES_PER_STEP + 1

    def run(self) -> "CodegenRTSimulation":
        if self._chunks is None:
            super().run()
            return self
        from ..observe.metrics import record_backend_run

        if self._probe is None:
            self._run_chunks(len(self._chunks))
            self._ran = True
            record_backend_run(self)
            return self
        import time as _time

        self._probe.on_run_start(self)
        t0 = _time.perf_counter()
        self._run_chunks(len(self._chunks))
        self._ran = True
        self._probe.on_run_end(self, _time.perf_counter() - t0)
        record_backend_run(self)
        return self

    def run_steps(self, steps: int) -> "CodegenRTSimulation":
        if self._chunks is None:
            super().run_steps(steps)
            return self
        if steps > self.model.cs_max:
            return self.run()
        if steps >= 1:
            self._run_chunks(steps)
        self._ran = True
        return self

    def rearm(
        self, register_values: Optional[Mapping[str, int]] = None
    ) -> "CodegenRTSimulation":
        """Reset to time zero (see the base class).  The generated
        kernel bound the value plane, driver storage and the scratch
        buffers at elaboration time, so all are reset in place."""
        super().rearm(register_values)
        if self._chunks is not None:
            self._act[:] = bytes(len(self._act))
            self._nd[:] = [0] * len(self._nd)
            self._vs[:] = [0] * len(self._vs)
            self._chunk_pos = 0
        return self


class CodegenBatchedRTSimulation(CompiledBatchedRTSimulation):
    """The ``compiled-py-batched`` backend: the generated numpy plane
    sweep over the same artifact's ``bind_batch`` thunks.  Result
    surface and per-lane semantics are those of
    :class:`CompiledBatchedRTSimulation`, bit-identically."""

    backend_name = "compiled-py-batched"

    def __init__(
        self,
        model: RTModel,
        register_values: BatchInits = None,
        trace: bool = False,
        watch: Optional[Iterable[str]] = None,
        max_deltas: int = 1_000_000,
        transfer_engine: bool = True,
        observe=None,
        plan: Union[None, Plan, PlanHandle] = None,
        plan_cache: PlanCacheArg = None,
    ) -> None:
        super().__init__(
            model,
            register_values=register_values,
            trace=trace,
            watch=watch,
            max_deltas=max_deltas,
            transfer_engine=transfer_engine,
            observe=observe,
            plan=plan,
            plan_cache=plan_cache,
        )
        self.codegen_cache_state: str = "off"
        self.codegen_build_ms: float = 0.0
        self.codegen_mode: str = "interpreter"
        self._chunks = None
        self._chunk_stats = None
        self._chunk_pos = 0
        if max_deltas < len(self._schedule):
            return
        from ..core.values_np import resolve_rt_batch

        p = self.model_plan
        try:
            handle = resolve_codegen(
                p, model_op_arities(model, p), plan_cache
            )
            mev = tuple(fn for _idx, fn in self._module_evals)
            chunks = handle.module["bind_batch"](
                self._np,
                resolve_rt_batch,
                self._store.values,
                self._contrib,
                self._active_illegal,
                mev,
                self._codegen_conflict,
                self._codegen_hook(),
                self.batch_size,
            )
        except Exception as exc:
            warnings.warn(
                f"codegen backend: falling back to the interpreter "
                f"({exc!r})",
                RuntimeWarning,
                stacklevel=2,
            )
            return
        self.codegen_cache_state = handle.source
        self.codegen_build_ms = handle.build_ms
        self._chunk_stats = handle.module["CHUNK_STATS"]
        jitted = _jit_chunks(chunks)
        if jitted is not None:
            self._chunks = jitted
            self.codegen_mode = "numba"
        else:
            self._chunks = chunks
            self.codegen_mode = "exec"

    # -- runner callbacks the generated code invokes -------------------
    def _codegen_conflict(self, pos: int, sink: int, newly) -> None:
        np = self._np
        at = self._schedule[pos]
        contrib = self._contrib
        drvs = self._sink_drivers[sink]
        name = self._names[sink]
        for i in np.nonzero(newly)[0]:
            sources = tuple(
                (self._drv_owner[d], int(contrib[i, d]))
                for d in drvs
                if contrib[i, d] != DISC
            )
            self._monitors[int(i)].record(ConflictEvent(name, at, sources))

    def _codegen_hook(self):
        items = self._trace_items
        tracers = self._tracers
        probe = self._probe
        emit_n1 = probe is not None and self.batch_size == 1
        if not tracers and not emit_n1:
            return None
        schedule = self._schedule
        values = self._store.values
        names = self._names
        bus_count = self._bus_count
        reg_out = list(self._reg_out_idx.items())
        prev = values[0].copy() if emit_n1 else None

        def hook(pos: int) -> None:
            at = schedule[pos]
            if items is not None:
                for i, tracer in enumerate(tracers):
                    row = values[i]
                    tracer.append(
                        at, {name: int(row[idx]) for name, idx in items}
                    )
            if emit_n1:
                row = values[0]
                changed = [
                    idx for idx in range(len(names)) if row[idx] != prev[idx]
                ]
                for idx in changed:
                    prev[idx] = row[idx]
                cs = set(changed)
                drives = [
                    (names[idx], int(row[idx]))
                    for idx in range(bus_count)
                    if idx in cs
                ]
                latches = [
                    (reg, int(row[idx]))
                    for reg, idx in reg_out
                    if idx in cs
                ]
                emit_canonical_cycle(probe, at, drives, latches)

        return hook

    # -- execution ------------------------------------------------------
    def _run_chunks(self, until: int) -> None:
        chunks = self._chunks
        chunk_stats = self._chunk_stats
        n = self.batch_size
        i = self._chunk_pos
        cyc = res = evt = txt = 0
        while i < until:
            ev, tx, extra = chunks[i]()
            cycles, ev_base, tx_once, tx_pern = chunk_stats[i]
            cyc += cycles + extra
            res += cycles
            evt += ev_base + ev
            txt += tx_once + tx_pern * n + tx
            i += 1
        stats = self.stats
        stats.cycles += cyc
        stats.delta_cycles += cyc
        stats.process_resumes += res
        stats.events += evt
        stats.transactions += txt
        self._chunk_pos = i
        if i >= len(chunks):
            self._pos = len(self._schedule)
            self._finished = True
        elif i:
            self._pos = (i - 1) * PHASES_PER_STEP + 1

    def run(self) -> "CodegenBatchedRTSimulation":
        if self._chunks is None:
            super().run()
            return self
        from ..observe.metrics import record_backend_run

        if self._probe is None:
            self._run_chunks(len(self._chunks))
            self._ran = True
            record_backend_run(self)
            return self
        import time as _time

        self._probe.on_run_start(self)
        t0 = _time.perf_counter()
        self._run_chunks(len(self._chunks))
        self._ran = True
        self._probe.on_run_end(self, _time.perf_counter() - t0)
        record_backend_run(self)
        return self

    def run_steps(self, steps: int) -> "CodegenBatchedRTSimulation":
        if self._chunks is None:
            super().run_steps(steps)
            return self
        if steps > self.model.cs_max:
            return self.run()
        if steps >= 1:
            self._run_chunks(steps)
        self._ran = True
        return self


# ----------------------------------------------------------------------
# cache garbage collection (``repro plan --gc``)
# ----------------------------------------------------------------------
def _valid_plan_entry(path: Path) -> bool:
    if path.suffix != ".plan" or not _hex_digest(path.stem):
        return False
    try:
        payload = pickle.loads(path.read_bytes())
        return (
            isinstance(payload, tuple)
            and len(payload) == 3
            and payload[0] == _MAGIC
            and payload[1] == PLAN_VERSION
            and isinstance(payload[2], Plan)
            and payload[2].digest == path.stem
        )
    except Exception:
        return False


def _valid_codegen_entry(path: Path) -> bool:
    digest = path.stem
    if not _hex_digest(digest):
        return False
    if path.suffix == ".py":
        try:
            text = path.read_text(encoding="utf-8")
        except OSError:
            return False
        return (
            f"CODEGEN_VERSION = {CODEGEN_VERSION}" in text
            and f'PLAN_DIGEST = "{digest}"' in text
        )
    if path.suffix == ".pyc":
        if not path.with_suffix(".py").exists():
            return False
        return CodegenCache(_cache_root_of(path)).get_code(digest) is not None
    return False


def _cache_root_of(path: Path) -> Path:
    # <root>/codegen/v<N>/<digest>.pyc -> <root>
    return path.parent.parent.parent


def _hex_digest(stem: str) -> bool:
    return len(stem) == 64 and all(c in "0123456789abcdef" for c in stem)


def gc_caches(root: Union[str, Path]) -> Dict[str, Dict[str, Any]]:
    """Prune stale, foreign and leftover entries from a cache root.

    Scans ``plans/v<PLAN_VERSION>`` and ``codegen/v<CODEGEN_VERSION>``
    under ``root``, removing anything that fails validation: foreign
    filenames, truncated or unreadable payloads, digest/filename
    mismatches and abandoned atomic-write temporaries.  Valid entries
    are untouched.  Returns per-kind
    ``{"scanned", "kept", "removed", "removed_names"}`` stats keyed by
    ``"plans"`` / ``"codegen"``.
    """
    root = Path(root)
    targets = [
        ("plans", root / "plans" / f"v{PLAN_VERSION}", _valid_plan_entry),
        (
            "codegen",
            root / "codegen" / f"v{CODEGEN_VERSION}",
            _valid_codegen_entry,
        ),
    ]
    report: Dict[str, Dict[str, Any]] = {}
    for kind, directory, validate in targets:
        scanned = kept = 0
        removed_names: List[str] = []
        if directory.is_dir():
            for path in sorted(directory.iterdir()):
                if not path.is_file():
                    continue
                scanned += 1
                if path.name.startswith(".") and ".tmp-" in path.name:
                    ok = False
                else:
                    ok = validate(path)
                if ok:
                    kept += 1
                    continue
                try:
                    path.unlink()
                    removed_names.append(path.name)
                except OSError:  # pragma: no cover - racing unlink
                    kept += 1
        report[kind] = {
            "scanned": scanned,
            "kept": kept,
            "removed": len(removed_names),
            "removed_names": removed_names,
        }
    return report
