"""The pluggable simulation-engine layer: backend protocol + registry.

Every way of executing a model in this repo -- the event-driven kernel
elaboration (:class:`repro.core.simulator.RTSimulation`), the compiled
control-step executor (:class:`repro.engine.compiled.CompiledRTSimulation`),
the clocked kernel design (:class:`repro.clocked.clocked_sim.ClockedKernelSim`)
and the handshake network (:class:`repro.handshake.network.HandshakeSimulation`)
-- presents the same small surface: run to quiescence, then read
registers, conflicts and :class:`~repro.kernel.SimStats` counters.
:class:`Backend` names that surface; :func:`run_metrics` turns any
conforming backend into one comparable metrics row (used by the E5/E6
benchmarks to compare styles like with like).

RT-model backends -- the ones :meth:`RTModel.elaborate` can select by
name -- additionally register themselves in a factory registry:

* ``"event"``: the delta-cycle kernel elaboration (the default; the
  literal semantics of the paper's VHDL).
* ``"compiled"``: precomputed per-(step, phase) action tables executed
  as a straight loop, bit-identical to the event kernel.
* ``"compiled-batched"``: the same action tables walked once for N
  register-value vectors over a numpy value plane (requires the
  ``repro[fast]`` extra); pass ``register_values`` as a sequence of
  mappings to set the batch.
* ``"sharded"``: the compiled action tables partitioned over K worker
  processes synchronized at control-step boundaries (pass ``shards``
  and optionally ``partition`` to :meth:`RTModel.elaborate`).
* ``"compiled-py"``: a per-model specialized executor generated from
  the Plan IR (:mod:`repro.engine.codegen`) -- straight-line per-(step,
  phase) code with tables constant-folded into the source, cached as
  ``codegen/v1/<digest>.py``, optionally numba-jitted via the
  ``repro[jit]`` extra.
* ``"compiled-py-batched"``: the generated numpy plane sweep over the
  same artifact (requires the ``repro[fast]`` extra).
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional, Protocol, runtime_checkable

from ..kernel import SimStats


@runtime_checkable
class Backend(Protocol):
    """What every simulation backend exposes after elaboration.

    ``run()`` executes to quiescence and returns the backend (so call
    chains like ``model.elaborate().run().registers`` work on any
    backend).  The read-only properties are meaningful after (and,
    where the backend supports stepping, during) the run.
    """

    def run(self) -> "Backend":  # pragma: no cover - protocol
        ...

    @property
    def registers(self) -> dict:  # pragma: no cover - protocol
        """Final (or current) register values by name."""
        ...

    @property
    def conflicts(self) -> list:  # pragma: no cover - protocol
        """Observed :class:`~repro.core.diagnostics.ConflictEvent` list."""
        ...

    @property
    def clean(self) -> bool:  # pragma: no cover - protocol
        """True when the run produced no ILLEGAL value anywhere."""
        ...

    @property
    def stats(self) -> SimStats:  # pragma: no cover - protocol
        """Unified simulation-cost counters."""
        ...


#: An RT-model backend factory: ``factory(model, **elaborate_kwargs)``.
BackendFactory = Callable[..., Backend]

_REGISTRY: Dict[str, BackendFactory] = {}


class BackendError(ValueError):
    """Raised for unknown backend names."""


def register_backend(name: str, factory: BackendFactory) -> None:
    """Register an RT-model backend under ``name`` (overwrites)."""
    _REGISTRY[name] = factory


def backend_names() -> List[str]:
    """The registered RT-model backend names, sorted."""
    _ensure_builtins()
    return sorted(_REGISTRY)


def create_backend(name: str, model: Any, **kwargs: Any) -> Backend:
    """Instantiate the named backend for ``model``.

    ``kwargs`` are the :meth:`RTModel.elaborate` parameters
    (``register_values``, ``trace``, ``watch``, ``max_deltas``,
    ``transfer_engine``, ``observe``); each backend consumes what
    applies to it.
    """
    _ensure_builtins()
    try:
        factory = _REGISTRY[name]
    except KeyError:
        raise BackendError(
            f"unknown backend {name!r}; available: "
            f"{', '.join(sorted(_REGISTRY))}"
        ) from None
    return factory(model, **kwargs)


def _ensure_builtins() -> None:
    # Deferred: the factories import the core/engine modules, which in
    # turn import this module.
    if "event" not in _REGISTRY:
        register_backend("event", _event_factory)
    if "compiled" not in _REGISTRY:
        register_backend("compiled", _compiled_factory)
    if "compiled-batched" not in _REGISTRY:
        register_backend("compiled-batched", _compiled_batched_factory)
    if "sharded" not in _REGISTRY:
        register_backend("sharded", _sharded_factory)
    if "compiled-py" not in _REGISTRY:
        register_backend("compiled-py", _codegen_factory)
    if "compiled-py-batched" not in _REGISTRY:
        register_backend("compiled-py-batched", _codegen_batched_factory)


def _event_factory(model: Any, **kwargs: Any) -> Backend:
    from ..core.simulator import RTSimulation

    return RTSimulation(model, **kwargs)


def _compiled_factory(model: Any, **kwargs: Any) -> Backend:
    from .compiled import CompiledRTSimulation

    return CompiledRTSimulation(model, **kwargs)


def _compiled_batched_factory(model: Any, **kwargs: Any) -> Backend:
    from .batched import CompiledBatchedRTSimulation

    return CompiledBatchedRTSimulation(model, **kwargs)


def _sharded_factory(model: Any, **kwargs: Any) -> Backend:
    from .sharded import ShardedRTSimulation

    return ShardedRTSimulation(model, **kwargs)


def _codegen_factory(model: Any, **kwargs: Any) -> Backend:
    from .codegen import CodegenRTSimulation

    return CodegenRTSimulation(model, **kwargs)


def _codegen_batched_factory(model: Any, **kwargs: Any) -> Backend:
    from .codegen import CodegenBatchedRTSimulation

    return CodegenBatchedRTSimulation(model, **kwargs)


def run_metrics(
    backend: Backend,
    wall: Optional[float] = None,
    baseline: Optional[SimStats] = None,
    profile: Optional[Any] = None,
    stream: Optional[Any] = None,
    monitor: Optional[Any] = None,
) -> Dict[str, Any]:
    """One comparable metrics row for any backend.

    ``wall`` is the measured wall-clock time in seconds (the caller
    times the run; elaboration cost is excluded uniformly).
    ``baseline`` subtracts a stats snapshot taken before the measured
    interval, for backends whose simulator is reused.
    ``profile`` merges a :class:`repro.observe.Profiler`'s per-phase
    wall totals into the row as ``wall_<phase>`` columns.
    ``stream`` merges a :class:`repro.observe.StreamServer`'s delivery
    counters as ``stream_events`` / ``stream_dropped`` /
    ``stream_clients`` (drops are the bounded queue's backpressure
    evidence; clients counts watcher connections accepted over the
    server's lifetime).
    ``monitor`` merges an :class:`repro.observe.AssertionMonitor`'s (or
    :class:`~repro.observe.monitor.AssertionReport`'s) verdict as a
    ``violations`` column.

    Trace depth is reported only when the backend actually carries a
    trace: backends elaborated with ``trace=False`` leave ``tracer``
    as None, and backends without the attribute at all (the handshake
    network) are equally fine -- neither grows a ``trace_samples``
    column.

    Batched backends (those carrying a ``batch_size``) report a
    ``vectors`` column and count conflicts summed over the batch --
    their ``conflicts`` is a list of per-vector event lists.

    Sharded backends (those carrying ``shard_metrics``) additionally
    report ``shards``, ``syncs`` (step barriers per shard) and
    ``sync_bytes`` (total bytes exchanged over all worker pipes); the
    per-shard breakdown is available via :func:`shard_metrics_rows`.

    Backends elaborated through the shared lowering pipeline (see
    :mod:`repro.engine.plan`) report ``plan_cache`` -- one of ``hit``,
    ``miss``, ``off`` or ``given`` -- and ``plan_build_ms``, the wall
    time spent resolving the :class:`~repro.engine.plan.Plan` (digest
    plus lower on a miss, digest plus unpickle on a hit).

    Codegen backends (see :mod:`repro.engine.codegen`) additionally
    report ``codegen_cache`` (``hit`` / ``miss`` / ``off``),
    ``codegen_build_ms`` (wall time spent resolving the generated
    executor -- artifact load on a hit, generate + compile on a miss)
    and ``codegen_mode`` (``exec``, ``jit`` or ``interpreter`` when the
    generated path was unavailable and the backend fell back).
    """
    stats = backend.stats
    if baseline is not None:
        stats = stats - baseline
    batch_size = getattr(backend, "batch_size", None)
    conflicts = backend.conflicts
    if batch_size is not None:
        conflict_count = sum(len(events) for events in conflicts)
    else:
        conflict_count = len(conflicts)
    row: Dict[str, Any] = {
        "deltas": stats.delta_cycles,
        "events": stats.events,
        "resumes": stats.process_resumes,
        "transactions": stats.transactions,
        "conflicts": conflict_count,
    }
    if batch_size is not None:
        row["vectors"] = batch_size
    tracer = getattr(backend, "tracer", None)
    if tracer is not None:
        row["trace_samples"] = len(tracer.samples)
    if wall is not None:
        row["wall"] = wall
    if profile is not None:
        for phase, seconds in profile.phase_wall.items():
            row[f"wall_{phase}"] = seconds
    if stream is not None:
        row["stream_events"] = stream.events
        row["stream_dropped"] = stream.dropped
        row["stream_clients"] = getattr(stream, "clients_total", 0)
    if monitor is not None:
        report = getattr(monitor, "report", monitor)
        violations = getattr(report, "violations", None)
        if violations is not None:
            row["violations"] = len(violations)
    plan_cache_state = getattr(backend, "plan_cache_state", None)
    if plan_cache_state is not None:
        row["plan_cache"] = plan_cache_state
        row["plan_build_ms"] = getattr(backend, "plan_build_ms", 0.0)
    codegen_cache_state = getattr(backend, "codegen_cache_state", None)
    if codegen_cache_state is not None:
        row["codegen_cache"] = codegen_cache_state
        row["codegen_build_ms"] = getattr(backend, "codegen_build_ms", 0.0)
        row["codegen_mode"] = getattr(backend, "codegen_mode", "interpreter")
    shard_metrics = getattr(backend, "shard_metrics", None)
    if shard_metrics:
        row["shards"] = len(shard_metrics)
        row["syncs"] = max(m["syncs"] for m in shard_metrics)
        row["sync_bytes"] = sum(
            m["bytes_to_worker"] + m["bytes_from_worker"]
            for m in shard_metrics
        )
    return row


def shard_metrics_rows(backend: Backend) -> List[Dict[str, float]]:
    """Per-shard metrics rows for a sharded backend (empty otherwise).

    One row per shard: ``shard`` index, ``syncs`` (control-step
    barriers completed), ``bytes_to_worker`` / ``bytes_from_worker``
    (pickled barrier traffic each way) and ``worker_wall`` (seconds the
    worker spent executing its cycles, excluding barrier waits).
    """
    shard_metrics = getattr(backend, "shard_metrics", None)
    if not shard_metrics:
        return []
    return [dict(m) for m in shard_metrics]
