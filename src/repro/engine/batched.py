"""The compiled-batched backend: N input vectors, one schedule walk.

:class:`CompiledBatchedRTSimulation` executes the same lowered
:class:`~repro.engine.plan.Plan` as
:class:`repro.engine.compiled.CompiledRTSimulation` -- same port table,
same driver table, same per-``(step, phase)`` action tables, produced
by the one shared :func:`repro.engine.plan.lower` pipeline -- but
holds the value plane as an ``(N, num_ports)`` numpy array
(:class:`repro.core.values_np.BatchValueStore`) and executes the
static schedule **once** for all N register-value vectors.  Everything
input-independent (the activation tables, the driver release schedule,
the delta-cycle walk itself) is paid once; everything value-dependent
(resolution, module arithmetic, register latching, conflict episodes)
is computed as array arithmetic over the batch.

Per-vector semantics are bit-identical to N sequential ``compiled``
runs: vector ``i``'s final registers, its conflict events (same
``(CS, PH)`` locations, sources and order) and its clean flag match
``compiled`` elaborated with that vector's ``register_values`` -- the
differential tests in ``tests/engine/test_batched_backend.py`` assert
this for randomized models.  Conflicts *can* differ across vectors in
one batch: overrides may leave a source register DISC, and a
structural two-driver collision only materializes for vectors whose
sources actually carry data.

Result surface (batch-shaped):

* ``registers`` -- list of per-vector register dicts (``registers[i]``);
* ``conflicts`` -- list of per-vector :class:`ConflictEvent` lists
  (``conflicts[i]``), keyed by ``(vector, signal, CS, PH)``;
* ``clean_mask`` -- ``(N,)`` bool array; ``clean`` is its conjunction;
* ``register_array(name)`` -- one register across the batch;
* ``tracers`` -- per-vector :class:`TraceLog` when tracing a watched
  subset (``tracer`` stays the scalar alias for N == 1).

Stats accounting: controller bookkeeping (cycles, delta cycles, the
fused per-cycle dispatch, CS/PH/tick events and transactions) is
counted once per cycle -- the schedule really is walked once -- while
value-dependent activity (port events, assert/release/eval/latch
transactions) is summed over the batch.  At N == 1 this reduces to
exactly the ``compiled`` backend's counters.

Probes: at N == 1 the canonical per-cycle stream is emitted
(conflicts, step boundary, phase, bus drives, register latches --
identical order to the other backends, differential-tested).  At
N > 1 only ``on_run_start`` / ``on_conflict`` / ``on_run_end`` fire;
per-cycle value callbacks have no single-vector meaning there (see
``docs/observability.md``).
"""

from __future__ import annotations

from typing import Iterable, List, Mapping, Optional, Sequence, Union

from ..core.diagnostics import ConflictEvent, ConflictLog
from ..core.model import ModelError, RTModel
from ..core.phases import (
    PHASES_PER_STEP,
    Phase,
    StepPhase,
    schedule_points,
)
from ..core.trace import TraceLog
from ..core.values import DISC, ILLEGAL
from ..core.values_np import (
    MAX_BATCH_WIDTH,
    BatchValueStore,
    require_numpy,
    resolve_rt_batch,
)
from ..kernel import SimStats
from ..kernel.errors import DeltaCycleLimitError
from ..observe.emit import emit_canonical_cycle
from .compiled import _EXTRA_EVENTS, _SCHED_TX
from .plan import (
    Plan,
    PlanCacheArg,
    PlanHandle,
    compile_module_eval_batch,
    resolve_plan,
)

#: ``register_values`` accepted shapes: one mapping (N=1) or a
#: sequence of mappings (N=len).
BatchInits = Union[Mapping[str, int], Sequence[Mapping[str, int]], None]


class CompiledBatchedRTSimulation:
    """A compiled elaboration sweeping N input vectors per table walk."""

    #: Engine kind reported to observers (see repro.observe).
    backend_name = "compiled-batched"

    def __init__(
        self,
        model: RTModel,
        register_values: BatchInits = None,
        trace: bool = False,
        watch: Optional[Iterable[str]] = None,
        max_deltas: int = 1_000_000,
        transfer_engine: bool = True,
        observe=None,
        plan: Union[None, Plan, PlanHandle] = None,
        plan_cache: PlanCacheArg = None,
    ) -> None:
        del transfer_engine  # one compiled realization covers both
        np = require_numpy("the compiled-batched backend")
        if model.width > MAX_BATCH_WIDTH:
            raise ModelError(
                f"compiled-batched supports width <= {MAX_BATCH_WIDTH} "
                f"bits (int64 value plane), model width is {model.width}; "
                f"use the 'compiled' backend"
            )
        self.model = model
        self._np = np
        self._max_deltas = max_deltas

        if register_values is None or isinstance(register_values, Mapping):
            vectors = [dict(register_values or {})]
        else:
            vectors = [dict(v) for v in register_values]
            if not vectors:
                raise ModelError(
                    "compiled-batched needs at least one register_values "
                    "vector"
                )
        unknown = set().union(*vectors) - set(model.registers)
        if unknown:
            raise ModelError(
                f"register_values for unknown registers: {sorted(unknown)}"
            )
        self.batch_size = len(vectors)

        # -- the lowered IR (shared with every compiled-style backend) ---
        handle = resolve_plan(model, plan, plan_cache)
        p = handle.plan
        self.model_plan: Plan = p
        self.plan_cache_state: str = handle.source
        self.plan_build_ms: float = handle.build_ms

        # -- port table (plan declaration order) -------------------------
        self._index: dict[str, int] = dict(p.port_index)
        self._reg_out_idx: dict[str, int] = {
            reg: out_idx for reg, _in_idx, out_idx in p.reg_ports
        }
        self._reg_latches: List[tuple[int, int]] = [
            (in_idx, out_idx) for _reg, in_idx, out_idx in p.reg_ports
        ]
        self._store = BatchValueStore(
            self.batch_size,
            list(p.port_names),
            list(p.port_inits),
            set(p.resolved),
        )
        self._names = self._store.names
        values = self._store.values
        # Per-vector register overrides (same masking as the scalar
        # backends: anything but DISC is reduced modulo 2**width).
        for i, overrides in enumerate(vectors):
            for reg, init in overrides.items():
                if init != DISC:
                    init %= 1 << model.width
                values[i, self._reg_out_idx[reg]] = init
        # Operation bodies live in the model; the plan carries layout.
        self._module_evals = [
            (
                mp.out_idx,
                compile_module_eval_batch(
                    mp,
                    model.modules[mp.name].operations,
                    values,
                    self.batch_size,
                ),
            )
            for mp in p.modules
        ]

        # -- driver table (one per TRANS instance, in spec order) --------
        self._drv_owner = p.drv_owner
        self._drv_sink = p.drv_sink
        self._sink_drivers = p.sink_drivers
        self._asserts = p.asserts
        self._releases = p.releases
        self._contrib = np.full(
            (self.batch_size, p.num_drivers), DISC, dtype=np.int64
        )

        # -- observers ---------------------------------------------------
        self._probe = observe
        listener = observe.on_conflict if observe is not None else None
        self._monitors = [
            ConflictLog(listener=listener) for _ in range(self.batch_size)
        ]
        self._active_illegal = np.zeros(
            (self.batch_size, len(self._names)), dtype=bool
        )
        #: port indices whose vector-0 value changed this cycle (only
        #: tracked for the N == 1 canonical probe stream).
        self._cycle_changed: set[int] = set()
        self._bus_count = len(model.buses)
        self._tracers: List[TraceLog] = []
        self._trace_items: Optional[List[tuple[str, int]]] = None
        if trace or watch:
            watched = list(watch) if watch else list(self._names)
            for extra in watched:
                if extra not in self._index:
                    raise ModelError(f"cannot watch unknown signal {extra!r}")
            self._trace_items = [(n, self._index[n]) for n in watched]
            self._tracers = [
                TraceLog(watched) for _ in range(self.batch_size)
            ]

        # -- execution state --------------------------------------------
        self.stats = SimStats()
        self.stats.cycles = 1
        self.stats.transactions = 2
        self._schedule = schedule_points(model.cs_max)
        self._pos = 0
        #: updates scheduled during the current cycle, due next cycle:
        #: (driver, column-or-scalar) and (port, column, lane-mask).
        self._pend_drv: List[tuple[int, object]] = []
        self._pend_out: List[tuple[int, object, object]] = []
        self._finished = False
        self._ran = False

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    def run(self) -> "CompiledBatchedRTSimulation":
        """Run all ``cs_max`` control steps for the whole batch."""
        from ..observe.metrics import record_backend_run

        if self._probe is None:
            self._execute_until(len(self._schedule))
            if not self._finished:
                self._finish()
            self._ran = True
            record_backend_run(self)
            return self
        import time as _time

        self._probe.on_run_start(self)
        t0 = _time.perf_counter()
        self._execute_until(len(self._schedule))
        if not self._finished:
            self._finish()
        self._ran = True
        self._probe.on_run_end(self, _time.perf_counter() - t0)
        record_backend_run(self)
        return self

    def run_steps(self, steps: int) -> "CompiledBatchedRTSimulation":
        """Run only the first ``steps`` control steps (for debugging)."""
        if steps > self.model.cs_max:
            return self.run()
        if steps >= 1:
            self._execute_until((steps - 1) * PHASES_PER_STEP + 1)
        self._ran = True
        return self

    def _execute_until(self, end_pos: int) -> None:
        stats = self.stats
        values = self._store.values
        n = self.batch_size
        emit_cycles = self._probe is not None and n == 1
        while self._pos < end_pos:
            at = self._schedule[self._pos]
            self._pos += 1
            if stats.delta_cycles >= self._max_deltas:
                raise DeltaCycleLimitError(self._max_deltas)
            # Controller bookkeeping is input-independent and the
            # schedule is walked once for the whole batch: count it
            # once per cycle, exactly the scalar compiled profile.
            stats.cycles += 1
            stats.delta_cycles += 1
            stats.process_resumes += 1
            stats.events += 1 + _EXTRA_EVENTS.get(int(at.phase), 0)
            if self._pos < len(self._schedule) or at.phase is not Phase.CR:
                stats.transactions += _SCHED_TX[int(at.phase)]
            self._apply_pending(at, record_conflicts=True)
            if self._trace_items is not None:
                items = self._trace_items
                for i, tracer in enumerate(self._tracers):
                    row = values[i]
                    tracer.append(
                        at, {name: int(row[idx]) for name, idx in items}
                    )
            if emit_cycles:
                self._emit_cycle(at)
            # -- this cycle's actions (due next cycle) -------------------
            key = (at.step, int(at.phase))
            for drv, src, const in self._asserts.get(key, ()):
                self._pend_drv.append(
                    (drv, values[:, src].copy() if src is not None else const)
                )
                stats.transactions += n
            for drv in self._releases.get(key, ()):
                self._pend_drv.append((drv, DISC))
                stats.transactions += n
            phase = at.phase
            if phase is Phase.CM:
                for out_idx, evaluate in self._module_evals:
                    self._pend_out.append((out_idx, evaluate(), None))
                    stats.transactions += n
            elif phase is Phase.CR:
                for in_idx, out_idx in self._reg_latches:
                    lanes = values[:, in_idx] != DISC
                    count = int(lanes.sum())
                    if count:
                        self._pend_out.append(
                            (out_idx, values[:, in_idx].copy(), lanes)
                        )
                        stats.transactions += count

    def _finish(self) -> None:
        """The trailing delta cycle (final CR left updates in flight).

        The release schedule is structural, so every vector agrees on
        whether this cycle exists except in the pure-latch case --
        where the lane masks make it a no-op for vectors whose latch
        inputs stayed DISC, matching their scalar runs.  No conflicts
        are attributable here and no trace sample is taken.
        """
        self._finished = True
        if not (self._pend_drv or self._pend_out):
            return
        self.stats.cycles += 1
        self.stats.delta_cycles += 1
        last = self._schedule[-1]
        self._apply_pending(last, record_conflicts=False)
        self._cycle_changed.clear()

    def _apply_pending(self, at: StepPhase, record_conflicts: bool) -> None:
        """Apply updates scheduled in the previous cycle, batch-wide.

        The vectorized twin of the scalar backend's update step:
        driver contributions land first-touch-ordered, dirty sinks
        re-resolve as ``(N, drivers)`` mask arithmetic, per-lane
        effective-value changes are counted, and lanes that newly
        resolved to ILLEGAL record one conflict event in *their*
        vector's log (once per episode, sources read after all of the
        cycle's updates).
        """
        if not (self._pend_drv or self._pend_out):
            return
        np = self._np
        pend_drv, self._pend_drv = self._pend_drv, []
        pend_out, self._pend_out = self._pend_out, []
        values = self._store.values
        contrib = self._contrib
        stats = self.stats
        track = (
            self._cycle_changed
            if self._probe is not None and self.batch_size == 1
            else None
        )
        dirty: List[int] = []
        seen: set[int] = set()
        for drv, value in pend_drv:
            contrib[:, drv] = value
            sink = self._drv_sink[drv]
            if sink not in seen:
                seen.add(sink)
                dirty.append(sink)
        for idx, col, lanes in pend_out:
            cur = values[:, idx]
            new = col if lanes is None else np.where(lanes, col, cur)
            changed = new != cur
            count = int(changed.sum())
            if count:
                values[:, idx] = new
                stats.events += count
                if track is not None and changed[0]:
                    track.add(idx)
        newly_by_sink: List[tuple[int, object]] = []
        for sink in dirty:
            new = resolve_rt_batch(contrib[:, self._sink_drivers[sink]])
            cur = values[:, sink]
            changed = new != cur
            count = int(changed.sum())
            if not count:
                continue
            values[:, sink] = new
            stats.events += count
            if track is not None and changed[0]:
                track.add(sink)
            is_ill = new == ILLEGAL
            active = self._active_illegal[:, sink]
            newly = changed & is_ill & ~active
            self._active_illegal[:, sink] = (active | newly) & ~(
                changed & ~is_ill
            )
            if newly.any():
                newly_by_sink.append((sink, newly))
        if record_conflicts:
            for sink, newly in newly_by_sink:
                drvs = self._sink_drivers[sink]
                name = self._names[sink]
                for i in np.nonzero(newly)[0]:
                    sources = tuple(
                        (self._drv_owner[d], int(contrib[i, d]))
                        for d in drvs
                        if contrib[i, d] != DISC
                    )
                    self._monitors[int(i)].record(
                        ConflictEvent(name, at, sources)
                    )

    def _emit_cycle(self, at: StepPhase) -> None:
        """N == 1 canonical probe stream (same order as every backend)."""
        changed = self._cycle_changed
        row = self._store.values[0]
        names = self._names
        drives = [
            (names[idx], int(row[idx]))
            for idx in range(self._bus_count)
            if idx in changed
        ]
        latches = [
            (reg, int(row[idx]))
            for reg, idx in self._reg_out_idx.items()
            if idx in changed
        ]
        changed.clear()
        emit_canonical_cycle(self._probe, at, drives, latches)

    # ------------------------------------------------------------------
    # results (batch-shaped)
    # ------------------------------------------------------------------
    @property
    def registers(self) -> list:
        """Per-vector register dicts (``registers[i][name]``)."""
        return [self.vector_registers(i) for i in range(self.batch_size)]

    def vector_registers(self, i: int) -> dict[str, int]:
        """Register values of one input vector, as plain ints."""
        row = self._store.values[i]
        return {
            name: int(row[idx]) for name, idx in self._reg_out_idx.items()
        }

    def register_array(self, name: str):
        """One register's values across the batch, as an ``(N,)`` array."""
        try:
            idx = self._reg_out_idx[name]
        except KeyError:
            raise KeyError(f"unknown register {name!r}") from None
        return self._store.values[:, idx].copy()

    def __getitem__(self, register: str):
        """``sim["R1"]`` -> the register's ``(N,)`` batch column."""
        return self.register_array(register)

    @property
    def conflicts(self) -> list:
        """Per-vector conflict-event lists (``conflicts[i]``)."""
        return [monitor.events for monitor in self._monitors]

    @property
    def monitors(self) -> List[ConflictLog]:
        return list(self._monitors)

    @property
    def monitor(self) -> Optional[ConflictLog]:
        """The scalar alias: vector 0's log when N == 1, else None."""
        return self._monitors[0] if self.batch_size == 1 else None

    @property
    def clean_mask(self):
        """``(N,)`` bool array: True where a vector's run stayed clean."""
        np = self._np
        values = self._store.values
        reg_idx = list(self._reg_out_idx.values())
        if reg_idx:
            reg_illegal = (values[:, reg_idx] == ILLEGAL).any(axis=1)
        else:
            reg_illegal = np.zeros(self.batch_size, dtype=bool)
        monitor_clean = np.array(
            [monitor.clean for monitor in self._monitors], dtype=bool
        )
        return monitor_clean & ~reg_illegal

    @property
    def clean(self) -> bool:
        """True when *every* vector's run stayed clean."""
        return bool(self.clean_mask.all())

    @property
    def tracers(self) -> List[TraceLog]:
        """Per-vector traces of the watched subset (``tracers[i]``)."""
        return list(self._tracers)

    @property
    def tracer(self) -> Optional[TraceLog]:
        """The scalar alias: vector 0's trace when N == 1, else None."""
        if self._tracers and self.batch_size == 1:
            return self._tracers[0]
        return None

    def signal_array(self, name: str):
        """One port's values across the batch, as an ``(N,)`` array."""
        try:
            idx = self._index[name]
        except KeyError:
            raise KeyError(f"unknown signal {name!r}") from None
        return self._store.values[:, idx].copy()
