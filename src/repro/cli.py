"""Command-line interface.

Subcommands::

    repro check    file.vhd            subset-conformance check
    repro run      file.vhd --top E    elaborate + simulate VHDL
    repro analyze  model.json          static schedule analysis
    repro simulate model.json          simulate an RT model file
    repro emit     model.json          emit subset VHDL for a model
    repro clocked  model.json          translate to clocked RTL (VHDL)
    repro synth    program.alg         HLS: algorithmic source -> model
    repro iks      --target 2.5,1.0    run the IKS case study
    repro plan     model.json          lower a model, inspect its Plan IR
    repro report   run.jsonl           render a recorded run report
    repro watch    HOST:PORT           tail a live --stream NDJSON feed
    repro bench    [--model m.json]    batched-vs-sequential sweep benchmark

The simulating subcommands (``run``, ``simulate``, ``iks``) share the
observability flags of :mod:`repro.observe`: ``--observe out.jsonl``
records the structured event stream, ``--vcd out.vcd`` writes a
GTKWave-ready waveform, ``--profile`` / ``--profile-out`` print or
save the per-phase wall-clock profile (``--profile-sample N`` samples
every N-th control step), ``--monitor`` / ``--assert-file`` evaluate
temporal assertions online (``--assert-out`` saves the
AssertionReport), and ``--stream HOST:PORT`` serves the event stream
as NDJSON for ``repro watch``.

Model files use the JSON format of :mod:`repro.core.serialize`;
algorithmic sources use the straight-line language of
:mod:`repro.hls.expr`.

Run ``python -m repro <subcommand> --help`` for per-command options.
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional, Sequence

from .core import analyze, format_value
from .core.serialize import dump as save_model
from .core.serialize import load as load_model


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    if not hasattr(args, "handler"):
        parser.print_help()
        return 2
    try:
        return args.handler(args)
    except (ValueError, OSError, KeyError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Clock-free register-transfer models "
            "(reproduction of Mutz, DATE 1998)"
        ),
    )
    sub = parser.add_subparsers(title="subcommands")

    p = sub.add_parser("check", help="subset-conformance check a VHDL file")
    p.add_argument("file", help="VHDL source file")
    p.set_defaults(handler=cmd_check)

    p = sub.add_parser("run", help="elaborate and simulate a VHDL design")
    p.add_argument("file", help="VHDL source file")
    p.add_argument("--top", required=True, help="top entity name")
    p.add_argument(
        "--signals", default="", help="comma-separated signals to print "
        "(default: all top-level)",
    )
    p.add_argument("--vcd", help="write a VCD waveform to this path")
    _add_backend_args(p)
    _add_observe_args(p)
    p.set_defaults(handler=cmd_run)

    p = sub.add_parser("analyze", help="static schedule analysis of a model")
    p.add_argument("file", help="model JSON file")
    p.add_argument(
        "--occupancy", action="store_true",
        help="also print the resource-occupancy chart",
    )
    p.set_defaults(handler=cmd_analyze)

    p = sub.add_parser("simulate", help="simulate an RT model file")
    p.add_argument("file", help="model JSON file")
    p.add_argument(
        "--set", action="append", default=[], metavar="REG=VALUE",
        help="override a register preset (repeatable)",
    )
    p.add_argument("--vcd", help="write a VCD waveform to this path")
    p.add_argument(
        "--trace", action="store_true", help="print the full phase trace"
    )
    p.add_argument(
        "--batch", type=int, default=None, metavar="N",
        help="compiled-batched: sweep N input vectors in one run "
        "(replicas of --set, or random per register with --seed)",
    )
    p.add_argument(
        "--vectors-from", metavar="JSONL",
        help="compiled-batched: read input vectors from a JSONL file "
        "(one {register: value} object per line)",
    )
    p.add_argument(
        "--seed", type=int, default=None, metavar="S",
        help="with --batch: draw N random register-value vectors",
    )
    _add_backend_args(p)
    _add_observe_args(p)
    p.set_defaults(handler=cmd_simulate)

    p = sub.add_parser(
        "reschedule", help="compact a model's transfer schedule"
    )
    p.add_argument("file", help="model JSON file")
    p.add_argument("-o", "--output", help="write the compacted model here")
    p.set_defaults(handler=cmd_reschedule)

    p = sub.add_parser("emit", help="emit subset VHDL for a model")
    p.add_argument("file", help="model JSON file")
    p.add_argument("-o", "--output", help="output file (default: stdout)")
    p.set_defaults(handler=cmd_emit)

    p = sub.add_parser(
        "clocked", help="translate a model to clocked RTL and emit VHDL"
    )
    p.add_argument("file", help="model JSON file")
    p.add_argument("-o", "--output", help="output file (default: stdout)")
    p.add_argument(
        "--verify", action="store_true",
        help="also check per-step equivalence against the clock-free model",
    )
    p.set_defaults(handler=cmd_clocked)

    p = sub.add_parser("synth", help="synthesize an algorithmic program")
    p.add_argument("file", help="algorithmic source file")
    p.add_argument(
        "--resources", default="", metavar="CLASS=N,...",
        help="unit instances per class, e.g. ALU=2,MUL=1",
    )
    p.add_argument("-o", "--output", help="write the RT model JSON here")
    p.add_argument(
        "--verify", action="store_true",
        help="formally verify the model against the source program",
    )
    p.set_defaults(handler=cmd_synth)

    p = sub.add_parser("iks", help="run the IKS chip case study")
    p.add_argument(
        "--target", default="2.5,1.0", metavar="PX,PY",
        help="target coordinates (default 2.5,1.0)",
    )
    p.add_argument(
        "--phi", type=float, default=None, metavar="RAD",
        help="tool orientation: run the three-DOF solution",
    )
    p.add_argument("--vcd", help="write a VCD waveform to this path")
    _add_backend_args(p)
    _add_observe_args(p)
    p.set_defaults(handler=cmd_iks)

    p = sub.add_parser(
        "plan",
        help="lower a model through the shared pipeline and inspect "
        "the resulting Plan IR",
    )
    p.add_argument("file", nargs="?", default=None, help="model JSON file")
    p.add_argument(
        "--digest", action="store_true",
        help="print only the plan's content digest",
    )
    p.add_argument(
        "--json", action="store_true",
        help="emit the plan summary as JSON instead of text",
    )
    p.add_argument(
        "--emit-code", action="store_true",
        help="print the specialized Python source the compiled-py "
        "backend generates from this plan (see repro.engine.codegen)",
    )
    p.add_argument(
        "--gc", action="store_true",
        help="prune stale/foreign entries from the on-disk plans/v1 "
        "and codegen/v1 caches (no model file needed)",
    )
    p.add_argument(
        "--plan-cache", nargs="?", const=True, default=None, metavar="DIR",
        help="consult (and fill) the on-disk plan cache; default root is "
        "$REPRO_PLAN_CACHE or ~/.cache/repro, pass DIR to override",
    )
    p.set_defaults(handler=cmd_plan)

    p = sub.add_parser(
        "cover",
        help="run a model and measure its structural coverage "
        "(identical on every backend)",
    )
    p.add_argument("file", help="model JSON file")
    p.add_argument(
        "--set", action="append", default=[], metavar="REG=VALUE",
        help="override a register's initial value (repeatable)",
    )
    p.add_argument(
        "--batch", type=int, default=None, metavar="N",
        help="with --backend compiled-batched: sweep N vectors in one "
        "run and merge the per-lane reports",
    )
    p.add_argument(
        "--seed", type=int, default=None,
        help="with --batch: fill the batch with random register vectors",
    )
    p.add_argument(
        "--per-lane", action="store_true",
        help="with --batch: print each lane's report before the merge",
    )
    p.add_argument(
        "--json", action="store_true",
        help="emit the CoverageReport as JSON instead of text",
    )
    p.add_argument(
        "--cover-out", metavar="PATH",
        help="write the CoverageReport as JSON",
    )
    p.add_argument(
        "--cover-min", type=float, default=None, metavar="PCT",
        help="exit non-zero when overall coverage is below PCT percent "
        "(checked against the cumulative report when --cover-db is "
        "given)",
    )
    p.add_argument(
        "--cover-db", nargs="?", const=True, default=None, metavar="DIR",
        help="merge the run into the cumulative on-disk coverage DB "
        "(default root: $REPRO_PLAN_CACHE or ~/.cache/repro)",
    )
    _add_backend_args(p)
    p.set_defaults(handler=cmd_cover)

    p = sub.add_parser(
        "metrics",
        help="export the process metrics registry (Prometheus text)",
    )
    p.add_argument(
        "file", nargs="?", default=None,
        help="model JSON file to run first, so the registry holds that "
        "run's samples (a bare `repro metrics` exports an empty "
        "registry: metrics live per process)",
    )
    p.add_argument(
        "--json", action="store_true",
        help="emit the registry as JSON instead of Prometheus text",
    )
    p.add_argument(
        "--out", metavar="PATH",
        help="write the exposition here instead of stdout",
    )
    _add_backend_args(p)
    p.set_defaults(handler=cmd_metrics)

    p = sub.add_parser(
        "report", help="render a recorded JSONL event log as a run report"
    )
    p.add_argument("file", help="JSONL event log (from --observe)")
    p.add_argument(
        "--json", action="store_true",
        help="emit the aggregated report as JSON instead of text",
    )
    p.set_defaults(handler=cmd_report)

    p = sub.add_parser(
        "watch",
        help="connect to a --stream endpoint and tail the live NDJSON feed",
    )
    p.add_argument(
        "endpoint", metavar="HOST:PORT",
        help="the --stream endpoint (a bare PORT means 127.0.0.1)",
    )
    p.add_argument(
        "--raw", action="store_true",
        help="print the NDJSON records verbatim instead of rendering them",
    )
    p.add_argument(
        "--max-events", type=int, default=None, metavar="N",
        help="disconnect after N events",
    )
    p.add_argument(
        "--timeout", type=float, default=None, metavar="SECS",
        help="socket timeout while waiting for events",
    )
    p.set_defaults(handler=cmd_watch)

    p = sub.add_parser(
        "serve",
        help="run the batching simulation service (HTTP + WebSocket)",
    )
    p.add_argument(
        "--host", default="127.0.0.1",
        help="bind address (default 127.0.0.1)",
    )
    p.add_argument(
        "--port", type=int, default=8349,
        help="bind port; 0 picks a free one (default 8349)",
    )
    p.add_argument(
        "--serve-backend", default="auto", metavar="NAME",
        help="sweep backend: auto, adaptive, compiled, compiled-py, "
        "compiled-batched, compiled-py-batched (default auto = "
        "adaptive: re-armed scalar loop for small batches, numpy "
        "plane above the crossover)",
    )
    p.add_argument(
        "--max-batch", type=int, default=64, metavar="N",
        help="most lanes coalesced into one sweep (default 64)",
    )
    p.add_argument(
        "--max-pending", type=int, default=256, metavar="N",
        help="admission bound: queued requests beyond this are "
        "rejected with 503 (default 256)",
    )
    p.add_argument(
        "--batch-window-ms", type=float, default=0.0, metavar="MS",
        help="gather window before each sweep (default 0: natural "
        "batching only)",
    )
    p.add_argument(
        "--max-models", type=int, default=64, metavar="N",
        help="resident compiled-model cache size (default 64)",
    )
    p.add_argument(
        "--workers", type=int, default=4, metavar="N",
        help="sweep executor threads (default 4)",
    )
    p.add_argument(
        "--plan-cache", nargs="?", const=True, default=None, metavar="DIR",
        help="warm-start submitted models from the on-disk plan cache "
        "(default root: $REPRO_PLAN_CACHE or ~/.cache/repro; pass DIR "
        "to override)",
    )
    p.add_argument(
        "--drain-timeout", type=float, default=10.0, metavar="S",
        help="graceful-shutdown budget for in-flight sweeps (default 10)",
    )
    p.add_argument(
        "--access-log", default=None, metavar="PATH",
        help="wide-event JSON access log: one line per request with "
        "trace id, op, digest, queue/sweep ms, batch, status ('-' = "
        "stdout; bounded async writer, drops are counted in /v1/healthz)",
    )
    p.add_argument(
        "--trace-out", default=None, metavar="PATH",
        help="enable request-scoped span tracing and write the Chrome "
        "trace (accept/parse/queue/coalesce/sweep/serialize spans per "
        "request) here on shutdown",
    )
    p.add_argument(
        "--flight-dir", default=".", metavar="DIR",
        help="directory for flight-recorder dumps (default: cwd); the "
        "ring of recent requests is dumped on any 5xx and on SIGUSR1",
    )
    p.add_argument(
        "--flight-size", type=int, default=256, metavar="N",
        help="flight-recorder ring capacity (default 256)",
    )
    p.set_defaults(handler=cmd_serve)

    p = sub.add_parser(
        "top",
        help="live service dashboard: poll /v1/metrics and render "
        "rps, latency quantiles, cache hits, queue depth",
    )
    p.add_argument(
        "--host", default="127.0.0.1",
        help="service address (default 127.0.0.1)",
    )
    p.add_argument(
        "--port", type=int, default=8349,
        help="service port (default 8349)",
    )
    p.add_argument(
        "--interval", type=float, default=1.0, metavar="S",
        help="poll interval (default 1.0)",
    )
    p.add_argument(
        "--iterations", type=int, default=0, metavar="N",
        help="stop after N polls (default 0 = until interrupted)",
    )
    p.add_argument(
        "--no-clear", action="store_true",
        help="append each refresh instead of clearing the screen "
        "(scripts, CI logs)",
    )
    p.set_defaults(handler=cmd_top)

    p = sub.add_parser(
        "bench",
        help="benchmark the batched backend against sequential compiled runs",
    )
    p.add_argument(
        "--model", help="model JSON file (default: the built-in Fig. 1 "
        "example)",
    )
    p.add_argument(
        "--vectors", type=int, default=1000, metavar="N",
        help="sweep size (default 1000)",
    )
    p.add_argument(
        "--seed", type=int, default=12345,
        help="rng seed for the input vectors (default 12345)",
    )
    p.add_argument(
        "--out", default=None, metavar="PATH",
        help="write the benchmark record here (default "
        "BENCH_batched.json, BENCH_sharded.json with --sharded, "
        "BENCH_plan.json with --plan, or BENCH_codegen.json with "
        "--codegen); parent directories are created",
    )
    p.add_argument(
        "--sharded", action="store_true",
        help="benchmark the sharded backend against single-process "
        "compiled runs instead of the batched sweep",
    )
    p.add_argument(
        "--shards", type=int, default=4, metavar="K",
        help="with --sharded: worker-process count (default 4)",
    )
    p.add_argument(
        "--repeat", type=int, default=3, metavar="N",
        help="with --sharded/--plan/--codegen: timed runs, best-of "
        "(default 3)",
    )
    p.add_argument(
        "--plan", action="store_true",
        help="benchmark cold lowering vs a warm plan-cache hit "
        "(default model: the E6 IKS chip)",
    )
    p.add_argument(
        "--codegen", action="store_true",
        help="benchmark the generated compiled-py executor against the "
        "compiled interpreter on Fig. 1 and the E6 IKS chip",
    )
    p.add_argument(
        "--serve", action="store_true",
        help="benchmark the simulation service (concurrent clients "
        "against one server) vs per-request sequential compiled runs",
    )
    p.add_argument(
        "--clients", type=int, default=8, metavar="N",
        help="with --serve: concurrent load clients (default 8)",
    )
    p.set_defaults(handler=cmd_bench)
    return parser


def _add_backend_args(p: argparse.ArgumentParser) -> None:
    from .engine import backend_names

    p.add_argument(
        "--backend", choices=backend_names(), default="event",
        help="simulation backend (default: event)",
    )
    p.add_argument(
        "--no-transfer-engine", action="store_true",
        help="event backend: one kernel process per TRANS instance "
        "instead of the fused transfer engine",
    )
    p.add_argument(
        "--shards", type=int, default=None, metavar="K",
        help="sharded backend: worker-process count (default 2)",
    )
    p.add_argument(
        "--plan-cache", nargs="?", const=True, default=None, metavar="DIR",
        help="compiled backends: reuse lowered plans from the on-disk "
        "content-addressed cache (default root: $REPRO_PLAN_CACHE or "
        "~/.cache/repro; pass DIR to override)",
    )
    p.add_argument(
        "--no-plan-cache", action="store_true",
        help="lower from scratch, ignoring any plan cache (the default)",
    )


def _add_observe_args(p: argparse.ArgumentParser) -> None:
    p.add_argument(
        "--observe", metavar="PATH",
        help="record the run's event stream as JSONL (see `repro report`)",
    )
    p.add_argument(
        "--profile", action="store_true",
        help="print a per-phase wall-clock profile after the run",
    )
    p.add_argument(
        "--profile-out", metavar="PATH",
        help="write the per-phase profile summary as JSON",
    )
    p.add_argument(
        "--profile-sample", type=int, default=None, metavar="N",
        help="profile only every N-th control step (cheaper on long runs)",
    )
    p.add_argument(
        "--monitor", action="store_true",
        help="check the default assertions (no ILLEGAL values, no bus "
        "conflicts) online and print the assertion report",
    )
    p.add_argument(
        "--assert-file", metavar="PATH",
        help="check the temporal properties declared in this JSON file "
        "(see docs/observability.md for the format)",
    )
    p.add_argument(
        "--assert-out", metavar="PATH",
        help="write the AssertionReport as JSON",
    )
    p.add_argument(
        "--stream", metavar="HOST:PORT",
        help="serve the live event stream as NDJSON on this endpoint "
        "(connect with `repro watch`); port 0 picks a free port",
    )
    p.add_argument(
        "--stream-wait", type=float, default=None, metavar="SECS",
        help="with --stream: wait up to SECS for a watcher to connect "
        "before the run starts",
    )
    p.add_argument(
        "--cover", action="store_true",
        help="measure structural coverage (transfers, (CS,PH) cells, "
        "port value classes, conflict pairs) and print the report",
    )
    p.add_argument(
        "--cover-out", metavar="PATH",
        help="write the CoverageReport as JSON (implies --cover)",
    )
    p.add_argument(
        "--cover-min", type=float, default=None, metavar="PCT",
        help="exit non-zero when overall coverage is below PCT percent "
        "(implies --cover; checked against the cumulative report when "
        "--cover-db is given)",
    )
    p.add_argument(
        "--cover-db", nargs="?", const=True, default=None, metavar="DIR",
        help="merge the run into the cumulative on-disk coverage DB, "
        "keyed by model digest (implies --cover; default root is "
        "$REPRO_PLAN_CACHE or ~/.cache/repro, pass DIR to override)",
    )
    p.add_argument(
        "--metrics-out", metavar="PATH",
        help="write the process metrics registry after the run "
        "(Prometheus text exposition, or JSON when PATH ends in .json)",
    )
    p.add_argument(
        "--trace-out", metavar="PATH",
        help="write the run as hierarchical wall-clock spans in Chrome "
        "trace-event JSON (load in Perfetto or chrome://tracing)",
    )


def _validate_backend_flags(args, allow_batched: bool = False) -> None:
    """Reject flag combinations that would silently do nothing."""
    if args.no_transfer_engine and args.backend != "event":
        raise ValueError(
            "--no-transfer-engine only applies to the event backend "
            f"(got --backend {args.backend})"
        )
    if args.backend.endswith("-batched") and not allow_batched:
        raise ValueError(
            f"the {args.backend} backend produces batch-shaped results; "
            "use `repro simulate` (with --batch/--vectors-from) or "
            "`repro bench`"
        )
    if args.shards is not None and args.backend != "sharded":
        raise ValueError(
            "--shards only applies to the sharded backend "
            f"(got --backend {args.backend})"
        )
    if args.shards is not None and args.shards < 1:
        raise ValueError(f"--shards must be >= 1, got {args.shards}")
    if getattr(args, "plan_cache", None) is not None:
        if getattr(args, "no_plan_cache", False):
            raise ValueError("--plan-cache and --no-plan-cache are exclusive")
        if args.backend == "event":
            raise ValueError(
                "--plan-cache applies to the compiled backends only "
                "(got --backend event)"
            )


def _plan_cache_arg(args):
    """The ``plan_cache=`` value the backend flags asked for."""
    if getattr(args, "no_plan_cache", False):
        return False
    return getattr(args, "plan_cache", None)


def _print_plan_line(sim) -> None:
    """One-line plan-cache verdict for runs through the lowering
    pipeline (CI greps for ``plan_cache: hit``)."""
    state = getattr(sim, "plan_cache_state", None)
    if state is None or state == "off":
        return
    digest = sim.model_plan.digest
    print(
        f"-- plan_cache: {state} digest={digest[:16]} "
        f"build_ms={sim.plan_build_ms:.2f}"
    )


def _print_codegen_line(sim) -> None:
    """One-line codegen verdict for the compiled-py backends (CI greps
    for ``codegen: hit`` and ``mode=exec``)."""
    state = getattr(sim, "codegen_cache_state", None)
    if state is None:
        return
    print(
        f"-- codegen: {state} mode={sim.codegen_mode} "
        f"build_ms={sim.codegen_build_ms:.2f}"
    )


class _ObserveSession:
    """Everything the observability flags attached to one run.

    ``probe`` goes to ``observe=`` (None when no flag asked for one --
    the zero-cost path); the rest is kept for post-run reporting.
    """

    def __init__(self, probe, profiler, monitor, server,
                 coverage=None, tracer=None):
        self.probe = probe
        self.profiler = profiler
        self.monitor = monitor
        self.server = server
        self.coverage = coverage
        self.tracer = tracer


def _build_probe(args) -> _ObserveSession:
    """Construct the probes requested by the observability flags."""
    from .observe import (
        AssertionMonitor,
        JsonlRecorder,
        Profiler,
        StreamServer,
        combine_probes,
        default_properties,
        load_properties,
        parse_endpoint,
    )

    probes = []
    profiler = monitor = server = coverage = tracer = None
    profiling = getattr(args, "profile", False) or getattr(
        args, "profile_out", None
    )
    sample = getattr(args, "profile_sample", None)
    if sample is not None and not profiling:
        raise ValueError(
            "--profile-sample needs --profile or --profile-out"
        )
    if getattr(args, "stream_wait", None) is not None \
            and not getattr(args, "stream", None):
        raise ValueError("--stream-wait needs --stream")
    monitoring = getattr(args, "monitor", False) or getattr(
        args, "assert_file", None
    )
    if getattr(args, "assert_out", None) and not monitoring:
        raise ValueError("--assert-out needs --monitor or --assert-file")
    if getattr(args, "observe", None):
        probes.append(JsonlRecorder(args.observe))
    if getattr(args, "stream", None):
        host, port = parse_endpoint(args.stream)
        server = StreamServer(
            host=host, port=port,
            wait_for_client=getattr(args, "stream_wait", None) or 0.0,
        )
        probes.append(server)
        print(f"-- streaming on {server.address[0]}:{server.address[1]}")
    if monitoring:
        properties = []
        if args.monitor:
            properties.extend(default_properties())
        if getattr(args, "assert_file", None):
            properties.extend(load_properties(args.assert_file))
        monitor = AssertionMonitor(
            properties,
            listener=server.emit_violation if server else None,
        )
        # First in the fan-out: violations reach the stream server the
        # moment they are detected, ahead of the raw event records.
        probes.insert(0, monitor)
    if _covering(args):
        from .observe import CoverageProbe

        coverage = CoverageProbe()
        probes.append(coverage)
    if profiling:
        profiler = Profiler(sample_every=sample if sample is not None else 1)
        probes.append(profiler)
    if getattr(args, "trace_out", None):
        from .observe import SpanTracer

        tracer = SpanTracer()
        probes.append(tracer)
    return _ObserveSession(
        combine_probes(probes), profiler, monitor, server,
        coverage=coverage, tracer=tracer,
    )


def _covering(args) -> bool:
    """True when any coverage flag asked for a report."""
    return bool(
        getattr(args, "cover", False)
        or getattr(args, "cover_out", None)
        or getattr(args, "cover_min", None) is not None
        or getattr(args, "cover_db", None) is not None
    )


def _elaborate_span(obs: _ObserveSession):
    """Bracket elaboration as a span when a tracer is attached."""
    import contextlib

    if obs.tracer is None:
        return contextlib.nullcontext()
    return obs.tracer.span("elaborate")


def _emit_observe_outputs(args, obs: _ObserveSession, sim=None) -> bool:
    """Post-run reporting for the observability flags.

    Returns False when the assertion monitor found violations or the
    coverage floor (--cover-min) was missed (the handlers fold this
    into their exit status).  ``sim`` lets the span tracer synthesize
    backend-side spans (plan resolution, shard workers)."""
    ok = True
    if obs.server is not None:
        obs.server.close()
        print(
            f"-- streamed {obs.server.events} events "
            f"({obs.server.dropped} dropped)"
        )
    if getattr(args, "observe", None):
        print(f"-- wrote {args.observe}")
    if obs.monitor is not None and obs.monitor.report is not None:
        report = obs.monitor.report
        print(report.render())
        if getattr(args, "assert_out", None):
            with open(args.assert_out, "w", encoding="utf-8") as handle:
                handle.write(report.to_json(indent=2))
                handle.write("\n")
            print(f"-- wrote {args.assert_out}")
        ok = report.ok
    if obs.profiler is not None:
        if args.profile:
            print(obs.profiler.report())
        if args.profile_out:
            with open(args.profile_out, "w", encoding="utf-8") as handle:
                handle.write(obs.profiler.to_json(indent=2))
                handle.write("\n")
            print(f"-- wrote {args.profile_out}")
    if obs.coverage is not None and obs.coverage.report is not None:
        ok = _emit_coverage_report(args, obs.coverage.report) and ok
    if obs.tracer is not None and getattr(args, "trace_out", None):
        if sim is not None:
            obs.tracer.annotate_backend(sim)
        obs.tracer.write(args.trace_out)
        print(f"-- wrote {args.trace_out}")
    _emit_metrics_out(args)
    return ok


def _emit_coverage_report(args, report) -> bool:
    """Print/write/accumulate one CoverageReport; False on a missed
    ``--cover-min`` floor (checked against the cumulative report when
    ``--cover-db`` accumulates, else against this run's)."""
    from .observe import as_coverage_db

    if getattr(args, "json", False):
        print(report.to_json(indent=2))
    else:
        print(report.render())
    if getattr(args, "cover_out", None):
        with open(args.cover_out, "w", encoding="utf-8") as handle:
            handle.write(report.to_json(indent=2))
            handle.write("\n")
        print(f"-- wrote {args.cover_out}")
    gated = report
    db = as_coverage_db(getattr(args, "cover_db", None))
    if db is not None:
        gated = db.update(report)
        print(
            f"-- coverage db: {gated.hit_count}/{gated.point_count} "
            f"cumulative ({100.0 * gated.coverage:.1f}%) at "
            f"{db.path_for(report.digest)}"
        )
    floor = getattr(args, "cover_min", None)
    if floor is not None and 100.0 * gated.coverage < floor:
        print(
            f"-- coverage {100.0 * gated.coverage:.1f}% below "
            f"--cover-min {floor:g}%"
        )
        return False
    return True


def _emit_metrics_out(args) -> None:
    """Write the process metrics registry when --metrics-out asked."""
    path = getattr(args, "metrics_out", None)
    if not path:
        return
    from .observe import REGISTRY

    text = (
        REGISTRY.to_json(indent=2) if path.endswith(".json")
        else REGISTRY.to_prometheus()
    )
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(text)
        if not text.endswith("\n"):
            handle.write("\n")
    print(f"-- wrote {path}")


# ----------------------------------------------------------------------
# handlers
# ----------------------------------------------------------------------
def cmd_check(args) -> int:
    from .vhdl import check_subset

    with open(args.file, encoding="utf-8") as handle:
        report = check_subset(handle.read())
    print(report)
    return 0 if report.conformant else 1


def cmd_run(args) -> int:
    from .vhdl import Elaborator

    _validate_backend_flags(args)
    with open(args.file, encoding="utf-8") as handle:
        text = handle.read()
    observed = bool(
        args.vcd or args.observe or args.profile or args.profile_out
        or args.monitor or args.assert_file or args.stream
        or _covering(args) or args.metrics_out or args.trace_out
    )
    if args.backend != "event" or args.no_transfer_engine or observed:
        # The VHDL interpreter is event-only and untraced; the
        # observability flags go through the model path, where every
        # backend exposes the probe/trace seam.
        return _run_via_model(args, text)
    design = Elaborator(text).elaborate(args.top)
    design.run()
    wanted = [s.strip().lower() for s in args.signals.split(",") if s.strip()]
    names = wanted or sorted(design.signals)
    for name in names:
        signal = design.signal(name)
        print(f"{signal.name} = {signal.value}")
    stats = design.sim.stats
    print(
        f"-- {stats.delta_cycles} delta cycles, {stats.events} events, "
        f"physical time {design.sim.now.time} ns"
    )
    return 0


def _run_via_model(args, text: str) -> int:
    """Non-default backends interpret the design *structurally*: the
    §2.7 architecture is recovered into an RT model and handed to the
    selected engine backend (the VHDL interpreter is event-only)."""
    from .vhdl import recover_model

    model = recover_model(text, args.top)
    obs = _build_probe(args)
    with _elaborate_span(obs):
        sim = model.elaborate(
            backend=args.backend,
            transfer_engine=not args.no_transfer_engine,
            trace=bool(args.vcd),
            observe=obs.probe,
            shards=args.shards,
            plan_cache=_plan_cache_arg(args),
        )
    sim.run()
    _print_plan_line(sim)
    _print_codegen_line(sim)
    wanted = [s.strip().lower() for s in args.signals.split(",") if s.strip()]
    values = {
        f"{name}_out": value for name, value in sim.registers.items()
    }
    names = wanted or sorted(values)
    for name in names:
        if name not in values:
            raise ValueError(
                f"unknown signal {name!r} (the {args.backend!r} backend "
                f"exposes register outputs only)"
            )
        print(f"{name} = {values[name]}")
    if args.vcd:
        from .observe import export_vcd

        export_vcd(sim, args.vcd)
        print(f"-- wrote {args.vcd}")
    assertions_ok = _emit_observe_outputs(args, obs, sim)
    stats = sim.stats
    print(
        f"-- {stats.delta_cycles} delta cycles, {stats.events} events, "
        f"physical time 0 ns"
    )
    return 0 if (sim.clean and assertions_ok) else 1


def cmd_analyze(args) -> int:
    from .core.occupancy import occupancy

    model = load_model(args.file)
    report = analyze(model)
    print(model.describe())
    print()
    print(report)
    if args.occupancy:
        usage = occupancy(model)
        print()
        print(usage.describe())
        print()
        print(usage.chart())
    return 0 if report.clean else 1


def cmd_simulate(args) -> int:
    _validate_backend_flags(args, allow_batched=True)
    model = load_model(args.file)
    overrides = {}
    for item in args.set:
        name, eq, value = item.partition("=")
        if not eq:
            raise ValueError(f"--set expects REG=VALUE, got {item!r}")
        overrides[name] = int(value)
    if args.backend.endswith("-batched"):
        return _simulate_batched(args, model, overrides)
    if args.batch is not None or args.vectors_from:
        raise ValueError(
            "--batch/--vectors-from require a batched backend "
            "(compiled-batched or compiled-py-batched)"
        )
    obs = _build_probe(args)
    with _elaborate_span(obs):
        sim = model.elaborate(
            register_values=overrides or None,
            trace=bool(args.vcd or args.trace),
            backend=args.backend,
            transfer_engine=not args.no_transfer_engine,
            observe=obs.probe,
            shards=args.shards,
            plan_cache=_plan_cache_arg(args),
        )
    sim.run()
    _print_plan_line(sim)
    _print_codegen_line(sim)
    for name, value in sorted(sim.registers.items()):
        print(f"{name} = {format_value(value)}")
    if sim.conflicts:
        print()
        print(sim.monitor.report())
    if args.trace:
        print()
        print(sim.tracer.format_table())
    if args.vcd:
        with open(args.vcd, "w", encoding="utf-8") as handle:
            sim.tracer.write_vcd(handle, design_name=model.name)
        print(f"-- wrote {args.vcd}")
    assertions_ok = _emit_observe_outputs(args, obs, sim)
    stats = sim.stats
    print(f"-- {stats.delta_cycles} delta cycles (= CS_MAX*6 = {model.cs_max * 6})")
    return 0 if (sim.clean and assertions_ok) else 1


def _simulate_batched(args, model, overrides: dict) -> int:
    """`repro simulate --backend compiled-batched`: the sweep path.

    Vectors come from ``--vectors-from`` (JSONL, one register mapping
    per line), or ``--batch N`` (N replicas of the ``--set`` overrides,
    or N random vectors when ``--seed`` is given).  ``--monitor`` /
    ``--assert-file`` check every lane (per-lane trace replay,
    bit-identical verdicts to N scalar runs).  Exit status is 0 iff
    every vector's run stayed clean and no lane violated an assertion.
    """
    import json
    import random

    if args.vcd or args.trace or args.observe or args.profile \
            or args.profile_out or args.stream or args.trace_out:
        raise ValueError(
            "--vcd/--trace/--observe/--profile/--stream/--trace-out "
            "produce single-run output; not supported with the "
            "compiled-batched backend"
        )
    monitoring = bool(args.monitor or args.assert_file)
    covering = _covering(args)
    if args.assert_out and not monitoring:
        raise ValueError("--assert-out needs --monitor or --assert-file")
    if args.vectors_from:
        if args.batch is not None or args.seed is not None:
            raise ValueError(
                "--vectors-from is exclusive with --batch/--seed"
            )
        vectors = []
        with open(args.vectors_from, encoding="utf-8") as handle:
            for line_no, line in enumerate(handle, start=1):
                if not line.strip():
                    continue
                record = json.loads(line)
                if not isinstance(record, dict):
                    raise ValueError(
                        f"{args.vectors_from}:{line_no}: expected a "
                        f"{{register: value}} object"
                    )
                vectors.append({**overrides, **{
                    str(k): int(v) for k, v in record.items()
                }})
        if not vectors:
            raise ValueError(f"{args.vectors_from} holds no vectors")
    else:
        count = args.batch if args.batch is not None else 1
        if count < 1:
            raise ValueError(f"--batch must be >= 1, got {count}")
        if args.seed is not None:
            rng = random.Random(args.seed)
            vectors = [
                {
                    name: rng.randrange(0, 1 << model.width)
                    for name in model.registers
                }
                for _ in range(count)
            ]
        else:
            vectors = [dict(overrides) for _ in range(count)]
    watch = None
    if monitoring or covering:
        from .observe import monitored_watch_list

        watch = monitored_watch_list(model)
    sim = model.elaborate(
        register_values=vectors, backend=args.backend, watch=watch,
        plan_cache=_plan_cache_arg(args),
    ).run()
    _print_plan_line(sim)
    _print_codegen_line(sim)
    clean_count = int(sim.clean_mask.sum())
    total = len(vectors)
    if total <= 8:
        for i in range(total):
            row = " ".join(
                f"{name}={format_value(value)}"
                for name, value in sorted(sim.registers[i].items())
            )
            flag = "" if sim.clean_mask[i] else "  [conflicts]"
            print(f"vector {i}: {row}{flag}")
    violation_total = 0
    if monitoring:
        from .observe import (
            default_properties, evaluate_trace, load_properties,
        )

        properties = []
        if args.monitor:
            properties.extend(default_properties(model))
        if args.assert_file:
            properties.extend(load_properties(args.assert_file))
        reports = [
            evaluate_trace(model, sim.tracers[i], properties, sim.conflicts[i])
            for i in range(total)
        ]
        violation_total = sum(len(r.violations) for r in reports)
        failing = [i for i, r in enumerate(reports) if not r.ok]
        print(
            f"assertions: {len(properties)} properties, "
            f"{violation_total} violations over {total} lanes"
        )
        for i in failing[:8]:
            for line in reports[i].render().splitlines()[1:]:
                print(f"  lane {i}:{line}")
        if len(failing) > 8:
            print(f"  ... and {len(failing) - 8} more failing lanes")
        if args.assert_out:
            with open(args.assert_out, "w", encoding="utf-8") as handle:
                json.dump([r.to_dict() for r in reports], handle, indent=2)
                handle.write("\n")
            print(f"-- wrote {args.assert_out}")
    coverage_ok = True
    if covering:
        from .observe import CoverageModel, coverage_from_trace

        cov = CoverageModel.from_plan(sim.model_plan)
        merged = coverage_from_trace(cov, sim.tracers[0], sim.conflicts[0])
        for i in range(1, total):
            merged = merged.merge(
                coverage_from_trace(cov, sim.tracers[i], sim.conflicts[i])
            )
        coverage_ok = _emit_coverage_report(args, merged)
    _emit_metrics_out(args)
    conflict_total = sum(len(events) for events in sim.conflicts)
    print(
        f"-- {total} vectors, {clean_count} clean, "
        f"{conflict_total} conflict events, "
        f"{sim.stats.delta_cycles} delta cycles "
        f"(= CS_MAX*6 = {model.cs_max * 6})"
    )
    return 0 if (
        clean_count == total and violation_total == 0 and coverage_ok
    ) else 1


def cmd_reschedule(args) -> int:
    from .core.reschedule import reschedule

    model = load_model(args.file)
    result = reschedule(model)
    print(result.describe())
    # Safety: the compacted model must produce identical results.
    before = model.elaborate().run().registers
    after = result.model.elaborate().run().registers
    if before != after:
        print("error: rescheduling changed results; not writing output",
              file=sys.stderr)
        return 1
    print("-- verified: identical register results")
    if args.output:
        save_model(result.model, args.output)
        print(f"-- wrote {args.output}")
    return 0


def cmd_emit(args) -> int:
    from .vhdl import emit_model_vhdl

    text = emit_model_vhdl(load_model(args.file))
    _write_output(text, args.output)
    return 0


def cmd_clocked(args) -> int:
    from .clocked import check_equivalence, emit_clocked_vhdl, translate

    model = load_model(args.file)
    translation = translate(model)
    if args.verify:
        report = check_equivalence(model, translation=translation)
        print(f"-- {report}", file=sys.stderr)
        if not report.equivalent:
            return 1
    _write_output(emit_clocked_vhdl(translation), args.output)
    return 0


def cmd_synth(args) -> int:
    from .hls import synthesize
    from .verify import all_equivalent, check_program_vs_model

    with open(args.file, encoding="utf-8") as handle:
        source = handle.read()
    resources = {}
    for item in args.resources.split(","):
        if not item.strip():
            continue
        name, eq, count = item.partition("=")
        if not eq:
            raise ValueError(f"--resources expects CLASS=N, got {item!r}")
        resources[name.strip().upper()] = int(count)
    result = synthesize(source, resources=resources or None)
    print(
        f"{len(result.dfg.op_nodes)} operations scheduled in "
        f"{result.schedule.makespan} control steps; "
        f"{result.allocation.temp_count} temp registers, "
        f"{result.allocation.bus_count} buses"
    )
    if args.verify:
        outcomes = check_program_vs_model(
            result.program, result.model, result.output_regs
        )
        for outcome in outcomes:
            print(f"  {outcome}")
        if not all_equivalent(outcomes):
            return 1
    if args.output:
        save_model(result.model, args.output)
        print(f"-- wrote {args.output}")
    return 0


def cmd_iks(args) -> int:
    from .iks import crosscheck, forward_kinematics

    _validate_backend_flags(args)
    px_text, _, py_text = args.target.partition(",")
    px, py = float(px_text), float(py_text)
    backend = args.backend
    transfer_engine = not args.no_transfer_engine
    obs = _build_probe(args)
    if args.phi is not None:
        return _cmd_iks3(args, px, py, args.phi, obs)
    run, ref = crosscheck(
        px, py, backend=backend, transfer_engine=transfer_engine,
        trace=bool(args.vcd), observe=obs.probe, shards=args.shards,
        plan_cache=_plan_cache_arg(args),
    )
    _print_plan_line(run.simulation)
    _print_codegen_line(run.simulation)
    fx, fy = forward_kinematics(run.theta1_rad, run.theta2_rad)
    print(f"target      : ({px}, {py})")
    print(f"chip        : theta1={run.theta1_rad:.6f}  theta2={run.theta2_rad:.6f}")
    print(f"algorithmic : theta1={ref.theta1_rad:.6f}  theta2={ref.theta2_rad:.6f}")
    exact = (run.theta1, run.theta2) == (ref.theta1, ref.theta2)
    print(f"bit-exact   : {exact}")
    print(f"FK check    : ({fx:.5f}, {fy:.5f})")
    print(
        f"simulation  : {run.simulation.stats.delta_cycles} delta cycles, "
        f"{len(run.simulation.conflicts)} conflicts"
    )
    assertions_ok = _emit_iks_observe(args, run.simulation, obs)
    return 0 if (run.clean and exact and assertions_ok) else 1


def _emit_iks_observe(args, sim, obs: _ObserveSession) -> bool:
    if args.vcd:
        from .observe import export_vcd

        export_vcd(sim, args.vcd)
        print(f"-- wrote {args.vcd}")
    return _emit_observe_outputs(args, obs, sim)


def _cmd_iks3(args, px: float, py: float, phi: float, obs: _ObserveSession) -> int:
    from .iks import forward_kinematics3, run_ik3_chip, solve_ik3

    run = run_ik3_chip(
        px, py, phi,
        backend=args.backend,
        transfer_engine=not args.no_transfer_engine,
        trace=bool(args.vcd),
        observe=obs.probe,
        shards=args.shards,
        plan_cache=_plan_cache_arg(args),
    )
    _print_plan_line(run.simulation)
    _print_codegen_line(run.simulation)
    ref = solve_ik3(px, py, phi)
    fx, fy, fphi = forward_kinematics3(
        run.theta1_rad, run.theta2_rad, run.theta3_rad
    )
    print(f"target      : ({px}, {py}) @ phi={phi}")
    print(
        f"chip        : theta1={run.theta1_rad:.6f}  "
        f"theta2={run.theta2_rad:.6f}  theta3={run.theta3_rad:.6f}"
    )
    print(
        f"algorithmic : theta1={ref.theta1_rad:.6f}  "
        f"theta2={ref.theta2_rad:.6f}  theta3={ref.theta3_rad:.6f}"
    )
    exact = (run.theta1, run.theta2, run.theta3) == (
        ref.theta1, ref.theta2, ref.theta3,
    )
    print(f"bit-exact   : {exact}")
    print(f"FK check    : ({fx:.5f}, {fy:.5f}) @ {fphi:.5f}")
    print(
        f"simulation  : {run.simulation.stats.delta_cycles} delta cycles, "
        f"{len(run.simulation.conflicts)} conflicts"
    )
    assertions_ok = _emit_iks_observe(args, run.simulation, obs)
    return 0 if (run.clean and exact and assertions_ok) else 1


def cmd_plan(args) -> int:
    """`repro plan`: lower a model and print the Plan IR summary.

    The model goes through the exact pipeline every compiled backend
    elaborates with (:func:`repro.engine.plan.lower`), so the printed
    digest is the cache key a ``--plan-cache`` run would use.
    ``--emit-code`` prints the specialized executor source the
    ``compiled-py`` backend generates from the plan; ``--gc`` prunes
    stale/foreign cache entries instead of lowering anything.
    """
    from .engine.plan import resolve_plan

    if args.gc:
        if args.file is not None or args.digest or args.json \
                or args.emit_code:
            raise ValueError(
                "--gc takes no model file and no inspection flags"
            )
        return _plan_gc(args)
    if args.file is None:
        raise ValueError("a model JSON file is required (or use --gc)")
    model = load_model(args.file)
    handle = resolve_plan(model, plan_cache=args.plan_cache)
    plan = handle.plan
    if args.digest:
        print(plan.digest)
        return 0
    if args.emit_code:
        from .engine.codegen import generate_source, model_op_arities

        print(generate_source(plan, model_op_arities(model, plan)))
        return 0
    if args.json:
        import json

        print(json.dumps(plan.summary(), indent=2))
    else:
        print(plan.describe())
    if handle.source != "off":
        print(
            f"-- plan_cache: {handle.source} "
            f"build_ms={handle.build_ms:.2f}"
        )
    return 0


def _plan_gc(args) -> int:
    """`repro plan --gc`: prune the on-disk plan + codegen caches."""
    from .engine.codegen import gc_caches
    from .engine.plan import default_cache_root

    root = args.plan_cache if isinstance(args.plan_cache, str) \
        else default_cache_root()
    report = gc_caches(root)
    for kind in ("plans", "codegen"):
        stat = report[kind]
        print(
            f"{kind}: kept {stat['kept']}, removed {stat['removed']}"
        )
        for name in stat["removed_names"][:16]:
            print(f"  removed {name}")
        extra = len(stat["removed_names"]) - 16
        if extra > 0:
            print(f"  ... and {extra} more")
    return 0


def cmd_cover(args) -> int:
    """`repro cover`: measure a model's structural coverage.

    One run under the selected backend (or one batched sweep with
    ``--batch``), reported against the Plan-derived universe --
    transfers, (CS, PH) cells, port value classes and conflict pairs.
    The numbers are backend-identical, so the backend choice is purely
    about execution cost.  ``--cover-db`` accumulates runs across
    processes (content-addressed by model digest); ``--cover-min``
    turns the overall percentage into an exit-status gate for CI.
    """
    from .observe import measure_coverage

    _validate_backend_flags(args, allow_batched=True)
    model = load_model(args.file)
    overrides = {}
    for item in args.set:
        name, eq, value = item.partition("=")
        if not eq:
            raise ValueError(f"--set expects REG=VALUE, got {item!r}")
        overrides[name] = int(value)
    if not args.backend.endswith("-batched"):
        if args.batch is not None or args.seed is not None or args.per_lane:
            raise ValueError(
                "--batch/--seed/--per-lane require a batched backend "
                "(compiled-batched or compiled-py-batched)"
            )
        report = measure_coverage(
            model,
            backend=args.backend,
            register_values=overrides or None,
            transfer_engine=not args.no_transfer_engine,
            shards=args.shards,
            plan_cache=_plan_cache_arg(args),
        )
    else:
        import random

        count = args.batch if args.batch is not None else 1
        if count < 1:
            raise ValueError(f"--batch must be >= 1, got {count}")
        if args.seed is not None:
            rng = random.Random(args.seed)
            vectors = [
                {
                    name: rng.randrange(0, 1 << model.width)
                    for name in model.registers
                }
                for _ in range(count)
            ]
        else:
            vectors = [dict(overrides) for _ in range(count)]
        reports = measure_coverage(
            model,
            backend=args.backend,
            register_values=vectors,
            per_lane=True,
            plan_cache=_plan_cache_arg(args),
        )
        if args.per_lane:
            for i, lane in enumerate(reports):
                print(
                    f"lane {i}: {lane.hit_count}/{lane.point_count} "
                    f"({100.0 * lane.coverage:.1f}%)"
                )
        report = reports[0]
        for lane in reports[1:]:
            report = report.merge(lane)
    return 0 if _emit_coverage_report(args, report) else 1


def cmd_metrics(args) -> int:
    """`repro metrics`: export the process metrics registry.

    Metrics live per process, so the optional model file runs first in
    *this* process and the exposition then carries that run's samples
    (plan-cache verdicts, per-backend run counters).  Long-lived
    embedders export :data:`repro.observe.REGISTRY` directly.
    """
    from .observe import REGISTRY

    if args.file is not None:
        _validate_backend_flags(args)
        model = load_model(args.file)
        sim = model.elaborate(
            backend=args.backend,
            transfer_engine=not args.no_transfer_engine,
            shards=args.shards,
            plan_cache=_plan_cache_arg(args),
        ).run()
        _print_plan_line(sim)
    _print_codegen_line(sim)
    text = (
        REGISTRY.to_json(indent=2) if args.json
        else REGISTRY.to_prometheus()
    )
    if not text.endswith("\n"):
        text += "\n"
    if args.out:
        with open(args.out, "w", encoding="utf-8") as handle:
            handle.write(text)
        print(f"-- wrote {args.out}")
    else:
        print(text, end="")
    return 0


def cmd_report(args) -> int:
    from .observe import RunReport

    report = RunReport.from_jsonl(args.file)
    if args.json:
        print(report.to_json(indent=2))
    else:
        print(report.render())
    return 0


def cmd_watch(args) -> int:
    from .observe import parse_endpoint, watch_stream

    host, port = parse_endpoint(args.endpoint)
    if args.max_events is not None and args.max_events < 1:
        raise ValueError(f"--max-events must be >= 1, got {args.max_events}")
    count = watch_stream(
        host, port,
        out=sys.stdout,
        raw=args.raw,
        max_events=args.max_events,
        timeout=args.timeout,
    )
    print(f"-- stream closed after {count} events", file=sys.stderr)
    return 0


def cmd_serve(args) -> int:
    """`repro serve`: the batching simulation service, until Ctrl-C.

    Boots :class:`repro.serve.ServeServer` on its own event-loop
    thread and blocks; SIGINT *or* SIGTERM (what process managers
    send) triggers the graceful drain (in-flight sweeps finish inside
    ``--drain-timeout``, new requests are rejected with 503
    ``closing``).
    """
    import signal
    import threading

    from .serve import serve_in_thread

    handle = serve_in_thread(
        host=args.host,
        port=args.port,
        backend=args.serve_backend,
        max_batch=args.max_batch,
        max_pending=args.max_pending,
        batch_window_ms=args.batch_window_ms,
        plan_cache=args.plan_cache,
        max_models=args.max_models,
        max_workers=args.workers,
        drain_timeout=args.drain_timeout,
        access_log=args.access_log,
        trace_out=args.trace_out,
        flight_dir=args.flight_dir,
        flight_size=args.flight_size,
    )
    host, port = handle.address
    print(
        f"-- repro serve on http://{host}:{port} "
        f"(backend {handle.server.engine.backend}, "
        f"max_batch {args.max_batch}, max_pending {args.max_pending})",
        file=sys.stderr,
    )
    # Block until a shutdown signal.  SIGINT arrives as
    # KeyboardInterrupt; SIGTERM would otherwise take the default
    # handler and kill the process without draining, so route it to
    # the same path (main thread only — the server loop runs on its
    # own daemon thread).
    stop = threading.Event()
    previous = signal.signal(signal.SIGTERM, lambda signum, frame: stop.set())
    # SIGUSR1 dumps the flight recorder (recent requests + health
    # snapshot) without disturbing the server -- the operator's
    # "what just happened" button.
    previous_usr1 = None
    if hasattr(signal, "SIGUSR1"):
        def _dump(signum, frame):
            path = handle.server.dump_flight("sigusr1", force=True)
            print(f"-- flight recorder dumped to {path}", file=sys.stderr)

        previous_usr1 = signal.signal(signal.SIGUSR1, _dump)
    try:
        while not stop.wait(3600):
            pass
    except KeyboardInterrupt:
        pass
    finally:
        signal.signal(signal.SIGTERM, previous)
        if previous_usr1 is not None:
            signal.signal(signal.SIGUSR1, previous_usr1)
    print("-- draining in-flight sweeps...", file=sys.stderr)
    drained = handle.close()
    print(
        f"-- shut down ({'drained' if drained else 'drain timed out'})",
        file=sys.stderr,
    )
    return 0


def _top_buckets(parsed: dict, family: str, **labels: str) -> dict:
    """Cumulative ``le`` buckets of one histogram label set."""
    buckets: dict = {}
    for sample in parsed.get(f"{family}_bucket", {}).get("samples", []):
        row = sample["labels"]
        if any(row.get(k) != v for k, v in labels.items()):
            continue
        buckets[float(row["le"])] = sample["value"]
    return buckets


def _top_counter(parsed: dict, family: str, **labels: str) -> float:
    total = 0.0
    for sample in parsed.get(family, {}).get("samples", []):
        row = sample["labels"]
        if any(row.get(k) != v for k, v in labels.items()):
            continue
        total += sample["value"]
    return total


def _top_render(parsed: dict, prev: dict, elapsed: float) -> str:
    """One dashboard frame from a parsed /v1/metrics scrape.

    ``prev`` maps op -> the previous scrape's request total, so rps is
    a true rate over the poll window, not a lifetime average."""
    from .observe.metrics import histogram_quantile

    ops = sorted({
        sample["labels"]["op"]
        for sample in parsed.get("repro_serve_requests_total", {}).get(
            "samples", []
        )
    })
    lines = [
        f"{'OP':<10} {'TOTAL':>8} {'RPS':>8} {'P50 MS':>9} "
        f"{'P99 MS':>9} {'ERRORS':>7}"
    ]
    for op in ops:
        total = _top_counter(parsed, "repro_serve_requests_total", op=op)
        ok = _top_counter(
            parsed, "repro_serve_requests_total", op=op, code="ok"
        )
        rps = max(0.0, total - prev.get(op, 0.0)) / elapsed if elapsed else 0.0
        prev[op] = total
        buckets = _top_buckets(parsed, "repro_serve_request_ms", op=op)
        p50 = histogram_quantile(buckets, 0.50) if buckets else 0.0
        p99 = histogram_quantile(buckets, 0.99) if buckets else 0.0
        lines.append(
            f"{op:<10} {int(total):>8} {rps:>8.1f} {p50:>9.3f} "
            f"{p99:>9.3f} {int(total - ok):>7}"
        )
    hits = _top_counter(parsed, "repro_serve_models_total", outcome="hit")
    submits = _top_counter(parsed, "repro_serve_models_total")
    depth = _top_counter(parsed, "repro_serve_queue_depth")
    rejected = _top_counter(parsed, "repro_serve_rejections_total")
    sweeps = _top_counter(parsed, "repro_serve_sweeps_total")
    hit_rate = f"{100.0 * hits / submits:.1f}%" if submits else "n/a"
    lines.append(
        f"cache hit {hit_rate} ({int(hits)}/{int(submits)})  "
        f"queue depth {int(depth)}  rejections {int(rejected)}  "
        f"sweeps {int(sweeps)}"
    )
    return "\n".join(lines)


def cmd_top(args) -> int:
    """`repro top`: a live table over the service's /v1/metrics.

    Polls every ``--interval`` seconds and renders per-op request
    totals, rps over the window, p50/p99 latency (upper-bound
    estimates from the histogram buckets), cache hit rate, queue depth
    and rejection counts.  ``--iterations N`` bounds the run (scripts,
    tests); the default polls until Ctrl-C.
    """
    import time

    from .observe.metrics import parse_prometheus
    from .serve.client import ServeClient, ServeClientError

    prev: dict = {}
    last_poll = None
    count = 0
    try:
        with ServeClient(args.host, args.port) as client:
            while True:
                try:
                    text = client.metrics()
                except (ServeClientError, ConnectionError, OSError) as exc:
                    print(
                        f"repro top: cannot scrape "
                        f"http://{args.host}:{args.port}/v1/metrics: {exc}",
                        file=sys.stderr,
                    )
                    return 1
                now = time.perf_counter()
                elapsed = (now - last_poll) if last_poll is not None else 0.0
                last_poll = now
                frame = _top_render(parse_prometheus(text), prev, elapsed)
                if not args.no_clear:
                    print("\x1b[2J\x1b[H", end="")
                print(f"repro top -- http://{args.host}:{args.port}")
                print(frame, flush=True)
                count += 1
                if args.iterations and count >= args.iterations:
                    return 0
                time.sleep(args.interval)
    except KeyboardInterrupt:
        return 0


def _bench_default_model():
    """The paper's Fig. 1 example (R1 + R2 -> R1 in steps 5/6)."""
    from .core import ModuleSpec, RTModel

    model = RTModel("example", cs_max=7)
    model.register("R1", init=2)
    model.register("R2", init=3)
    model.bus("B1")
    model.bus("B2")
    model.module(ModuleSpec("ADD", latency=1))
    model.add_transfer("(R1,B1,R2,B2,5,ADD,6,B1,R1)")
    return model


def _bench_write_record(record: dict, out: str) -> str:
    """Write a benchmark record, creating parent directories.

    Returns the resolved path actually written, so callers (and CI
    logs) always name the real location instead of a CWD-relative
    guess.
    """
    import json
    from pathlib import Path

    out_path = Path(out).resolve()
    out_path.parent.mkdir(parents=True, exist_ok=True)
    with open(out_path, "w", encoding="utf-8") as handle:
        json.dump(record, handle, indent=2)
        handle.write("\n")
    return str(out_path)


def cmd_bench(args) -> int:
    """Batched-vs-sequential sweep: the repo's recorded perf trajectory.

    Runs ``--vectors`` random register-value vectors through N
    sequential ``compiled`` elaborations and through one
    ``compiled-batched`` run, verifies the results are identical, and
    writes a JSON record (vectors/sec per backend, speedup, model
    size) -- the artifact CI uploads as ``BENCH_batched.json``.

    ``--sharded`` switches to the multi-process benchmark: the same
    model run once per backend (``compiled`` vs ``sharded`` at
    ``--shards`` workers, best of ``--repeat``), verified bit-identical
    and recorded as ``BENCH_sharded.json`` with per-shard barrier
    metrics.

    ``--plan`` switches to the lowering benchmark: cold plan lowering
    vs a warm content-addressed cache hit, recorded as
    ``BENCH_plan.json`` (see :func:`_bench_plan`).

    ``--codegen`` switches to the generated-executor benchmark: the
    ``compiled-py`` backend vs the ``compiled`` interpreter on Fig. 1
    and the E6 IKS chip, recorded as ``BENCH_codegen.json`` (see
    :func:`_bench_codegen`).

    ``--serve`` switches to the service load benchmark: ``--clients``
    concurrent connections against one in-process server vs
    per-request sequential ``compiled`` runs, every response verified
    bit-identical, recorded as ``BENCH_serve.json`` (see
    :func:`_bench_serve`).
    """
    import random
    import time

    modes = [
        name for name, flag in (
            ("--plan", args.plan),
            ("--sharded", args.sharded),
            ("--codegen", args.codegen),
            ("--serve", args.serve),
        ) if flag
    ]
    if len(modes) > 1:
        raise ValueError(f"{' and '.join(modes)} are exclusive")
    if args.serve:
        return _bench_serve(args)
    if args.codegen:
        return _bench_codegen(args)
    if args.plan:
        return _bench_plan(args)
    if args.sharded:
        return _bench_sharded(args)
    if args.vectors < 1:
        raise ValueError(f"--vectors must be >= 1, got {args.vectors}")
    if args.model:
        model = load_model(args.model)
        model_name = model.name
    else:
        model = _bench_default_model()
        model_name = "fig1 (built-in)"
    rng = random.Random(args.seed)
    vectors = [
        {
            name: rng.randrange(0, 1 << model.width)
            for name in model.registers
        }
        for _ in range(args.vectors)
    ]

    from .engine import run_metrics

    t0 = time.perf_counter()
    sequential = [
        model.elaborate(register_values=vec, backend="compiled").run()
        for vec in vectors
    ]
    seq_wall = time.perf_counter() - t0
    t0 = time.perf_counter()
    batched = model.elaborate(
        register_values=vectors, backend="compiled-batched"
    ).run()
    batch_wall = time.perf_counter() - t0

    mismatches = [
        i
        for i, sim in enumerate(sequential)
        if batched.registers[i] != sim.registers
        or bool(batched.clean_mask[i]) != sim.clean
    ]
    if mismatches:
        print(
            f"error: batched results differ from sequential runs for "
            f"vectors {mismatches[:8]}",
            file=sys.stderr,
        )
        return 1

    seq_rate = args.vectors / seq_wall if seq_wall > 0 else float("inf")
    batch_rate = args.vectors / batch_wall if batch_wall > 0 else float("inf")
    speedup = seq_wall / batch_wall if batch_wall > 0 else float("inf")
    record = {
        "benchmark": "batched-vs-sequential",
        "model": _bench_model_record(model, model_name),
        "vectors": args.vectors,
        "seed": args.seed,
        "sequential": {
            "backend": "compiled",
            "wall": seq_wall,
            "vectors_per_sec": seq_rate,
        },
        "batched": {
            "backend": "compiled-batched",
            "wall": batch_wall,
            "vectors_per_sec": batch_rate,
            "metrics": run_metrics(batched, wall=batch_wall),
        },
        "speedup": speedup,
    }
    written = _bench_write_record(record, args.out or "BENCH_batched.json")
    print(
        f"{model_name}: {args.vectors} vectors -- sequential "
        f"{seq_rate:,.0f} vec/s, batched {batch_rate:,.0f} vec/s, "
        f"speedup {speedup:.1f}x"
    )
    print(f"-- wrote {written}")
    return 0


def _bench_model_record(model, model_name: str) -> dict:
    return {
        "name": model_name,
        "cs_max": model.cs_max,
        "width": model.width,
        "registers": len(model.registers),
        "buses": len(model.buses),
        "modules": len(model.modules),
        "transfers": len(model.trans_specs()),
    }


def _bench_serve(args) -> int:
    """`repro bench --serve`: service throughput vs per-request runs.

    Both sides are measured end to end through the service at the same
    concurrency, so the comparison isolates exactly what the tentpole
    adds.  The *sequential* baseline is the ablation: a server with no
    compiled-model cache (``max_models=0`` -- every request ships the
    model document inline and pays decode + lower), no armed-sim reuse
    and no coalescing (``max_batch=1`` -- every request is its own
    sequential ``compiled`` elaborate + run).  The *serve* side is the
    real configuration: the model is submitted once, and ``--vectors``
    single-vector simulate requests over ``--clients`` keep-alive
    connections coalesce into plane sweeps over re-armed cached
    elaborations.  Every response's registers and clean flag are
    verified bit-identical to an in-process sequential ``compiled``
    run before the record is written (``BENCH_serve.json``).
    """
    import random
    import time

    from .core.serialize import model_to_dict
    from .serve import ServeClient, drive_load, serve_in_thread
    from .serve.protocol import decode_registers

    if args.vectors < 1:
        raise ValueError(f"--vectors must be >= 1, got {args.vectors}")
    if args.clients < 1:
        raise ValueError(f"--clients must be >= 1, got {args.clients}")
    if args.model:
        model = load_model(args.model)
        model_name = model.name
    else:
        model = _bench_default_model()
        model_name = "fig1 (built-in)"
    rng = random.Random(args.seed)
    vectors = [
        {
            name: rng.randrange(0, 1 << model.width)
            for name in model.registers
        }
        for _ in range(args.vectors)
    ]

    # In-process reference results for the bit-identity check (and a
    # transport-free reference rate for the record).
    t0 = time.perf_counter()
    sequential = [
        model.elaborate(register_values=vec, backend="compiled").run()
        for vec in vectors
    ]
    ref_wall = time.perf_counter() - t0

    document = model_to_dict(model)
    warm = min(4 * args.clients, args.vectors)

    # -- baseline: per-request sequential compiled service (ablation) --
    base = serve_in_thread(
        backend="compiled",
        max_batch=1,
        max_models=0,
        reuse_sims=False,
        max_pending=max(256, 4 * args.clients),
    )
    try:
        host, port = base.address
        drive_load(host, port, document, vectors[:warm], clients=args.clients)
        seq_results: dict = {}
        seq_load = drive_load(
            host, port, document, vectors,
            clients=args.clients, results=seq_results,
        )
    finally:
        base.close()

    # -- the real thing: cache + batched lane multiplexing -------------
    handle = serve_in_thread(max_pending=max(256, 4 * args.clients))
    try:
        client = ServeClient(*handle.address)
        digest = client.submit(model)["digest"]
        client.close()
        host, port = handle.address
        # Warm-up pass: connection setup, lane creation, first sweep.
        drive_load(host, port, digest, vectors[:warm], clients=args.clients)
        results: dict = {}
        load = drive_load(
            host, port, digest, vectors,
            clients=args.clients, results=results,
        )
        stats = handle.server.engine.stats()
    finally:
        handle.close()

    for side, run in (("sequential", seq_load), ("serve", load)):
        if run["errors"]:
            print(
                f"error: {run['errors']} of {args.vectors} {side} requests "
                f"failed ({', '.join(run['error_codes'])})",
                file=sys.stderr,
            )
            return 1
    mismatches = [
        i
        for i, sim in enumerate(sequential)
        for got in (results, seq_results)
        if i not in got
        or decode_registers(got[i]["registers"]) != sim.registers
        or got[i]["clean"] != sim.clean
    ]
    if mismatches:
        print(
            f"error: served results differ from sequential runs for "
            f"vectors {sorted(set(mismatches))[:8]}",
            file=sys.stderr,
        )
        return 1

    speedup = (
        load["rps"] / seq_load["rps"] if seq_load["rps"] > 0 else float("inf")
    )
    record = {
        "benchmark": "serve",
        "model": _bench_model_record(model, model_name),
        "vectors": args.vectors,
        "seed": args.seed,
        "clients": args.clients,
        "backend": stats["backend"],
        "sequential": {
            "backend": "compiled",
            "per_request": "decode + lower + elaborate + run, no "
                           "coalescing (max_models=0, max_batch=1)",
            "wall": seq_load["wall_s"],
            "requests_per_sec": seq_load["rps"],
            "p50_ms": seq_load["p50_ms"],
            "p99_ms": seq_load["p99_ms"],
        },
        "reference_in_process": {
            "backend": "compiled",
            "wall": ref_wall,
            "requests_per_sec": (
                args.vectors / ref_wall if ref_wall > 0 else float("inf")
            ),
        },
        "serve": {
            "wall": load["wall_s"],
            "requests_per_sec": load["rps"],
            "p50_ms": load["p50_ms"],
            "p99_ms": load["p99_ms"],
            "mean_ms": load["mean_ms"],
            "sweeps": stats["sweeps"],
            "batch_mean": stats["batch_mean"],
        },
        "speedup": speedup,
    }
    written = _bench_write_record(record, args.out or "BENCH_serve.json")
    print(
        f"{model_name}: {args.vectors} requests x {args.clients} clients "
        f"-- per-request {seq_load['rps']:,.0f} req/s, served "
        f"{load['rps']:,.0f} req/s (p50 {load['p50_ms']}ms, p99 "
        f"{load['p99_ms']}ms, mean batch {stats['batch_mean']}), "
        f"speedup {speedup:.1f}x"
    )
    print(f"-- wrote {written}")
    return 0


def _bench_sharded_default_model(lanes: int = 8):
    """Independent adder lanes: a model the planner can actually cut.

    Fig. 1 is a single connectivity cluster (one adder), so it can
    never occupy more than one shard; the lanes model gives the
    planner ``lanes`` clusters with uniform weight.
    """
    from .core import ModuleSpec, RTModel

    model = RTModel(f"lanes{lanes}", cs_max=2 * lanes + 2)
    for lane in range(lanes):
        model.register(f"A{lane}", init=lane + 1)
        model.register(f"B{lane}", init=lane + 2)
        model.register(f"S{lane}")
        model.bus(f"BA{lane}")
        model.bus(f"BB{lane}")
        model.module(ModuleSpec(f"FU{lane}", latency=1))
        step = 2 * lane + 1
        model.add_transfer(
            f"(A{lane},BA{lane},B{lane},BB{lane},{step},FU{lane},"
            f"{step + 1},BA{lane},S{lane})"
        )
    return model


def _bench_sharded(args) -> int:
    """`repro bench --sharded`: multi-process vs single-process runs."""
    import time

    from .engine import run_metrics, shard_metrics_rows

    if args.shards < 1:
        raise ValueError(f"--shards must be >= 1, got {args.shards}")
    if args.repeat < 1:
        raise ValueError(f"--repeat must be >= 1, got {args.repeat}")
    if args.model:
        model = load_model(args.model)
        model_name = model.name
    else:
        model = _bench_sharded_default_model()
        model_name = "lanes8 (built-in)"

    def timed(backend: str, **kwargs):
        best_wall, best_sim = None, None
        for _ in range(args.repeat):
            sim = model.elaborate(backend=backend, **kwargs)
            t0 = time.perf_counter()
            sim.run()
            wall = time.perf_counter() - t0
            if best_wall is None or wall < best_wall:
                best_wall, best_sim = wall, sim
        return best_wall, best_sim

    seq_wall, seq_sim = timed("compiled")
    shard_wall, shard_sim = timed("sharded", shards=args.shards)

    same = (
        shard_sim.registers == seq_sim.registers
        and shard_sim.clean == seq_sim.clean
        and [(e.signal, e.at) for e in shard_sim.conflicts]
        == [(e.signal, e.at) for e in seq_sim.conflicts]
    )
    if not same:
        print(
            "error: sharded results differ from the compiled run",
            file=sys.stderr,
        )
        return 1

    record = {
        "benchmark": "sharded-vs-compiled",
        "model": _bench_model_record(model, model_name),
        "shards": args.shards,
        "repeat": args.repeat,
        "compiled": {
            "backend": "compiled",
            "wall": seq_wall,
            "metrics": run_metrics(seq_sim, wall=seq_wall),
        },
        "sharded": {
            "backend": "sharded",
            "wall": shard_wall,
            "metrics": run_metrics(shard_sim, wall=shard_wall),
            "per_shard": shard_metrics_rows(shard_sim),
            "plan": shard_sim.plan.describe(),
        },
        "speedup": seq_wall / shard_wall if shard_wall > 0 else float("inf"),
    }
    written = _bench_write_record(record, args.out or "BENCH_sharded.json")
    print(
        f"{model_name}: compiled {seq_wall * 1e3:.2f} ms, sharded(K="
        f"{args.shards}) {shard_wall * 1e3:.2f} ms "
        f"(barrier sync each of {model.cs_max} steps)"
    )
    print(shard_sim.plan.describe())
    print(f"-- wrote {written}")
    return 0


def _bench_plan(args) -> int:
    """`repro bench --plan`: cold lowering vs a warm plan-cache hit.

    Cold is the lowering step a cache miss pays
    (:func:`repro.engine.plan.lower` + cache fill); warm is what a hit
    replaces it with (read + unpickle).  The content digest is the
    cache *key* and is computed identically on both paths, so it is
    timed separately (``digest_ms``) rather than folded into the
    ratio.  Everything is best-of ``--repeat`` against a fresh
    temporary cache; the record lands in ``BENCH_plan.json`` -- the
    artifact CI tracks for the lowering pipeline.
    """
    import tempfile
    import time

    from .engine.plan import PlanCache, lower, model_digest

    if args.repeat < 1:
        raise ValueError(f"--repeat must be >= 1, got {args.repeat}")
    if args.model:
        model = load_model(args.model)
        model_name = model.name
    else:
        from .iks.flow import build_ik_model

        model, _ = build_ik_model(2.5, 1.0)
        model_name = "iks E6 (built-in)"

    digest_best = cold_best = warm_best = None
    with tempfile.TemporaryDirectory() as tmp:
        cache = PlanCache(tmp)
        plan = None
        for _ in range(args.repeat):
            t0 = time.perf_counter()
            digest = model_digest(model)
            digest_ms = time.perf_counter() - t0
            stale = cache.path_for(digest)
            if stale.exists():
                stale.unlink()
            t0 = time.perf_counter()
            plan = lower(model, digest=digest)
            cache.put(plan)
            cold = time.perf_counter() - t0
            t0 = time.perf_counter()
            warm_plan = cache.get(digest)
            warm = time.perf_counter() - t0
            if warm_plan is None or warm_plan.digest != plan.digest:
                print("error: warm cache read did not return the plan",
                      file=sys.stderr)
                return 1

            def best(prev, cur):
                return cur if prev is None else min(prev, cur)

            digest_best = best(digest_best, digest_ms)
            cold_best = best(cold_best, cold)
            warm_best = best(warm_best, warm)

    speedup = cold_best / warm_best if warm_best > 0 else float("inf")
    record = {
        "benchmark": "plan-cache",
        "model": _bench_model_record(model, model_name),
        "digest": plan.digest,
        "repeat": args.repeat,
        "digest_ms": digest_best * 1e3,
        "cold_ms": cold_best * 1e3,
        "warm_ms": warm_best * 1e3,
        "speedup": speedup,
    }
    written = _bench_write_record(record, args.out or "BENCH_plan.json")
    print(
        f"{model_name}: cold lower {cold_best * 1e3:.2f} ms, warm hit "
        f"{warm_best * 1e3:.2f} ms, speedup {speedup:.1f}x "
        f"(digest {plan.digest[:16]}, keyed in {digest_best * 1e3:.2f} ms)"
    )
    print(f"-- wrote {written}")
    return 0


def _bench_codegen(args) -> int:
    """`repro bench --codegen`: generated executor vs the interpreter.

    Two cases -- the paper's Fig. 1 example and the E6 IKS chip --
    each run best-of ``--repeat`` on the ``compiled`` interpreter and
    on ``compiled-py`` (plain exec; elaboration and codegen resolution
    excluded from the timed interval, like every bench here), verified
    bit-identical (registers, conflicts, all stats counters) before the
    ratio is recorded.  A fresh temporary artifact cache measures the
    cold generate cost and the warm ``codegen_build_ms`` a
    ``codegen/v1`` hit replaces it with.  The record lands in
    ``BENCH_codegen.json`` -- the artifact CI gates with
    ``tools/check_bench_regression.py``; the top-level ``speedup`` is
    the weaker of the two cases.
    """
    import tempfile
    import time

    if args.repeat < 1:
        raise ValueError(f"--repeat must be >= 1, got {args.repeat}")
    if args.model:
        cases = [(load_model(args.model), args.model)]
    else:
        from .iks.flow import build_ik_model

        cases = [
            (_bench_default_model(), "fig1 (built-in)"),
            (build_ik_model(2.5, 1.0)[0], "iks E6 (built-in)"),
        ]

    from .engine import run_metrics

    def best_run(model, backend, **kwargs):
        # One untimed warmup: the first pass through freshly exec'd
        # code objects pays the interpreter's adaptive-specialization
        # cost, which a long-lived process amortizes away.
        model.elaborate(backend=backend, **kwargs).run()
        best_wall, best_sim = None, None
        for _ in range(args.repeat):
            sim = model.elaborate(backend=backend, **kwargs)
            t0 = time.perf_counter()
            sim.run()
            wall = time.perf_counter() - t0
            if best_wall is None or wall < best_wall:
                best_wall, best_sim = wall, sim
        return best_wall, best_sim

    case_records = []
    for model, model_name in cases:
        # Cold generate vs warm codegen/v1 artifact hit, against a
        # fresh cache -- measured first, before the timed runs fill the
        # in-process memo, so `cold` prices a real generate + compile
        # and `warm` an honest artifact load (the disk-first read
        # bypasses the memo either way).
        with tempfile.TemporaryDirectory() as tmp:
            cold_sim = model.elaborate(
                backend="compiled-py", plan_cache=tmp
            )
            warm_sim = model.elaborate(
                backend="compiled-py", plan_cache=tmp
            )
        if (cold_sim.codegen_cache_state, warm_sim.codegen_cache_state) \
                != ("miss", "hit"):
            print(
                f"error: expected miss-then-hit against a fresh cache "
                f"on {model_name}, got "
                f"{cold_sim.codegen_cache_state}/"
                f"{warm_sim.codegen_cache_state}",
                file=sys.stderr,
            )
            return 1
        base_wall, base_sim = best_run(model, "compiled")
        gen_wall, gen_sim = best_run(model, "compiled-py")
        if gen_sim.codegen_mode == "interpreter":
            print(
                f"error: compiled-py fell back to the interpreter on "
                f"{model_name}",
                file=sys.stderr,
            )
            return 1
        same = (
            gen_sim.registers == base_sim.registers
            and gen_sim.clean == base_sim.clean
            and vars(gen_sim.stats) == vars(base_sim.stats)
            and [(e.signal, e.at) for e in gen_sim.conflicts]
            == [(e.signal, e.at) for e in base_sim.conflicts]
        )
        if not same:
            print(
                f"error: compiled-py results differ from compiled on "
                f"{model_name}",
                file=sys.stderr,
            )
            return 1
        speedup = base_wall / gen_wall if gen_wall > 0 else float("inf")
        case_records.append({
            "model": _bench_model_record(model, model_name),
            "compiled": {
                "backend": "compiled",
                "wall": base_wall,
                "metrics": run_metrics(base_sim, wall=base_wall),
            },
            "codegen": {
                "backend": "compiled-py",
                "wall": gen_wall,
                "mode": gen_sim.codegen_mode,
                "cold_build_ms": cold_sim.codegen_build_ms,
                "warm_build_ms": warm_sim.codegen_build_ms,
                "metrics": run_metrics(gen_sim, wall=gen_wall),
            },
            "speedup": speedup,
        })
        print(
            f"{model_name}: compiled {base_wall * 1e6:.1f} us, "
            f"compiled-py {gen_wall * 1e6:.1f} us "
            f"({gen_sim.codegen_mode}), speedup {speedup:.2f}x "
            f"(cold build {cold_sim.codegen_build_ms:.1f} ms, warm "
            f"{warm_sim.codegen_build_ms:.2f} ms)"
        )
    record = {
        "benchmark": "codegen-vs-compiled",
        "repeat": args.repeat,
        "cases": case_records,
        "speedup": min(c["speedup"] for c in case_records),
    }
    written = _bench_write_record(record, args.out or "BENCH_codegen.json")
    print(f"-- wrote {written}")
    return 0


def _write_output(text: str, output: Optional[str]) -> None:
    if output:
        with open(output, "w", encoding="utf-8") as handle:
            handle.write(text)
        print(f"-- wrote {output}", file=sys.stderr)
    else:
        print(text)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
