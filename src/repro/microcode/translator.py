"""Microcode -> register-transfer translation (the authors' C program).

Paper §3:

    "We have extracted the register transfers from the microcode for
    computing the IKS given in [10].  This could be easily automated.
    We have written a C program, that translates the microcode tables
    given in [10] to transfer process instances."

:class:`MicrocodeTranslator` is that program.  It walks a
:class:`~repro.microcode.table.MicrocodeTable` in address order,
decodes each instruction through the
:class:`~repro.microcode.codemaps.CodeMaps`, and emits register
transfers into an :class:`~repro.core.model.RTModel`:

* a bus route becomes an :meth:`RTModel.move` (shared bus, COPY
  desugaring);
* a direct route becomes an :meth:`RTModel.copy_transfer` (two extra
  buses + COPY module, §3);
* a unit operation becomes an operand-read/result-write transfer with
  operation select on the unit's op port, reading over the unit's
  direct-link buses and writing the unit's accumulator register;
* a flag effect becomes a move of a constant into the flag register.

Each emitted transfer is recorded with its *paper form* (e.g.
``(J[6],BusA,y2,1)`` or ``X := 0 + Rshift(x2,2)``) so the E7 benchmark
can compare the translation against the derivation printed in the
paper.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping

from ..core.model import RTModel
from ..core.transfer import RegisterTransfer
from .codemaps import DIRECT, CodeMaps, RegRef, Route, UnitOp
from .table import MicroInstruction, MicrocodeError, MicrocodeTable


@dataclass(frozen=True)
class TranslatedAction:
    """One emitted transfer together with its provenance."""

    kind: str  # "route" | "direct" | "unit_op" | "flag"
    addr: int
    step: int
    paper_form: str
    transfer: RegisterTransfer

    def __str__(self) -> str:
        return f"addr {self.addr} -> cs{self.step}: {self.paper_form}"


@dataclass
class TranslationResult:
    """Everything the translator produced."""

    actions: list[TranslatedAction] = field(default_factory=list)
    steps_used: int = 0

    @property
    def transfers(self) -> list[RegisterTransfer]:
        return [action.transfer for action in self.actions]

    def by_kind(self, kind: str) -> list[TranslatedAction]:
        return [a for a in self.actions if a.kind == kind]

    def paper_forms(self) -> list[str]:
        return [a.paper_form for a in self.actions]


class MicrocodeTranslator:
    """Translate a microprogram into transfers on a target RT model.

    Parameters
    ----------
    model:
        The chip's RT model; must already declare the shared buses,
        register banks, functional units and flag registers the code
        maps reference.  The translator adds COPY modules, direct-link
        buses and constant registers on demand.
    accumulators:
        Destination register per functional unit, e.g.
        ``{"X_ADD": "X", "Y_ADD": "Y", "Z_ADD": "Z"}``.
    start_step:
        Control step of the first microinstruction (default 1).
    """

    def __init__(
        self,
        model: RTModel,
        accumulators: Mapping[str, str],
        start_step: int = 1,
    ) -> None:
        self.model = model
        self.accumulators = dict(accumulators)
        self.start_step = start_step
        for unit, acc in self.accumulators.items():
            if unit not in model.modules:
                raise MicrocodeError(
                    f"accumulator map names unknown unit {unit!r}"
                )
            if acc not in model.registers:
                raise MicrocodeError(
                    f"accumulator map names unknown register {acc!r}"
                )

    # ------------------------------------------------------------------
    def translate(
        self, table: MicrocodeTable, maps: CodeMaps
    ) -> TranslationResult:
        """Translate the whole microprogram, assigning sequential steps."""
        result = TranslationResult()
        step = self.start_step
        for instr in table:
            self._translate_instruction(instr, maps, step, result)
            step += instr.cycles
        result.steps_used = step - self.start_step
        return result

    def _translate_instruction(
        self,
        instr: MicroInstruction,
        maps: CodeMaps,
        step: int,
        result: TranslationResult,
    ) -> None:
        routing, operations = maps.decode(instr)
        for route in routing.routes:
            self._emit_route(instr, route, step, result)
        for unit_op in operations.unit_ops:
            self._emit_unit_op(instr, unit_op, step, result)
        for flag in operations.flags:
            const = self.model.constant(flag.value)
            transfer = self.model.copy_transfer(const, flag.flag, step)
            result.actions.append(
                TranslatedAction(
                    kind="flag",
                    addr=instr.addr,
                    step=step,
                    paper_form=f"{flag.flag} := {flag.value}",
                    transfer=transfer,
                )
            )

    def _emit_route(
        self,
        instr: MicroInstruction,
        route: Route,
        step: int,
        result: TranslationResult,
    ) -> None:
        src = route.src.resolve(instr)
        dst = route.dst.resolve(instr)
        self._ensure_constant(route.src)
        if route.path == DIRECT:
            transfer = self.model.copy_transfer(src, dst, step)
            kind = "direct"
            paper = f"({_ref_str(route.src, instr)},direct,{dst},{step})"
        else:
            transfer = self.model.move(src, route.path, dst, step)
            kind = "route"
            paper = f"({_ref_str(route.src, instr)},{route.path},{dst},{step})"
        result.actions.append(
            TranslatedAction(
                kind=kind,
                addr=instr.addr,
                step=step,
                paper_form=paper,
                transfer=transfer,
            )
        )

    def _emit_unit_op(
        self,
        instr: MicroInstruction,
        unit_op: UnitOp,
        step: int,
        result: TranslationResult,
    ) -> None:
        unit = unit_op.unit
        if unit not in self.model.modules:
            raise MicrocodeError(f"unit op names unknown module {unit!r}")
        spec = self.model.modules[unit]
        try:
            acc = self.accumulators[unit]
        except KeyError:
            raise MicrocodeError(
                f"no accumulator register bound for unit {unit!r}"
            ) from None
        self._ensure_constant(unit_op.left)
        left = unit_op.left.resolve(instr)
        right = bus2 = None
        if unit_op.right is not None:
            self._ensure_constant(unit_op.right)
            right = unit_op.right.resolve(instr)
        op_name = unit_op.op_name(instr)
        if op_name not in spec.operations:
            raise MicrocodeError(
                f"unit {unit!r} does not implement {op_name!r} "
                f"(needed by addr {instr.addr}); available: "
                f"{', '.join(sorted(spec.operations))}"
            )
        bus1 = self.model.direct_link_bus(left, unit, 1)
        if right is not None:
            bus2 = self.model.direct_link_bus(right, unit, 2)
        write_bus = f"{unit}_{acc}"
        if write_bus not in self.model.buses:
            self.model.bus(write_bus, direct_link=True)
        transfer = self.model.add_transfer(
            RegisterTransfer(
                src1=left,
                bus1=bus1,
                src2=right,
                bus2=bus2,
                read_step=step,
                module=unit,
                write_step=step + spec.latency,
                write_bus=write_bus,
                dest=acc,
                op=op_name if spec.multi_op else None,
            )
        )
        result.actions.append(
            TranslatedAction(
                kind="unit_op",
                addr=instr.addr,
                step=step,
                paper_form=_unit_op_paper_form(unit_op, instr, acc),
                transfer=transfer,
            )
        )

    # ------------------------------------------------------------------
    def _ensure_constant(self, ref: RegRef) -> None:
        if ref.is_constant:
            self.model.constant(ref.constant)


def _ref_str(ref: RegRef, instr: MicroInstruction) -> str:
    """The paper's printed operand form: indexed refs show the resolved
    index (``J[6]``), plain refs their name, constants their value."""
    if ref.is_constant:
        return str(ref.constant)
    if ref.index_field is None:
        return ref.bank
    return f"{ref.bank}[{instr.field_value(ref.index_field)}]"


def _unit_op_paper_form(
    unit_op: UnitOp, instr: MicroInstruction, acc: str
) -> str:
    left = _ref_str(unit_op.left, instr)
    if unit_op.right is None:
        return f"{acc} := {unit_op.op}({left})"
    right = _ref_str(unit_op.right, instr)
    if unit_op.shift_field is not None:
        amount = instr.field_value(unit_op.shift_field)
        right = f"Rshift({right},{amount})"
    verb = {"ADD": "+", "SUB": "-", "MULT": "*"}.get(unit_op.op, unit_op.op)
    if verb in "+-*":
        return f"{acc} := {left} {verb} {right}"
    return f"{acc} := {verb}({left},{right})"
