"""Code maps: the meaning of opc1 (routing) and opc2 (operations).

Paper §3 gives the example maps for ``opc1 = 20`` and ``opc2 = 2``.
From the addr-7 table entry those maps derive

* the routes ``(J[6], BusA, y2, 1)`` and ``(Y, direct, x2, 1)``, and
* the unit operations ``Z := 0 + 0``, ``X := 0 + Rshift(x2, i)``,
  ``Y := 0 + y2`` and the flag effect ``F := 1``.

A :class:`RegRef` names a source/destination register either directly
(``y2``) or through a register file indexed by a microword field
(``J[<J field>]`` -> register ``J6`` when the field holds 6).  A
:class:`Route` moves a value over a shared bus or a direct link.  A
:class:`UnitOp` describes one functional unit's operation for the
step, with operand references and an optional shift whose amount comes
from a microword field (the built-in shifter on the IKS X-adder input).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from .table import MicroInstruction, MicrocodeError

#: Route path name for direct (non-bus) links.
DIRECT = "direct"


@dataclass(frozen=True)
class RegRef:
    """A reference to a register, possibly indexed by a microword field.

    ``RegRef("y2")`` names register ``y2`` directly;
    ``RegRef("J", index_field="J")`` names ``J<n>`` where ``n`` is the
    value of the instruction's ``J`` field;
    ``RegRef.const(0)`` references the constant 0 (modeled as a preset
    register by the translator).
    """

    bank: str
    index_field: Optional[str] = None
    constant: Optional[int] = None

    @classmethod
    def const(cls, value: int) -> "RegRef":
        """A constant operand (``0`` in ``Z := 0 + 0``)."""
        return cls(bank=f"<const {value}>", constant=value)

    @property
    def is_constant(self) -> bool:
        return self.constant is not None

    def resolve(self, instr: MicroInstruction) -> str:
        """The concrete register name for this instruction.

        Constants resolve to the translator's constant-register naming
        (``K<value>``); indexed banks append the field value.
        """
        if self.constant is not None:
            return f"K{self.constant}"
        if self.index_field is None:
            return self.bank
        return f"{self.bank}{instr.field_value(self.index_field)}"

    def __str__(self) -> str:
        if self.constant is not None:
            return str(self.constant)
        if self.index_field is None:
            return self.bank
        return f"{self.bank}[{self.index_field}]"


@dataclass(frozen=True)
class Route:
    """One routing action of an opc1 code: move ``src`` to ``dst`` over
    ``path`` (a shared bus name, or :data:`DIRECT`)."""

    path: str
    src: RegRef
    dst: RegRef

    def __str__(self) -> str:
        return f"({self.src},{self.path},{self.dst})"


@dataclass(frozen=True)
class UnitOp:
    """One functional-unit action of an opc2 code.

    ``Z := 0 + 0`` is ``UnitOp("Z_ADD", "ADD", RegRef.const(0),
    RegRef.const(0))``; ``X := 0 + Rshift(x2, i)`` adds
    ``shift_field="i"``, selecting the unit's ``ADD_SHR<i>`` operation.
    Unary operations (the CORDIC core's SQRT) omit ``right``.
    """

    unit: str
    op: str
    left: RegRef
    right: Optional[RegRef] = None
    shift_field: Optional[str] = None

    def op_name(self, instr: MicroInstruction) -> str:
        """The concrete operation selected for this instruction."""
        if self.shift_field is None:
            return self.op
        amount = instr.field_value(self.shift_field)
        return f"{self.op}_SHR{amount}"

    def __str__(self) -> str:
        shift = f" >> {self.shift_field}" if self.shift_field else ""
        if self.right is None:
            return f"{self.unit}: {self.op}({self.left})"
        return f"{self.unit}: {self.op}({self.left}, {self.right}{shift})"


@dataclass(frozen=True)
class FlagSet:
    """A flag effect of an opc2 code (``setf``: ``F := 1``).

    Flags are one-bit registers; setting one is a move of the constant
    into the flag register."""

    flag: str
    value: int

    def __str__(self) -> str:
        return f"{self.flag} := {self.value}"


@dataclass(frozen=True)
class RoutingCode:
    """The decoded meaning of one opc1 value."""

    code: int
    routes: tuple[Route, ...] = ()

    def __str__(self) -> str:
        return f"opc1={self.code}: " + ", ".join(map(str, self.routes))


@dataclass(frozen=True)
class OperationCode:
    """The decoded meaning of one opc2 value."""

    code: int
    unit_ops: tuple[UnitOp, ...] = ()
    flags: tuple[FlagSet, ...] = ()

    def __str__(self) -> str:
        parts = [str(op) for op in self.unit_ops] + [str(f) for f in self.flags]
        return f"opc2={self.code}: " + "; ".join(parts)


class CodeMaps:
    """The complete opc1/opc2 decode tables of a microprogram."""

    def __init__(
        self,
        routing: Optional[Sequence[RoutingCode]] = None,
        operations: Optional[Sequence[OperationCode]] = None,
    ) -> None:
        self.routing: dict[int, RoutingCode] = {}
        self.operations: dict[int, OperationCode] = {}
        for entry in routing or ():
            self.add_routing(entry)
        for entry in operations or ():
            self.add_operations(entry)

    def add_routing(self, entry: RoutingCode) -> None:
        if entry.code in self.routing:
            raise MicrocodeError(f"duplicate opc1 code {entry.code}")
        self.routing[entry.code] = entry

    def add_operations(self, entry: OperationCode) -> None:
        if entry.code in self.operations:
            raise MicrocodeError(f"duplicate opc2 code {entry.code}")
        self.operations[entry.code] = entry

    def decode(
        self, instr: MicroInstruction
    ) -> tuple[RoutingCode, OperationCode]:
        """The (routing, operations) pair selected by an instruction."""
        try:
            routing = self.routing[instr.opc1]
        except KeyError:
            raise MicrocodeError(
                f"addr {instr.addr}: no code map for opc1={instr.opc1}"
            ) from None
        try:
            operations = self.operations[instr.opc2]
        except KeyError:
            raise MicrocodeError(
                f"addr {instr.addr}: no code map for opc2={instr.opc2}"
            ) from None
        return routing, operations
