"""Microcode tables (paper §3).

The IKS chip of Leung & Shanblatt is microprogrammed; the paper
extracts register transfers from the microcode tables.  A table row
looks like::

    addr  cycle  opc1  opc2  m  J  R1  M/R
    7     ...    20    2     .  6  ..  ..

``opc1`` selects a *routing* pattern (which register goes over which
bus or direct link into which destination), ``opc2`` selects the
*operations* the functional units perform, and the remaining columns
are operand fields: indices into the register files (J, R, M) and
shift amounts.  Separate **code maps** (see
:mod:`repro.microcode.codemaps`) give the meaning of each opc value.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Mapping, Optional


class MicrocodeError(ValueError):
    """Raised for malformed microcode tables or unresolvable fields."""


@dataclass(frozen=True)
class MicroInstruction:
    """One microprogram store entry.

    ``fields`` holds the operand columns (e.g. ``{"J": 6, "i": 2}``);
    which fields exist is defined by the program's
    :class:`MicrocodeFormat`.
    """

    addr: int
    opc1: int
    opc2: int
    fields: Mapping[str, int] = field(default_factory=dict)
    cycles: int = 1

    def __post_init__(self) -> None:
        if self.addr < 0:
            raise MicrocodeError(f"addr must be >= 0, got {self.addr}")
        if self.cycles < 1:
            raise MicrocodeError(
                f"addr {self.addr}: cycles must be >= 1, got {self.cycles}"
            )
        object.__setattr__(self, "fields", dict(self.fields))

    def field_value(self, name: str) -> int:
        """Operand field lookup with a helpful error."""
        try:
            return self.fields[name]
        except KeyError:
            raise MicrocodeError(
                f"addr {self.addr}: microinstruction has no field {name!r} "
                f"(available: {sorted(self.fields)})"
            ) from None


@dataclass(frozen=True)
class MicrocodeFormat:
    """The column layout of a microcode table.

    ``operand_fields`` lists the operand column names in order, after
    the fixed ``addr``, ``cycle``, ``opc1``, ``opc2`` columns -- the
    paper's table uses ``("m", "J", "R1", "MR")``.
    """

    operand_fields: tuple[str, ...] = ("m", "J", "R1", "MR")

    def parse_row(self, row: Iterable[int]) -> MicroInstruction:
        """Build an instruction from a full numeric table row."""
        values = list(row)
        expected = 4 + len(self.operand_fields)
        if len(values) != expected:
            raise MicrocodeError(
                f"row has {len(values)} columns, format needs {expected} "
                f"(addr, cycle, opc1, opc2, {', '.join(self.operand_fields)})"
            )
        addr, cycle, opc1, opc2 = values[:4]
        fields = dict(zip(self.operand_fields, values[4:]))
        return MicroInstruction(
            addr=addr, opc1=opc1, opc2=opc2, fields=fields, cycles=max(cycle, 1)
        )


class MicrocodeTable:
    """An ordered microprogram store."""

    def __init__(
        self,
        fmt: Optional[MicrocodeFormat] = None,
        rows: Optional[Iterable[MicroInstruction]] = None,
    ) -> None:
        self.format = fmt or MicrocodeFormat()
        self._by_addr: dict[int, MicroInstruction] = {}
        for instr in rows or ():
            self.add(instr)

    def add(self, instr: MicroInstruction) -> MicroInstruction:
        if instr.addr in self._by_addr:
            raise MicrocodeError(f"duplicate microstore address {instr.addr}")
        self._by_addr[instr.addr] = instr
        return instr

    def add_row(self, *row: int) -> MicroInstruction:
        """Add an instruction given as raw table columns."""
        return self.add(self.format.parse_row(row))

    def __len__(self) -> int:
        return len(self._by_addr)

    def __getitem__(self, addr: int) -> MicroInstruction:
        try:
            return self._by_addr[addr]
        except KeyError:
            raise MicrocodeError(f"no microinstruction at addr {addr}") from None

    def __iter__(self):
        """Instructions in address order (execution order)."""
        return iter(sorted(self._by_addr.values(), key=lambda i: i.addr))

    def total_cycles(self) -> int:
        """Number of control steps the program occupies."""
        return sum(instr.cycles for instr in self)
