"""A small textual assembler for microcode tables.

The tables in [10] are printed matrices; this module accepts the same
shape as text so microprograms can live in readable source form::

    ; IKS microprogram fragment
    fields: m J R1 MR
    ; addr cycle opc1 opc2 m J R1 MR
    7      1     20   2    0 6 0  0
    8      1     21   3    0 0 2  5

Lines starting with ``;`` or ``#`` are comments.  A ``fields:``
directive (before any row) sets the operand column names; the default
is the paper's ``m J R1 MR``.  Symbolic rows are also accepted::

    7: opc1=20 opc2=2 J=6

(any column may be given as ``name=value``; unset operand fields
default to 0, ``cycle`` defaults to 1).
"""

from __future__ import annotations

from typing import Optional

from .table import MicroInstruction, MicrocodeError, MicrocodeFormat, MicrocodeTable


def parse_text(text: str) -> MicrocodeTable:
    """Parse a microcode listing into a table."""
    fmt: Optional[MicrocodeFormat] = None
    table: Optional[MicrocodeTable] = None
    for lineno, raw in enumerate(text.splitlines(), start=1):
        line = raw.split(";")[0].split("#")[0].strip()
        if not line:
            continue
        if line.lower().startswith("fields:"):
            if table is not None and len(table):
                raise MicrocodeError(
                    f"line {lineno}: fields directive after rows"
                )
            names = tuple(line.split(":", 1)[1].split())
            if not names:
                raise MicrocodeError(f"line {lineno}: empty fields directive")
            fmt = MicrocodeFormat(operand_fields=names)
            table = MicrocodeTable(fmt)
            continue
        if table is None:
            table = MicrocodeTable(fmt)
        if "=" in line:
            table.add(_parse_symbolic(line, table.format, lineno))
        else:
            table.add(_parse_numeric(line, table.format, lineno))
    if table is None:
        table = MicrocodeTable()
    return table


def _parse_numeric(
    line: str, fmt: MicrocodeFormat, lineno: int
) -> MicroInstruction:
    parts = line.split()
    try:
        values = [int(p) for p in parts]
    except ValueError:
        raise MicrocodeError(
            f"line {lineno}: non-numeric column in row {line!r}"
        ) from None
    try:
        return fmt.parse_row(values)
    except MicrocodeError as exc:
        raise MicrocodeError(f"line {lineno}: {exc}") from None


def _parse_symbolic(
    line: str, fmt: MicrocodeFormat, lineno: int
) -> MicroInstruction:
    head, _, rest = line.partition(":")
    try:
        addr = int(head.strip())
    except ValueError:
        raise MicrocodeError(
            f"line {lineno}: symbolic row must start with 'addr:'"
        ) from None
    known = {"cycle", "opc1", "opc2", *fmt.operand_fields}
    assignments: dict[str, int] = {}
    for item in rest.split():
        name, eq, value = item.partition("=")
        if not eq:
            raise MicrocodeError(
                f"line {lineno}: expected name=value, got {item!r}"
            )
        if name not in known:
            raise MicrocodeError(
                f"line {lineno}: unknown column {name!r} "
                f"(known: {', '.join(sorted(known))})"
            )
        try:
            assignments[name] = int(value)
        except ValueError:
            raise MicrocodeError(
                f"line {lineno}: non-numeric value in {item!r}"
            ) from None
    for required in ("opc1", "opc2"):
        if required not in assignments:
            raise MicrocodeError(f"line {lineno}: missing {required}")
    fields = {name: assignments.get(name, 0) for name in fmt.operand_fields}
    return MicroInstruction(
        addr=addr,
        opc1=assignments["opc1"],
        opc2=assignments["opc2"],
        fields=fields,
        cycles=assignments.get("cycle", 1),
    )


def format_table(table: MicrocodeTable) -> str:
    """Render a table back to its textual listing (round-trips through
    :func:`parse_text`)."""
    fields = table.format.operand_fields
    lines = [f"fields: {' '.join(fields)}"]
    header = ["; addr", "cycle", "opc1", "opc2", *fields]
    lines.append(" ".join(header))
    for instr in table:
        row = [
            str(instr.addr),
            str(instr.cycles),
            str(instr.opc1),
            str(instr.opc2),
            *(str(instr.fields[f]) for f in fields),
        ]
        lines.append(" ".join(row))
    return "\n".join(lines)
