"""Microcode substrate (S7, paper §3).

Microcode tables (:mod:`table`), opc1/opc2 code maps
(:mod:`codemaps`), a textual assembler (:mod:`assembler`), and the
automatic microcode-to-register-transfer translator
(:mod:`translator`) -- the Python re-implementation of the C program
the authors wrote for the IKS chip.
"""

from .assembler import format_table, parse_text
from .codemaps import (
    DIRECT,
    CodeMaps,
    FlagSet,
    OperationCode,
    RegRef,
    Route,
    RoutingCode,
    UnitOp,
)
from .table import MicroInstruction, MicrocodeError, MicrocodeFormat, MicrocodeTable
from .translator import MicrocodeTranslator, TranslatedAction, TranslationResult

__all__ = [
    "DIRECT",
    "CodeMaps",
    "FlagSet",
    "MicroInstruction",
    "MicrocodeError",
    "MicrocodeFormat",
    "MicrocodeTable",
    "MicrocodeTranslator",
    "OperationCode",
    "RegRef",
    "Route",
    "RoutingCode",
    "TranslatedAction",
    "TranslationResult",
    "UnitOp",
    "format_table",
    "parse_text",
]
