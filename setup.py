"""Thin setup.py shim.

The environment has no network access and no ``wheel`` package, so the
PEP-660 editable-install path (which needs ``bdist_wheel``) is
unavailable.  This shim lets ``pip install -e . --no-use-pep517
--no-build-isolation`` fall back to ``setup.py develop``.  All project
metadata lives in ``pyproject.toml``.
"""

from setuptools import setup

setup()
