"""Tests for microcode tables and formats."""

import pytest

from repro.microcode import (
    MicroInstruction,
    MicrocodeError,
    MicrocodeFormat,
    MicrocodeTable,
)


class TestMicroInstruction:
    def test_field_lookup(self):
        instr = MicroInstruction(addr=7, opc1=20, opc2=2, fields={"J": 6})
        assert instr.field_value("J") == 6

    def test_missing_field_reports_available(self):
        instr = MicroInstruction(addr=7, opc1=20, opc2=2, fields={"J": 6})
        with pytest.raises(MicrocodeError, match="no field 'i'"):
            instr.field_value("i")

    def test_negative_addr_rejected(self):
        with pytest.raises(MicrocodeError):
            MicroInstruction(addr=-1, opc1=0, opc2=0)

    def test_zero_cycles_rejected(self):
        with pytest.raises(MicrocodeError):
            MicroInstruction(addr=0, opc1=0, opc2=0, cycles=0)


class TestMicrocodeFormat:
    def test_parse_row_paper_layout(self):
        fmt = MicrocodeFormat()  # (m, J, R1, MR)
        instr = fmt.parse_row([7, 1, 20, 2, 3, 6, 0, 5])
        assert instr.addr == 7
        assert instr.opc1 == 20
        assert instr.opc2 == 2
        assert instr.fields == {"m": 3, "J": 6, "R1": 0, "MR": 5}

    def test_parse_row_wrong_width(self):
        fmt = MicrocodeFormat()
        with pytest.raises(MicrocodeError, match="columns"):
            fmt.parse_row([7, 1, 20, 2])

    def test_custom_fields(self):
        fmt = MicrocodeFormat(operand_fields=("a", "b"))
        instr = fmt.parse_row([0, 1, 5, 6, 10, 20])
        assert instr.fields == {"a": 10, "b": 20}


class TestMicrocodeTable:
    def test_iteration_in_address_order(self):
        table = MicrocodeTable()
        table.add_row(5, 1, 0, 0, 0, 0, 0, 0)
        table.add_row(2, 1, 0, 0, 0, 0, 0, 0)
        table.add_row(9, 1, 0, 0, 0, 0, 0, 0)
        assert [i.addr for i in table] == [2, 5, 9]

    def test_duplicate_address_rejected(self):
        table = MicrocodeTable()
        table.add_row(1, 1, 0, 0, 0, 0, 0, 0)
        with pytest.raises(MicrocodeError, match="duplicate"):
            table.add_row(1, 1, 0, 0, 0, 0, 0, 0)

    def test_lookup_by_address(self):
        table = MicrocodeTable()
        table.add_row(7, 1, 20, 2, 0, 6, 0, 0)
        assert table[7].opc1 == 20
        with pytest.raises(MicrocodeError):
            table[8]

    def test_total_cycles_counts_multicycle_instructions(self):
        table = MicrocodeTable()
        table.add_row(1, 3, 0, 0, 0, 0, 0, 0)
        table.add_row(2, 1, 0, 0, 0, 0, 0, 0)
        assert table.total_cycles() == 4
        assert len(table) == 2
