"""Tests for the textual microcode assembler."""

import pytest

from repro.microcode import MicrocodeError, format_table, parse_text


PAPER_FRAGMENT = """
; IKS microprogram fragment (paper table layout)
fields: m J R1 MR
; addr cycle opc1 opc2 m J R1 MR
7      1     20   2    2 6 0  0
8      2     21   3    0 0 2  5
"""


class TestNumericRows:
    def test_parse_paper_fragment(self):
        table = parse_text(PAPER_FRAGMENT)
        assert len(table) == 2
        instr = table[7]
        assert instr.opc1 == 20
        assert instr.opc2 == 2
        assert instr.fields == {"m": 2, "J": 6, "R1": 0, "MR": 0}
        assert table[8].cycles == 2

    def test_comments_and_blank_lines_ignored(self):
        table = parse_text("# only comments\n\n; nothing\n")
        assert len(table) == 0

    def test_non_numeric_column_reported_with_line(self):
        with pytest.raises(MicrocodeError, match="line 2"):
            parse_text("fields: a\nx 1 2 3 4\n")

    def test_wrong_column_count_reported(self):
        with pytest.raises(MicrocodeError, match="columns"):
            parse_text("fields: a b\n1 1 2\n")

    def test_fields_directive_after_rows_rejected(self):
        text = "fields: a\n1 1 0 0 5\nfields: b\n"
        with pytest.raises(MicrocodeError, match="after rows"):
            parse_text(text)


class TestSymbolicRows:
    def test_symbolic_row(self):
        table = parse_text("fields: m J R1 MR\n7: opc1=20 opc2=2 J=6 m=2\n")
        instr = table[7]
        assert instr.opc1 == 20
        assert instr.fields["J"] == 6
        assert instr.fields["R1"] == 0  # defaulted

    def test_symbolic_requires_opcodes(self):
        with pytest.raises(MicrocodeError, match="missing opc2"):
            parse_text("7: opc1=20\n")

    def test_unknown_column_rejected(self):
        with pytest.raises(MicrocodeError, match="unknown column"):
            parse_text("fields: m\n7: opc1=1 opc2=1 zz=3\n")

    def test_cycle_assignment(self):
        table = parse_text("3: opc1=1 opc2=1 cycle=4\n")
        assert table[3].cycles == 4


class TestRoundTrip:
    def test_format_then_parse_is_identity(self):
        table = parse_text(PAPER_FRAGMENT)
        text = format_table(table)
        again = parse_text(text)
        assert len(again) == len(table)
        for instr in table:
            other = again[instr.addr]
            assert other.opc1 == instr.opc1
            assert other.opc2 == instr.opc2
            assert other.fields == instr.fields
            assert other.cycles == instr.cycles
