"""Tests for the microcode -> register-transfer translator, including
the paper's addr-7 derivation (experiment E7's correctness core)."""

import pytest

from repro.core import ILLEGAL, ModuleSpec, RTModel
from repro.iks import (
    ArmGeometry,
    IKSConfig,
    build_chip,
    paper_addr7_instruction,
    paper_code_maps,
)
from repro.iks.chip import ACCUMULATORS
from repro.microcode import (
    CodeMaps,
    DIRECT,
    FlagSet,
    MicroInstruction,
    MicrocodeError,
    MicrocodeTable,
    OperationCode,
    RegRef,
    Route,
    RoutingCode,
    UnitOp,
    MicrocodeTranslator,
)


def paper_table():
    table = MicrocodeTable()
    table.add(paper_addr7_instruction())
    return table


def chip_with_paper_setup(cs_max=12):
    model = build_chip(IKSConfig(cs_max=cs_max), px=1.0, py=2.0)
    translator = MicrocodeTranslator(model, ACCUMULATORS)
    return model, translator


class TestPaperAddr7:
    """§3: the transfers and unit operations derived from the table
    entry at microprogram store address 7."""

    def translate(self):
        model, translator = chip_with_paper_setup()
        result = translator.translate(paper_table(), paper_code_maps())
        return model, result

    def test_route_forms_match_paper(self):
        _, result = self.translate()
        forms = result.paper_forms()
        # "the transfers from registers to buses (J[6],BusA,y2,1),
        #  (Y,direct,x2,1)"
        assert "(J[6],BusA,y2,1)" in forms
        assert "(Y,direct,x2,1)" in forms

    def test_unit_op_forms_match_paper(self):
        _, result = self.translate()
        forms = result.paper_forms()
        # "and the module operations Z := 0 + 0,
        #  X := 0 + Rshift(x2,i), Y := 0 + y2, F := 1 are derived"
        assert "Z := 0 + 0" in forms
        assert "X := 0 + Rshift(x2,2)" in forms  # i = m field = 2
        assert "Y := 0 + y2" in forms
        assert "F := 1" in forms

    def test_route_becomes_bus_transfer(self):
        _, result = self.translate()
        route = next(a for a in result.by_kind("route"))
        assert route.transfer.src1 == "J6"
        assert route.transfer.bus1 == "BusA"
        assert route.transfer.dest == "y2"
        assert route.transfer.read_step == 1

    def test_direct_route_uses_copy_path(self):
        model, result = self.translate()
        direct = next(a for a in result.by_kind("direct"))
        assert direct.transfer.src1 == "Y"
        assert direct.transfer.dest == "x2"
        assert model.buses[direct.transfer.bus1].direct_link

    def test_unit_ops_carry_operation_select(self):
        _, result = self.translate()
        x_ops = [
            a for a in result.by_kind("unit_op")
            if a.transfer.module == "X_ADD"
        ]
        assert len(x_ops) == 1
        assert x_ops[0].transfer.op == "ADD_SHR2"
        assert x_ops[0].transfer.dest == "X"

    def test_flag_set_moves_constant(self):
        model, result = self.translate()
        flag = next(a for a in result.by_kind("flag"))
        assert flag.transfer.dest == "F"
        assert flag.transfer.src1 == "K1"
        assert model.registers["K1"].init == 1

    def test_translation_simulates_cleanly(self):
        # The addr-7 unit ops read x2/y2 in the step that also reloads
        # them -- in the full program those registers hold values left
        # by earlier microinstructions, so preset them here.
        model, _ = self.translate()
        sim = model.elaborate(
            register_values={"x2": 40, "y2": 12, "Y": 3}
        ).run()
        assert sim.clean
        # F := 1 took effect.
        assert sim["F"] == 1
        # Z := 0 + 0.
        assert sim["Z"] == 0
        # X := 0 + Rshift(x2, 2) with the *old* x2 value.
        assert sim["X"] == 40 >> 2
        # Y := 0 + y2 with the old y2 value.
        assert sim["Y"] == 12
        # The routes then overwrote the operand registers at CR.
        assert sim["x2"] == 3  # from Y (preset 3) via the direct link


class TestTranslatorValidation:
    def test_unknown_opc1_reported(self):
        model, translator = chip_with_paper_setup()
        table = MicrocodeTable()
        table.add(MicroInstruction(addr=1, opc1=99, opc2=2, fields={}))
        with pytest.raises(MicrocodeError, match="opc1=99"):
            translator.translate(table, paper_code_maps())

    def test_unknown_opc2_reported(self):
        model, translator = chip_with_paper_setup()
        table = MicrocodeTable()
        table.add(
            MicroInstruction(addr=1, opc1=20, opc2=99, fields={"J": 0})
        )
        with pytest.raises(MicrocodeError, match="opc2=99"):
            translator.translate(table, paper_code_maps())

    def test_unknown_unit_in_accumulator_map(self):
        model = build_chip(IKSConfig(cs_max=4))
        with pytest.raises(MicrocodeError, match="unknown unit"):
            MicrocodeTranslator(model, {"NOPE": "X"})

    def test_unknown_accumulator_register(self):
        model = build_chip(IKSConfig(cs_max=4))
        with pytest.raises(MicrocodeError, match="unknown register"):
            MicrocodeTranslator(model, {"MULT": "NOPE"})

    def test_unimplemented_operation_reported(self):
        model = build_chip(IKSConfig(cs_max=4))
        translator = MicrocodeTranslator(model, ACCUMULATORS)
        maps = CodeMaps(
            operations=[
                OperationCode(
                    code=1,
                    unit_ops=(UnitOp("MULT", "DIV", RegRef("x1"), RegRef("x2")),),
                )
            ],
            routing=[RoutingCode(code=1)],
        )
        table = MicrocodeTable()
        table.add(MicroInstruction(addr=1, opc1=1, opc2=1))
        with pytest.raises(MicrocodeError, match="does not implement 'DIV'"):
            translator.translate(table, maps)

    def test_steps_follow_cycle_counts(self):
        model, translator = chip_with_paper_setup()
        maps = CodeMaps(
            routing=[
                RoutingCode(code=0),
                RoutingCode(
                    code=1,
                    routes=(Route("BusA", RegRef("J0"), RegRef("x1")),),
                ),
            ],
            operations=[OperationCode(code=0)],
        )
        table = MicrocodeTable()
        table.add(MicroInstruction(addr=1, opc1=1, opc2=0, cycles=3))
        table.add(MicroInstruction(addr=2, opc1=1, opc2=0))
        result = translator.translate(table, maps)
        steps = [a.step for a in result.actions]
        assert steps == [1, 4]  # second instruction starts after 3 cycles
        assert result.steps_used == 4


class TestRegRef:
    def test_resolve_indexed(self):
        instr = MicroInstruction(addr=0, opc1=0, opc2=0, fields={"J": 6})
        assert RegRef("J", index_field="J").resolve(instr) == "J6"

    def test_resolve_plain(self):
        instr = MicroInstruction(addr=0, opc1=0, opc2=0)
        assert RegRef("y2").resolve(instr) == "y2"

    def test_resolve_constant(self):
        instr = MicroInstruction(addr=0, opc1=0, opc2=0)
        assert RegRef.const(0).resolve(instr) == "K0"

    def test_str_forms(self):
        assert str(RegRef("J", index_field="J")) == "J[J]"
        assert str(RegRef.const(5)) == "5"
        assert str(RegRef("y2")) == "y2"
