"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import main
from repro.core import ModuleSpec, RTModel
from repro.core.serialize import dump
from repro.core.values_np import have_numpy
from repro.vhdl import EXAMPLE_FIG1

needs_numpy = pytest.mark.skipif(
    not have_numpy(),
    reason="compiled-batched sweeps need the repro[fast] extra",
)


@pytest.fixture
def fig1_json(tmp_path):
    model = RTModel("example", cs_max=7)
    model.register("R1", init=2)
    model.register("R2", init=3)
    model.bus("B1")
    model.bus("B2")
    model.module(ModuleSpec("ADD", latency=1))
    model.add_transfer("(R1,B1,R2,B2,5,ADD,6,B1,R1)")
    path = tmp_path / "fig1.json"
    dump(model, path)
    return path


@pytest.fixture
def fig1_vhd(tmp_path):
    path = tmp_path / "example.vhd"
    path.write_text(EXAMPLE_FIG1)
    return path


class TestCheckAndRun:
    def test_check_conformant_file(self, fig1_vhd, capsys):
        assert main(["check", str(fig1_vhd)]) == 0
        assert "conforms" in capsys.readouterr().out

    def test_check_nonconformant_file(self, tmp_path, capsys):
        bad = tmp_path / "bad.vhd"
        bad.write_text(
            "entity e is end e;\n"
            "architecture a of e is\n"
            "  signal x: integer := 0;\n"
            "begin\n"
            "  p: process begin x <= 1; end process;\n"
            "end a;\n"
        )
        assert main(["check", str(bad)]) == 1
        assert "violation" in capsys.readouterr().out

    def test_run_paper_example(self, fig1_vhd, capsys):
        assert main(["run", str(fig1_vhd), "--top", "example",
                     "--signals", "r1_out,r2_out"]) == 0
        out = capsys.readouterr().out
        assert "r1_out = 5" in out
        assert "42 delta cycles" in out

    def test_run_missing_file_reports_error(self, capsys):
        assert main(["run", "nope.vhd", "--top", "x"]) == 1
        assert "error:" in capsys.readouterr().err


class TestModelCommands:
    def test_analyze_clean_model(self, fig1_json, capsys):
        assert main(["analyze", str(fig1_json)]) == 0
        out = capsys.readouterr().out
        assert "no conflicts predicted" in out

    def test_simulate_prints_registers(self, fig1_json, capsys):
        assert main(["simulate", str(fig1_json)]) == 0
        out = capsys.readouterr().out
        assert "R1 = 5" in out
        assert "42" in out

    def test_simulate_with_overrides(self, fig1_json, capsys):
        assert main([
            "simulate", str(fig1_json), "--set", "R1=10", "--set", "R2=20",
        ]) == 0
        assert "R1 = 30" in capsys.readouterr().out

    def test_simulate_writes_vcd(self, fig1_json, tmp_path, capsys):
        vcd = tmp_path / "wave.vcd"
        assert main(["simulate", str(fig1_json), "--vcd", str(vcd)]) == 0
        assert vcd.exists()
        assert "$enddefinitions" in vcd.read_text()

    def test_reschedule_verifies_and_saves(self, fig1_json, tmp_path, capsys):
        out = tmp_path / "compact.json"
        assert main(["reschedule", str(fig1_json), "-o", str(out)]) == 0
        output = capsys.readouterr().out
        assert "verified: identical register results" in output
        assert out.exists()

    def test_emit_writes_vhdl(self, fig1_json, tmp_path):
        out = tmp_path / "model.vhd"
        assert main(["emit", str(fig1_json), "-o", str(out)]) == 0
        assert "entity example is" in out.read_text()

    def test_clocked_with_verification(self, fig1_json, tmp_path):
        out = tmp_path / "clocked.vhd"
        assert main([
            "clocked", str(fig1_json), "-o", str(out), "--verify",
        ]) == 0
        assert "rising_edge(clk)" in out.read_text()

    def test_bad_set_syntax(self, fig1_json, capsys):
        assert main(["simulate", str(fig1_json), "--set", "R1"]) == 1
        assert "REG=VALUE" in capsys.readouterr().err


class TestSynthAndIks:
    def test_synth_verify_and_save(self, tmp_path, capsys):
        src = tmp_path / "prog.alg"
        src.write_text("t = (a + b) * (c - d)\nout = t + t\n")
        model_out = tmp_path / "model.json"
        assert main([
            "synth", str(src), "--resources", "ALU=1,MUL=1",
            "--verify", "-o", str(model_out),
        ]) == 0
        out = capsys.readouterr().out
        assert "operations scheduled" in out
        assert "EQUIVALENT" in out
        doc = json.loads(model_out.read_text())
        assert doc["format"] == "repro-rt-model"

    def test_iks_case_study(self, capsys):
        assert main(["iks", "--target", "2.5,1.0"]) == 0
        out = capsys.readouterr().out
        assert "bit-exact   : True" in out

    def test_iks_three_dof(self, capsys):
        assert main(["iks", "--target", "2.8,1.2", "--phi", "0.6"]) == 0
        out = capsys.readouterr().out
        assert "theta3" in out
        assert "bit-exact   : True" in out

    def test_no_subcommand_prints_help(self, capsys):
        assert main([]) == 2
        assert "subcommands" in capsys.readouterr().out


class TestBackendSelection:
    def test_run_compiled_backend(self, fig1_vhd, capsys):
        assert main([
            "run", str(fig1_vhd), "--top", "example",
            "--backend", "compiled",
        ]) == 0
        out = capsys.readouterr().out
        assert "r1_out = 5" in out
        assert "r2_out = 3" in out
        assert "42 delta cycles" in out

    def test_run_event_without_transfer_engine(self, fig1_vhd, capsys):
        assert main([
            "run", str(fig1_vhd), "--top", "example",
            "--no-transfer-engine", "--signals", "r1_out",
        ]) == 0
        out = capsys.readouterr().out
        assert "r1_out = 5" in out

    def test_run_compiled_unknown_signal(self, fig1_vhd, capsys):
        assert main([
            "run", str(fig1_vhd), "--top", "example",
            "--backend", "compiled", "--signals", "b1",
        ]) == 1
        assert "register outputs only" in capsys.readouterr().err

    def test_run_rejects_unknown_backend(self, fig1_vhd, capsys):
        with pytest.raises(SystemExit):
            main([
                "run", str(fig1_vhd), "--top", "example",
                "--backend", "quantum",
            ])

    def test_simulate_compiled_backend(self, fig1_json, capsys):
        assert main([
            "simulate", str(fig1_json), "--backend", "compiled",
        ]) == 0
        out = capsys.readouterr().out
        assert "R1 = 5" in out
        assert "42 delta cycles (= CS_MAX*6 = 42)" in out

    def test_simulate_backends_print_identically(self, fig1_json, capsys):
        assert main(["simulate", str(fig1_json)]) == 0
        event_out = capsys.readouterr().out
        assert main([
            "simulate", str(fig1_json), "--backend", "compiled",
        ]) == 0
        assert capsys.readouterr().out == event_out
        assert main([
            "simulate", str(fig1_json), "--no-transfer-engine",
        ]) == 0
        assert capsys.readouterr().out == event_out

    def test_iks_compiled_backend(self, capsys):
        assert main([
            "iks", "--target", "2.5,1.0", "--backend", "compiled",
        ]) == 0
        assert "bit-exact   : True" in capsys.readouterr().out


class TestObservabilityFlags:
    def test_simulate_observe_writes_jsonl(self, fig1_json, tmp_path, capsys):
        log = tmp_path / "run.jsonl"
        assert main([
            "simulate", str(fig1_json), "--observe", str(log),
        ]) == 0
        assert f"-- wrote {log}" in capsys.readouterr().out
        lines = [
            json.loads(line) for line in log.read_text().splitlines()
        ]
        assert lines[0]["event"] == "run_start"
        assert lines[0]["backend"] == "event"
        assert lines[-1]["event"] == "run_end"

    def test_simulate_profile_prints_table(self, fig1_json, capsys):
        assert main(["simulate", str(fig1_json), "--profile"]) == 0
        out = capsys.readouterr().out
        assert "profile:" in out
        assert "cr:" in out

    def test_simulate_profile_out_writes_json(
        self, fig1_json, tmp_path, capsys
    ):
        prof = tmp_path / "prof.json"
        assert main([
            "simulate", str(fig1_json), "--profile-out", str(prof),
        ]) == 0
        summary = json.loads(prof.read_text())
        assert summary["steps"] == 7
        assert set(summary["phases"]) == {"ra", "rb", "cm", "wa", "wb", "cr"}
        # --profile-out alone does not print the table.
        assert "profile:" not in capsys.readouterr().out.split("-- wrote")[0]

    def test_run_vcd_routes_via_model_path(self, fig1_vhd, tmp_path, capsys):
        vcd = tmp_path / "wave.vcd"
        assert main([
            "run", str(fig1_vhd), "--top", "example", "--vcd", str(vcd),
        ]) == 0
        assert "$enddefinitions" in vcd.read_text()
        assert "r1_out = 5" in capsys.readouterr().out

    def test_iks_observe_and_profile(self, tmp_path, capsys):
        log = tmp_path / "iks.jsonl"
        assert main([
            "iks", "--target", "2.5,1.0", "--backend", "compiled",
            "--observe", str(log), "--profile",
        ]) == 0
        out = capsys.readouterr().out
        assert "bit-exact   : True" in out
        assert "profile:" in out
        assert log.exists()

    def test_report_renders_recorded_run(self, fig1_json, tmp_path, capsys):
        log = tmp_path / "run.jsonl"
        assert main(["simulate", str(fig1_json), "--observe", str(log)]) == 0
        capsys.readouterr()
        assert main(["report", str(log)]) == 0
        out = capsys.readouterr().out
        assert "run report: example [event]" in out
        assert "final registers:" in out
        assert "R1 = 5" in out

    def test_report_json_mode(self, fig1_json, tmp_path, capsys):
        log = tmp_path / "run.jsonl"
        assert main(["simulate", str(fig1_json), "--observe", str(log)]) == 0
        capsys.readouterr()
        assert main(["report", str(log), "--json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["registers"] == {"R1": 5, "R2": 3}
        assert doc["counts"]["phase"] == 42


class TestCliErrorPaths:
    def test_simulate_missing_file(self, capsys):
        assert main(["simulate", "no-such-model.json"]) == 1
        assert "error:" in capsys.readouterr().err

    def test_report_missing_file(self, capsys):
        assert main(["report", "no-such-log.jsonl"]) == 1
        assert "error:" in capsys.readouterr().err

    def test_report_malformed_log(self, tmp_path, capsys):
        # Mid-file corruption is still an error; only a malformed
        # *final* record (truncation) is skipped leniently.
        bad = tmp_path / "bad.jsonl"
        bad.write_text('this is not json\n{"event":"step"}\n')
        assert main(["report", str(bad)]) == 1
        assert "not a JSON event record" in capsys.readouterr().err

    def test_simulate_rejects_unknown_backend(self, fig1_json, capsys):
        # argparse rejects values outside the registered choices.
        with pytest.raises(SystemExit) as excinfo:
            main(["simulate", str(fig1_json), "--backend", "quantum"])
        assert excinfo.value.code == 2
        assert "invalid choice" in capsys.readouterr().err

    def test_conflicting_backend_flags(self, fig1_json, capsys):
        assert main([
            "simulate", str(fig1_json),
            "--backend", "compiled", "--no-transfer-engine",
        ]) == 1
        err = capsys.readouterr().err
        assert "only applies to the event backend" in err

    def test_conflicting_backend_flags_on_run(self, fig1_vhd, capsys):
        assert main([
            "run", str(fig1_vhd), "--top", "example",
            "--backend", "compiled", "--no-transfer-engine",
        ]) == 1
        assert "only applies to the event backend" in capsys.readouterr().err

    def test_conflicting_backend_flags_on_iks(self, capsys):
        assert main([
            "iks", "--target", "2.5,1.0",
            "--backend", "compiled", "--no-transfer-engine",
        ]) == 1
        assert "only applies to the event backend" in capsys.readouterr().err

    def test_vcd_to_unwritable_path(self, fig1_json, capsys):
        assert main([
            "simulate", str(fig1_json),
            "--vcd", "/no/such/directory/wave.vcd",
        ]) == 1
        assert "error:" in capsys.readouterr().err


class TestBatchedCli:
    """`repro simulate --backend compiled-batched` and `repro bench`."""

    @needs_numpy
    def test_simulate_batched_single_vector(self, fig1_json, capsys):
        assert main([
            "simulate", str(fig1_json), "--backend", "compiled-batched",
        ]) == 0
        out = capsys.readouterr().out
        assert "vector 0: R1=5 R2=3" in out
        assert "-- 1 vectors, 1 clean" in out

    @needs_numpy
    def test_simulate_batched_random_sweep(self, fig1_json, capsys):
        assert main([
            "simulate", str(fig1_json), "--backend", "compiled-batched",
            "--batch", "5", "--seed", "1",
        ]) == 0
        out = capsys.readouterr().out
        assert "-- 5 vectors, 5 clean" in out
        # Per-vector rows are printed for small sweeps.
        assert "vector 4:" in out

    @needs_numpy
    def test_simulate_batched_seed_is_reproducible(self, fig1_json, capsys):
        args = [
            "simulate", str(fig1_json), "--backend", "compiled-batched",
            "--batch", "3", "--seed", "7",
        ]
        assert main(args) == 0
        first = capsys.readouterr().out
        assert main(args) == 0
        assert capsys.readouterr().out == first

    @needs_numpy
    def test_simulate_vectors_from_jsonl(self, fig1_json, tmp_path, capsys):
        vecs = tmp_path / "vecs.jsonl"
        vecs.write_text(
            '{"R1": 1, "R2": 2}\n'
            '\n'
            '{"R1": 10, "R2": 20}\n'
        )
        assert main([
            "simulate", str(fig1_json), "--backend", "compiled-batched",
            "--vectors-from", str(vecs),
        ]) == 0
        out = capsys.readouterr().out
        assert "vector 0: R1=3 R2=2" in out
        assert "vector 1: R1=30 R2=20" in out
        assert "-- 2 vectors, 2 clean" in out

    def test_batch_requires_batched_backend(self, fig1_json, capsys):
        assert main([
            "simulate", str(fig1_json), "--batch", "4",
        ]) == 1
        err = capsys.readouterr().err
        assert "require a batched backend" in err

    def test_batched_rejects_single_run_output_flags(
        self, fig1_json, tmp_path, capsys
    ):
        assert main([
            "simulate", str(fig1_json), "--backend", "compiled-batched",
            "--vcd", str(tmp_path / "wave.vcd"),
        ]) == 1
        assert "single-run output" in capsys.readouterr().err

    def test_run_rejects_batched_backend(self, fig1_vhd, capsys):
        assert main([
            "run", str(fig1_vhd), "--top", "example",
            "--backend", "compiled-batched",
        ]) == 1
        err = capsys.readouterr().err
        assert "batch-shaped results" in err

    @needs_numpy
    def test_bench_writes_record(self, tmp_path, capsys):
        out = tmp_path / "bench.json"
        assert main([
            "bench", "--vectors", "40", "--seed", "3", "--out", str(out),
        ]) == 0
        record = json.loads(out.read_text())
        assert record["benchmark"] == "batched-vs-sequential"
        assert record["vectors"] == 40
        assert record["batched"]["metrics"]["vectors"] == 40
        assert record["sequential"]["backend"] == "compiled"
        assert record["speedup"] > 0
        assert "speedup" in capsys.readouterr().out

    @needs_numpy
    def test_bench_accepts_model_file(self, fig1_json, tmp_path, capsys):
        out = tmp_path / "bench.json"
        assert main([
            "bench", "--model", str(fig1_json), "--vectors", "10",
            "--out", str(out),
        ]) == 0
        record = json.loads(out.read_text())
        assert record["model"]["name"] == "example"
        assert record["vectors"] == 10


@pytest.fixture
def clash_json(tmp_path):
    model = RTModel("clash", cs_max=4)
    model.register("R1", init=1)
    model.register("R2", init=2)
    model.register("R3")
    model.bus("B1")
    model.bus("B2")
    model.module(ModuleSpec("ADD", latency=1))
    model.add_transfer("(R1,B1,R2,B2,2,ADD,3,B1,R3)")
    model.add_transfer("(R2,B1,R1,B2,2,ADD,3,B2,R3)")
    path = tmp_path / "clash.json"
    dump(model, path)
    return path


class TestMonitorCli:
    def test_monitor_clean_run_passes(self, fig1_json, capsys):
        assert main(["simulate", str(fig1_json), "--monitor"]) == 0
        out = capsys.readouterr().out
        assert "PASS never_illegal" in out
        assert "PASS no_conflicts" in out

    def test_monitor_violations_fail_the_run(self, clash_json, capsys):
        assert main(["simulate", str(clash_json), "--monitor"]) == 1
        out = capsys.readouterr().out
        assert "FAIL never_illegal" in out
        assert "cs2.rb" in out

    def test_assert_out_writes_report_json(
        self, clash_json, tmp_path, capsys
    ):
        report = tmp_path / "report.json"
        assert main([
            "simulate", str(clash_json), "--monitor",
            "--backend", "compiled", "--assert-out", str(report),
        ]) == 1
        doc = json.loads(report.read_text())
        assert doc["ok"] is False
        assert doc["violations"][0]["cs"] == 2

    def test_assert_file_drives_the_monitor(
        self, fig1_json, tmp_path, capsys
    ):
        props = tmp_path / "props.json"
        props.write_text(json.dumps([
            {"type": "stable_between", "register": "R1",
             "from": 1, "to": 7, "label": "r1-frozen"},
        ]))
        assert main([
            "simulate", str(fig1_json), "--assert-file", str(props),
        ]) == 1  # R1 latches 5 at cs7.ra
        out = capsys.readouterr().out
        assert "FAIL r1-frozen" in out

    def test_monitor_on_run_subcommand(self, fig1_vhd, capsys):
        assert main([
            "run", str(fig1_vhd), "--top", "example", "--monitor",
        ]) == 0
        assert "PASS no_conflicts" in capsys.readouterr().out

    def test_monitor_on_iks(self, capsys):
        assert main([
            "iks", "--target", "2.5,1.0", "--backend", "compiled",
            "--monitor",
        ]) == 0
        out = capsys.readouterr().out
        assert "bit-exact   : True" in out
        assert "assertion report:" in out

    @needs_numpy
    def test_monitor_on_batched_sweep(self, clash_json, tmp_path, capsys):
        report = tmp_path / "lanes.json"
        assert main([
            "simulate", str(clash_json), "--backend", "compiled-batched",
            "--batch", "3", "--monitor", "--assert-out", str(report),
        ]) == 1
        out = capsys.readouterr().out
        assert "violations over 3 lanes" in out
        assert "lane 0:" in out
        docs = json.loads(report.read_text())
        assert len(docs) == 3
        assert all(not d["ok"] for d in docs)

    def test_assert_out_requires_monitoring(self, fig1_json, capsys):
        assert main([
            "simulate", str(fig1_json), "--assert-out", "r.json",
        ]) == 1
        assert "--assert-out needs" in capsys.readouterr().err

    def test_bad_assert_file_reports_error(
        self, fig1_json, tmp_path, capsys
    ):
        props = tmp_path / "bad.json"
        props.write_text('[{"type": "bogus"}]')
        assert main([
            "simulate", str(fig1_json), "--assert-file", str(props),
        ]) == 1
        assert "property #1" in capsys.readouterr().err

    def test_profile_sample_flag(self, fig1_json, capsys):
        assert main([
            "simulate", str(fig1_json), "--profile", "--profile-sample", "3",
        ]) == 0
        assert "every 3" in capsys.readouterr().out

    def test_profile_sample_requires_profile(self, fig1_json, capsys):
        assert main([
            "simulate", str(fig1_json), "--profile-sample", "3",
        ]) == 1
        assert "--profile-sample needs" in capsys.readouterr().err


class TestStreamCli:
    def _free_port(self):
        import socket

        sock = socket.socket()
        sock.bind(("127.0.0.1", 0))
        port = sock.getsockname()[1]
        sock.close()
        return port

    def test_stream_serves_the_run(self, clash_json):
        import io
        import threading

        from repro.observe import watch_stream

        port = self._free_port()
        codes = {}

        def runner():
            codes["rc"] = main([
                "simulate", str(clash_json), "--monitor",
                "--stream", f"127.0.0.1:{port}", "--stream-wait", "10",
            ])

        thread = threading.Thread(target=runner, daemon=True)
        thread.start()
        events = []
        deadline = 50
        while deadline:
            try:
                watch_stream(
                    "127.0.0.1", port, out=io.StringIO(), timeout=10.0,
                    on_event=events.append,
                )
                break
            except OSError:
                import time

                time.sleep(0.1)
                deadline -= 1
        thread.join(timeout=30.0)
        assert codes["rc"] == 1  # conflicts + violations
        kinds = {e["event"] for e in events}
        assert "violation" in kinds and "conflict" in kinds
        assert events[-1]["event"] == "run_end"

    def test_watch_renders_a_live_stream(self, capsys):
        import threading

        from repro.observe import StreamServer

        with StreamServer(wait_for_client=10.0) as server:
            host, port = server.address

            def feeder():
                server._have_client.wait(10.0)
                server.emit({"event": "step", "cs": 1})
                server.emit({
                    "event": "violation", "cs": 2, "ph": "rb",
                    "property": "never_illegal", "signal": "B1",
                    "message": "observed ILLEGAL",
                })
                server.close()

            thread = threading.Thread(target=feeder, daemon=True)
            thread.start()
            assert main([
                "watch", f"{host}:{port}", "--timeout", "10",
            ]) == 0
            thread.join(timeout=10.0)
        captured = capsys.readouterr()
        assert "VIOLATION" in captured.out
        assert "never_illegal" in captured.out

    def test_watch_connection_refused(self, capsys):
        port = self._free_port()
        assert main([
            "watch", f"127.0.0.1:{port}", "--timeout", "0.5",
        ]) == 1
        assert "error:" in capsys.readouterr().err

    def test_watch_bad_endpoint(self, capsys):
        assert main(["watch", "not-a-port"]) == 1
        assert "error:" in capsys.readouterr().err

    def test_stream_wait_requires_stream(self, fig1_json, capsys):
        assert main([
            "simulate", str(fig1_json), "--stream-wait", "5",
        ]) == 1
        assert "--stream-wait needs" in capsys.readouterr().err

    @needs_numpy
    def test_batched_rejects_stream(self, fig1_json, capsys):
        assert main([
            "simulate", str(fig1_json), "--backend", "compiled-batched",
            "--stream", "127.0.0.1:0",
        ]) == 1
        assert "single-run output" in capsys.readouterr().err


class TestReportOnTruncatedLogs:
    def test_report_survives_a_truncated_recording(
        self, fig1_json, tmp_path, capsys
    ):
        log = tmp_path / "run.jsonl"
        assert main(["simulate", str(fig1_json), "--observe", str(log)]) == 0
        capsys.readouterr()
        lines = log.read_text().splitlines()
        log.write_text("\n".join(lines[:-1]) + "\n" + lines[-1][:9])
        with pytest.warns(UserWarning, match="truncated"):
            assert main(["report", str(log)]) == 0
        out = capsys.readouterr().out
        assert "run report: example [event]" in out

    def test_report_on_empty_log(self, tmp_path, capsys):
        log = tmp_path / "empty.jsonl"
        log.write_text("")
        assert main(["report", str(log)]) == 0
        assert capsys.readouterr().out


class TestPlanCli:
    def test_plan_describes_the_model(self, fig1_json, capsys):
        assert main(["plan", str(fig1_json)]) == 0
        out = capsys.readouterr().out
        assert "plan: model 'example'" in out
        assert "digest" in out

    def test_plan_digest_is_stable(self, fig1_json, capsys):
        assert main(["plan", str(fig1_json), "--digest"]) == 0
        first = capsys.readouterr().out.strip()
        assert main(["plan", str(fig1_json), "--digest"]) == 0
        second = capsys.readouterr().out.strip()
        assert first == second
        assert len(first) == 64

    def test_plan_json_summary(self, fig1_json, capsys):
        assert main(["plan", str(fig1_json), "--json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["model"] == "example"
        assert doc["buses"] == 2
        assert doc["registers"] == 2

    def test_plan_cache_flag_fills_and_hits(
        self, fig1_json, tmp_path, capsys
    ):
        cache_dir = str(tmp_path / "cache")
        assert main([
            "plan", str(fig1_json), "--plan-cache", cache_dir,
        ]) == 0
        assert "plan_cache: miss" in capsys.readouterr().out
        assert main([
            "plan", str(fig1_json), "--plan-cache", cache_dir,
        ]) == 0
        assert "plan_cache: hit" in capsys.readouterr().out

    def test_simulate_reports_cache_verdict(
        self, fig1_json, tmp_path, capsys
    ):
        cache_dir = str(tmp_path / "cache")
        assert main([
            "simulate", str(fig1_json), "--backend", "compiled",
            "--plan-cache", cache_dir,
        ]) == 0
        out = capsys.readouterr().out
        assert "plan_cache: miss" in out
        assert "R1 = 5" in out
        assert main([
            "simulate", str(fig1_json), "--backend", "compiled",
            "--plan-cache", cache_dir,
        ]) == 0
        out = capsys.readouterr().out
        assert "plan_cache: hit" in out
        assert "R1 = 5" in out

    def test_plan_cache_rejects_event_backend(self, fig1_json, capsys):
        assert main([
            "simulate", str(fig1_json), "--plan-cache",
        ]) == 1
        assert "compiled backends only" in capsys.readouterr().err

    def test_plan_cache_conflicting_flags(self, fig1_json, capsys):
        assert main([
            "simulate", str(fig1_json), "--backend", "compiled",
            "--plan-cache", "--no-plan-cache",
        ]) == 1
        assert "exclusive" in capsys.readouterr().err

    def test_bench_plan_writes_record(self, fig1_json, tmp_path, capsys):
        out = tmp_path / "BENCH_plan.json"
        assert main([
            "bench", "--plan", "--model", str(fig1_json),
            "--repeat", "2", "--out", str(out),
        ]) == 0
        record = json.loads(out.read_text())
        assert record["benchmark"] == "plan-cache"
        assert record["model"]["name"] == "example"
        assert record["cold_ms"] > 0
        assert record["warm_ms"] > 0
        assert record["digest_ms"] > 0
        assert record["speedup"] > 0
        assert len(record["digest"]) == 64
        assert "speedup" in capsys.readouterr().out

    def test_bench_plan_excludes_sharded(self, capsys):
        assert main(["bench", "--plan", "--sharded"]) == 1
        assert "exclusive" in capsys.readouterr().err


class TestCoverCli:
    def test_cover_prints_the_report(self, fig1_json, capsys):
        assert main(["cover", str(fig1_json)]) == 0
        out = capsys.readouterr().out
        assert "coverage: model 'example'" in out
        assert "transfers" in out
        assert "conflict pairs" in out

    def test_cover_json_output(self, fig1_json, capsys):
        assert main(["cover", str(fig1_json), "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["model"] == "example"
        assert payload["totals"]["transfers"] == len(
            payload["hits"]["transfers"]
        )

    def test_cover_is_backend_identical(self, clash_json, capsys):
        assert main(["cover", str(clash_json), "--json",
                     "--backend", "event"]) in (0, 1)
        event = json.loads(capsys.readouterr().out)
        assert main(["cover", str(clash_json), "--json",
                     "--backend", "compiled"]) in (0, 1)
        compiled = json.loads(capsys.readouterr().out)
        assert event == compiled

    def test_cover_out_writes_json(self, fig1_json, tmp_path, capsys):
        out = tmp_path / "cov.json"
        assert main(["cover", str(fig1_json), "--cover-out", str(out)]) == 0
        assert json.loads(out.read_text())["model"] == "example"
        assert f"-- wrote {out}" in capsys.readouterr().out

    def test_cover_min_gates_the_exit_status(self, fig1_json, capsys):
        assert main(["cover", str(fig1_json), "--cover-min", "1"]) == 0
        capsys.readouterr()
        assert main(["cover", str(fig1_json), "--cover-min", "99"]) == 1
        assert "below --cover-min" in capsys.readouterr().out

    def test_cover_db_accumulates_across_processes(
        self, fig1_json, tmp_path, capsys
    ):
        db = tmp_path / "covdb"
        assert main(["cover", str(fig1_json), "--cover-db", str(db)]) == 0
        first = capsys.readouterr().out
        assert "coverage db:" in first
        assert main(["cover", str(fig1_json), "--cover-db", str(db)]) == 0
        second = capsys.readouterr().out
        # Idempotent: the cumulative count does not change on a rerun.
        assert first.splitlines()[-1] == second.splitlines()[-1]
        entries = list((db / "coverage" / "v1").glob("*.json"))
        assert len(entries) == 1

    @needs_numpy
    def test_cover_batched_sweep_with_lanes(self, fig1_json, capsys):
        assert main([
            "cover", str(fig1_json), "--backend", "compiled-batched",
            "--batch", "4", "--seed", "9", "--per-lane",
        ]) == 0
        out = capsys.readouterr().out
        assert "lane 0:" in out
        assert "lane 3:" in out
        assert "coverage: model 'example'" in out

    def test_batch_requires_batched_backend(self, fig1_json, capsys):
        assert main(["cover", str(fig1_json), "--batch", "3"]) == 1
        assert "compiled-batched" in capsys.readouterr().err

    def test_simulate_cover_flag(self, fig1_json, capsys):
        assert main(["simulate", str(fig1_json), "--cover",
                     "--backend", "compiled"]) == 0
        out = capsys.readouterr().out
        assert "coverage: model 'example'" in out
        assert "R1 = 5" in out

    @needs_numpy
    def test_simulate_batched_cover_merges_lanes(
        self, fig1_json, capsys
    ):
        assert main([
            "simulate", str(fig1_json), "--backend", "compiled-batched",
            "--batch", "3", "--cover",
        ]) == 0
        assert "coverage: model 'example'" in capsys.readouterr().out

    def test_run_subcommand_cover_via_model_path(self, fig1_vhd, capsys):
        assert main(["run", str(fig1_vhd), "--top", "example",
                     "--cover"]) == 0
        assert "coverage: model 'example'" in capsys.readouterr().out


class TestMetricsCli:
    def test_metrics_exports_prometheus_text(self, fig1_json, capsys):
        from repro.observe import parse_prometheus

        assert main(["metrics", str(fig1_json), "--backend",
                     "compiled"]) == 0
        parsed = parse_prometheus(capsys.readouterr().out)
        samples = {
            s["labels"]["backend"]: s["value"]
            for s in parsed["repro_runs_total"]["samples"]
        }
        assert samples["compiled"] >= 1.0

    def test_metrics_json_and_out_file(self, fig1_json, tmp_path, capsys):
        out = tmp_path / "metrics.json"
        assert main(["metrics", str(fig1_json), "--json",
                     "--out", str(out)]) == 0
        payload = json.loads(out.read_text())
        assert "repro_runs_total" in payload
        assert f"-- wrote {out}" in capsys.readouterr().out

    def test_metrics_out_flag_on_simulate(self, fig1_json, tmp_path, capsys):
        from repro.observe import parse_prometheus

        prom = tmp_path / "run.prom"
        assert main(["simulate", str(fig1_json), "--backend", "compiled",
                     "--metrics-out", str(prom)]) == 0
        parsed = parse_prometheus(prom.read_text())
        assert "repro_runs_total" in parsed

    def test_metrics_out_json_by_extension(
        self, fig1_json, tmp_path, capsys
    ):
        path = tmp_path / "run-metrics.json"
        assert main(["simulate", str(fig1_json),
                     "--metrics-out", str(path)]) == 0
        assert "repro_runs_total" in json.loads(path.read_text())


class TestTraceCli:
    def test_trace_out_writes_chrome_json(self, fig1_json, tmp_path, capsys):
        out = tmp_path / "trace.json"
        assert main(["simulate", str(fig1_json), "--backend", "compiled",
                     "--trace-out", str(out)]) == 0
        payload = json.loads(out.read_text())
        names = {e["name"] for e in payload["traceEvents"]}
        assert "elaborate" in names
        assert "run" in names
        assert "cs1" in names

    def test_trace_out_carries_plan_and_shard_spans(
        self, fig1_json, tmp_path, capsys
    ):
        out = tmp_path / "trace.json"
        cache = tmp_path / "plans"
        assert main(["simulate", str(fig1_json), "--backend", "sharded",
                     "--shards", "2", "--plan-cache", str(cache),
                     "--trace-out", str(out)]) == 0
        names = {e["name"] for e in json.loads(out.read_text())["traceEvents"]}
        assert "plan:miss" in names
        assert "shard0:execute" in names
        assert "shard1:execute" in names

    @needs_numpy
    def test_batched_rejects_trace_out(self, fig1_json, tmp_path, capsys):
        assert main([
            "simulate", str(fig1_json), "--backend", "compiled-batched",
            "--batch", "2", "--trace-out", str(tmp_path / "t.json"),
        ]) == 1
        assert "single-run output" in capsys.readouterr().err


class TestCodegenCli:
    def test_simulate_compiled_py_prints_verdict_line(
        self, fig1_json, capsys
    ):
        assert main([
            "simulate", str(fig1_json), "--backend", "compiled-py",
        ]) == 0
        out = capsys.readouterr().out
        assert "-- codegen: off mode=" in out
        assert "R1 = 5" in out

    def test_simulate_compiled_py_cache_miss_then_hit(
        self, fig1_json, tmp_path, capsys
    ):
        cache = tmp_path / "cache"
        assert main([
            "simulate", str(fig1_json), "--backend", "compiled-py",
            "--plan-cache", str(cache),
        ]) == 0
        assert "-- codegen: miss mode=" in capsys.readouterr().out
        assert main([
            "simulate", str(fig1_json), "--backend", "compiled-py",
            "--plan-cache", str(cache),
        ]) == 0
        out = capsys.readouterr().out
        assert "-- plan_cache: hit" in out
        assert "-- codegen: hit mode=" in out

    @needs_numpy
    def test_simulate_compiled_py_batched_sweep(self, fig1_json, capsys):
        assert main([
            "simulate", str(fig1_json), "--backend", "compiled-py-batched",
            "--batch", "3", "--seed", "7",
        ]) == 0
        out = capsys.readouterr().out
        assert "3 vectors, 3 clean" in out

    @needs_numpy
    def test_batched_backends_print_identical_sweeps(
        self, fig1_json, capsys
    ):
        assert main([
            "simulate", str(fig1_json), "--backend", "compiled-batched",
            "--batch", "4", "--seed", "11",
        ]) == 0
        reference = capsys.readouterr().out
        assert main([
            "simulate", str(fig1_json), "--backend", "compiled-py-batched",
            "--batch", "4", "--seed", "11",
        ]) == 0
        generated = capsys.readouterr().out
        stripped = [
            line for line in generated.splitlines()
            if not line.startswith("-- codegen:")
        ]
        assert stripped == reference.splitlines()

    def test_run_rejects_codegen_batched_backend(self, fig1_vhd, capsys):
        assert main([
            "run", str(fig1_vhd), "--top", "example",
            "--backend", "compiled-py-batched",
        ]) == 1
        assert "batch-shaped results" in capsys.readouterr().err

    def test_plan_emit_code_prints_artifact_source(
        self, fig1_json, capsys
    ):
        assert main(["plan", str(fig1_json), "--emit-code"]) == 0
        out = capsys.readouterr().out
        assert "CODEGEN_VERSION = " in out
        assert 'PLAN_DIGEST = "' in out
        assert "def bind(" in out

    def test_plan_gc_prunes_and_reports(self, fig1_json, tmp_path, capsys):
        cache = tmp_path / "cache"
        assert main([
            "simulate", str(fig1_json), "--backend", "compiled-py",
            "--plan-cache", str(cache),
        ]) == 0
        capsys.readouterr()
        (cache / "plans" / "v1" / "junk.plan").write_text("junk")
        assert main(["plan", "--gc", "--plan-cache", str(cache)]) == 0
        out = capsys.readouterr().out
        assert "plans: kept 1, removed 1" in out
        assert "codegen: kept 2, removed 0" in out

    def test_plan_gc_rejects_inspection_flags(self, fig1_json, capsys):
        assert main(["plan", str(fig1_json), "--gc"]) == 1
        assert "no model file" in capsys.readouterr().err

    def test_plan_requires_file_or_gc(self, capsys):
        assert main(["plan"]) == 1
        assert "model JSON file is required" in capsys.readouterr().err

    def test_bench_codegen_writes_record(self, fig1_json, tmp_path, capsys):
        out = tmp_path / "bench.json"
        assert main([
            "bench", "--codegen", "--model", str(fig1_json),
            "--repeat", "1", "--out", str(out),
        ]) == 0
        record = json.loads(out.read_text())
        assert record["benchmark"] == "codegen-vs-compiled"
        assert record["speedup"] > 0
        case = record["cases"][0]
        assert case["codegen"]["mode"] in ("exec", "jit")
        assert case["codegen"]["warm_build_ms"] >= 0.0
        assert case["compiled"]["metrics"]["deltas"] == 42
        text = capsys.readouterr().out
        assert "speedup" in text

    def test_bench_modes_are_exclusive(self, capsys):
        assert main(["bench", "--codegen", "--plan"]) == 1
        assert "exclusive" in capsys.readouterr().err
