"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import main
from repro.core import ModuleSpec, RTModel
from repro.core.serialize import dump
from repro.vhdl import EXAMPLE_FIG1


@pytest.fixture
def fig1_json(tmp_path):
    model = RTModel("example", cs_max=7)
    model.register("R1", init=2)
    model.register("R2", init=3)
    model.bus("B1")
    model.bus("B2")
    model.module(ModuleSpec("ADD", latency=1))
    model.add_transfer("(R1,B1,R2,B2,5,ADD,6,B1,R1)")
    path = tmp_path / "fig1.json"
    dump(model, path)
    return path


@pytest.fixture
def fig1_vhd(tmp_path):
    path = tmp_path / "example.vhd"
    path.write_text(EXAMPLE_FIG1)
    return path


class TestCheckAndRun:
    def test_check_conformant_file(self, fig1_vhd, capsys):
        assert main(["check", str(fig1_vhd)]) == 0
        assert "conforms" in capsys.readouterr().out

    def test_check_nonconformant_file(self, tmp_path, capsys):
        bad = tmp_path / "bad.vhd"
        bad.write_text(
            "entity e is end e;\n"
            "architecture a of e is\n"
            "  signal x: integer := 0;\n"
            "begin\n"
            "  p: process begin x <= 1; end process;\n"
            "end a;\n"
        )
        assert main(["check", str(bad)]) == 1
        assert "violation" in capsys.readouterr().out

    def test_run_paper_example(self, fig1_vhd, capsys):
        assert main(["run", str(fig1_vhd), "--top", "example",
                     "--signals", "r1_out,r2_out"]) == 0
        out = capsys.readouterr().out
        assert "r1_out = 5" in out
        assert "42 delta cycles" in out

    def test_run_missing_file_reports_error(self, capsys):
        assert main(["run", "nope.vhd", "--top", "x"]) == 1
        assert "error:" in capsys.readouterr().err


class TestModelCommands:
    def test_analyze_clean_model(self, fig1_json, capsys):
        assert main(["analyze", str(fig1_json)]) == 0
        out = capsys.readouterr().out
        assert "no conflicts predicted" in out

    def test_simulate_prints_registers(self, fig1_json, capsys):
        assert main(["simulate", str(fig1_json)]) == 0
        out = capsys.readouterr().out
        assert "R1 = 5" in out
        assert "42" in out

    def test_simulate_with_overrides(self, fig1_json, capsys):
        assert main([
            "simulate", str(fig1_json), "--set", "R1=10", "--set", "R2=20",
        ]) == 0
        assert "R1 = 30" in capsys.readouterr().out

    def test_simulate_writes_vcd(self, fig1_json, tmp_path, capsys):
        vcd = tmp_path / "wave.vcd"
        assert main(["simulate", str(fig1_json), "--vcd", str(vcd)]) == 0
        assert vcd.exists()
        assert "$enddefinitions" in vcd.read_text()

    def test_reschedule_verifies_and_saves(self, fig1_json, tmp_path, capsys):
        out = tmp_path / "compact.json"
        assert main(["reschedule", str(fig1_json), "-o", str(out)]) == 0
        output = capsys.readouterr().out
        assert "verified: identical register results" in output
        assert out.exists()

    def test_emit_writes_vhdl(self, fig1_json, tmp_path):
        out = tmp_path / "model.vhd"
        assert main(["emit", str(fig1_json), "-o", str(out)]) == 0
        assert "entity example is" in out.read_text()

    def test_clocked_with_verification(self, fig1_json, tmp_path):
        out = tmp_path / "clocked.vhd"
        assert main([
            "clocked", str(fig1_json), "-o", str(out), "--verify",
        ]) == 0
        assert "rising_edge(clk)" in out.read_text()

    def test_bad_set_syntax(self, fig1_json, capsys):
        assert main(["simulate", str(fig1_json), "--set", "R1"]) == 1
        assert "REG=VALUE" in capsys.readouterr().err


class TestSynthAndIks:
    def test_synth_verify_and_save(self, tmp_path, capsys):
        src = tmp_path / "prog.alg"
        src.write_text("t = (a + b) * (c - d)\nout = t + t\n")
        model_out = tmp_path / "model.json"
        assert main([
            "synth", str(src), "--resources", "ALU=1,MUL=1",
            "--verify", "-o", str(model_out),
        ]) == 0
        out = capsys.readouterr().out
        assert "operations scheduled" in out
        assert "EQUIVALENT" in out
        doc = json.loads(model_out.read_text())
        assert doc["format"] == "repro-rt-model"

    def test_iks_case_study(self, capsys):
        assert main(["iks", "--target", "2.5,1.0"]) == 0
        out = capsys.readouterr().out
        assert "bit-exact   : True" in out

    def test_iks_three_dof(self, capsys):
        assert main(["iks", "--target", "2.8,1.2", "--phi", "0.6"]) == 0
        out = capsys.readouterr().out
        assert "theta3" in out
        assert "bit-exact   : True" in out

    def test_no_subcommand_prints_help(self, capsys):
        assert main([]) == 2
        assert "subcommands" in capsys.readouterr().out


class TestBackendSelection:
    def test_run_compiled_backend(self, fig1_vhd, capsys):
        assert main([
            "run", str(fig1_vhd), "--top", "example",
            "--backend", "compiled",
        ]) == 0
        out = capsys.readouterr().out
        assert "r1_out = 5" in out
        assert "r2_out = 3" in out
        assert "42 delta cycles" in out

    def test_run_event_without_transfer_engine(self, fig1_vhd, capsys):
        assert main([
            "run", str(fig1_vhd), "--top", "example",
            "--no-transfer-engine", "--signals", "r1_out",
        ]) == 0
        out = capsys.readouterr().out
        assert "r1_out = 5" in out

    def test_run_compiled_unknown_signal(self, fig1_vhd, capsys):
        assert main([
            "run", str(fig1_vhd), "--top", "example",
            "--backend", "compiled", "--signals", "b1",
        ]) == 1
        assert "register outputs only" in capsys.readouterr().err

    def test_run_rejects_unknown_backend(self, fig1_vhd, capsys):
        with pytest.raises(SystemExit):
            main([
                "run", str(fig1_vhd), "--top", "example",
                "--backend", "quantum",
            ])

    def test_simulate_compiled_backend(self, fig1_json, capsys):
        assert main([
            "simulate", str(fig1_json), "--backend", "compiled",
        ]) == 0
        out = capsys.readouterr().out
        assert "R1 = 5" in out
        assert "42 delta cycles (= CS_MAX*6 = 42)" in out

    def test_simulate_backends_print_identically(self, fig1_json, capsys):
        assert main(["simulate", str(fig1_json)]) == 0
        event_out = capsys.readouterr().out
        assert main([
            "simulate", str(fig1_json), "--backend", "compiled",
        ]) == 0
        assert capsys.readouterr().out == event_out
        assert main([
            "simulate", str(fig1_json), "--no-transfer-engine",
        ]) == 0
        assert capsys.readouterr().out == event_out

    def test_iks_compiled_backend(self, capsys):
        assert main([
            "iks", "--target", "2.5,1.0", "--backend", "compiled",
        ]) == 0
        assert "bit-exact   : True" in capsys.readouterr().out
