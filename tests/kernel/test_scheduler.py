"""Unit tests for the delta-cycle scheduler."""

import pytest

from repro.kernel import (
    DeltaCycleLimitError,
    ElaborationError,
    ProcessError,
    SimTime,
    Simulator,
    wait_for,
    wait_forever,
    wait_on,
    wait_until,
)


def test_initialize_runs_every_process_once():
    sim = Simulator()
    log = []

    def proc(tag):
        log.append(tag)
        yield wait_forever()

    sim.add_process("a", proc, "a")
    sim.add_process("b", proc, "b")
    sim.initialize()
    assert log == ["a", "b"]


def test_zero_delay_assignment_takes_effect_next_delta():
    sim = Simulator()
    s = sim.signal("s", init=0)
    drv = sim.driver(s, owner="p")
    observed = []

    def writer():
        drv.set(7)
        observed.append(("at_init", s.value))
        yield wait_forever()

    def reader():
        yield wait_on(s)
        observed.append(("after_event", s.value, sim.now.delta))

    sim.add_process("writer", writer)
    sim.add_process("reader", reader)
    sim.run()
    # Value is unchanged in the cycle of the assignment, visible next delta.
    assert ("at_init", 0) in observed
    assert ("after_event", 7, 1) in observed


def test_delta_chain_counts_cycles():
    """A chain of N zero-delay hops takes N delta cycles."""
    sim = Simulator()
    hops = 5
    sigs = [sim.signal(f"s{i}", init=0) for i in range(hops + 1)]
    drivers = [sim.driver(sigs[i + 1], owner=f"p{i}") for i in range(hops)]

    def stage(i):
        yield wait_on(sigs[i])
        drivers[i].set(sigs[i].value)

    def source():
        drv = sim.driver(sigs[0], owner="src")
        drv.set(42)
        yield wait_forever()

    for i in range(hops):
        sim.add_process(f"stage{i}", stage, i)
    sim.add_process("source", source)
    sim.run()
    assert sigs[-1].value == 42
    # source's assignment lands at delta 1; each stage adds one delta.
    assert sim.stats.delta_cycles == hops + 1


def test_wait_until_predicate_only_sampled_on_events():
    sim = Simulator()
    a = sim.signal("a", init=0)
    b = sim.signal("b", init=0)
    da = sim.driver(a, owner="pa")
    db = sim.driver(b, owner="pb")
    woke = []

    def watcher():
        yield wait_until(lambda: a.value == 1 and b.value == 1, a, b)
        woke.append(sim.now)

    def stimulus():
        da.set(1)
        yield wait_on(a)
        # a==1, b==0: watcher must not have woken.
        assert not woke
        db.set(1)
        yield wait_forever()

    sim.add_process("watcher", watcher)
    sim.add_process("stimulus", stimulus)
    sim.run()
    assert len(woke) == 1


def test_wait_for_advances_physical_time():
    sim = Simulator()
    times = []

    def sleeper():
        times.append(sim.now.time)
        yield wait_for(10)
        times.append(sim.now.time)
        yield wait_for(5)
        times.append(sim.now.time)

    sim.add_process("sleeper", sleeper)
    sim.run()
    assert times == [0, 10, 15]
    assert sim.quiescent


def test_unresolved_signal_rejects_second_driver():
    sim = Simulator()
    s = sim.signal("s", init=0)
    sim.driver(s, owner="p1")
    with pytest.raises(ElaborationError, match="unresolved"):
        sim.driver(s, owner="p2")


def test_resolution_function_combines_drivers():
    sim = Simulator()
    s = sim.signal("s", init=0, resolution=sum)
    d1 = sim.driver(s, owner="p1", init=0)
    d2 = sim.driver(s, owner="p2", init=0)

    def proc1():
        d1.set(3)
        yield wait_forever()

    def proc2():
        d2.set(4)
        yield wait_forever()

    sim.add_process("p1", proc1)
    sim.add_process("p2", proc2)
    sim.run()
    assert s.value == 7


def test_delta_loop_raises_limit_error():
    sim = Simulator(max_deltas_per_time=50)
    s = sim.signal("s", init=0)
    drv = sim.driver(s, owner="osc")

    def oscillator():
        while True:
            drv.set(1 - s.value)
            yield wait_on(s)

    sim.add_process("osc", oscillator)
    with pytest.raises(DeltaCycleLimitError):
        sim.run()


def test_process_exception_is_wrapped():
    sim = Simulator()

    def bad():
        raise ValueError("boom")
        yield  # pragma: no cover

    sim.add_process("bad", bad)
    with pytest.raises(ProcessError, match="bad.*boom"):
        sim.run()


def test_positive_delay_schedules_future_time():
    sim = Simulator()
    s = sim.signal("s", init=0)
    drv = sim.driver(s, owner="p")
    seen = []

    def writer():
        drv.set(1, delay=20)
        yield wait_forever()

    def reader():
        yield wait_on(s)
        seen.append((sim.now.time, sim.now.delta, s.value))

    sim.add_process("writer", writer)
    sim.add_process("reader", reader)
    sim.run()
    assert seen == [(20, 0, 1)]


def test_transport_preemption_drops_later_transactions():
    sim = Simulator()
    s = sim.signal("s", init=0)
    drv = sim.driver(s, owner="p")
    history = []
    s.watch(lambda sig, old, new: history.append((sim.now.time, new)))

    def writer():
        drv.set(1, delay=30)
        drv.set(2, delay=10)  # preempts the t=30 transaction
        yield wait_forever()

    sim.add_process("writer", writer)
    sim.run()
    assert history == [(10, 2)]
    assert s.value == 2


def test_stats_track_events_and_resumes():
    sim = Simulator()
    s = sim.signal("s", init=0)
    drv = sim.driver(s, owner="p")

    def writer():
        for v in (1, 2, 3):
            drv.set(v)
            yield wait_on(s)

    sim.add_process("writer", writer)
    sim.run()
    assert sim.stats.events == 3
    assert sim.stats.process_resumes == 3
    assert s.event_count == 3


def test_simtime_ordering_and_validation():
    assert SimTime(0, 1) < SimTime(0, 2) < SimTime(1, 0)
    assert SimTime(3, 0).advance_delta() == SimTime(3, 1)
    with pytest.raises(ValueError):
        SimTime(-1, 0)
    with pytest.raises(ValueError):
        SimTime(0, 0).advance_time(0)


def test_run_until_time_stops_before_later_cycles():
    sim = Simulator()
    ticks = []

    def ticker():
        while True:
            yield wait_for(10)
            ticks.append(sim.now.time)

    sim.add_process("ticker", ticker)
    sim.run(until_time=35)
    assert ticks == [10, 20, 30]
    # Resuming without the bound finishes nothing more (ticker is
    # eternal), but the next cycle would be at t=40.
    sim.run(max_cycles=1)
    assert ticks[-1] == 40


def test_run_max_cycles_bounds_work():
    sim = Simulator()
    s = sim.signal("s", init=0)
    drv = sim.driver(s, owner="p")

    def writer():
        for v in range(1, 100):
            drv.set(v)
            yield wait_on(s)

    sim.add_process("w", writer)
    sim.initialize()
    sim.run(max_cycles=5)
    assert s.value == 5
    sim.run()
    assert s.value == 99


def test_same_value_assignment_is_not_an_event():
    sim = Simulator()
    s = sim.signal("s", init=5)
    drv = sim.driver(s, owner="p")
    woke = []

    def writer():
        drv.set(5)  # transaction, but no value change
        yield wait_forever()

    def reader():
        yield wait_on(s)
        woke.append(sim.now)

    sim.add_process("writer", writer)
    sim.add_process("reader", reader)
    sim.run()
    assert not woke
