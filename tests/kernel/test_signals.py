"""Unit tests for signals, drivers and wait conditions."""

import pytest

from repro.kernel import (
    ElaborationError,
    Simulator,
    iter_driver_values,
    wait_for,
    wait_forever,
    wait_on,
    wait_until,
)
from repro.kernel.waits import WaitFor, WaitOn, WaitUntil


class TestSignalBasics:
    def test_duplicate_signal_name_rejected(self):
        sim = Simulator()
        sim.signal("s", init=0)
        with pytest.raises(ElaborationError, match="duplicate"):
            sim.signal("s", init=1)

    def test_repr_shows_value_and_kind(self):
        sim = Simulator()
        s = sim.signal("plain", init=3)
        r = sim.signal("res", init=0, resolution=sum)
        assert "plain=3" in repr(s)
        assert repr(r).startswith("<resolved Signal")

    def test_driver_count(self):
        sim = Simulator()
        s = sim.signal("s", init=0, resolution=sum)
        assert s.driver_count == 0
        sim.driver(s, owner="a", init=0)
        sim.driver(s, owner="b", init=0)
        assert s.driver_count == 2

    def test_foreign_signal_rejected(self):
        sim1, sim2 = Simulator(), Simulator()
        s = sim1.signal("s", init=0)
        with pytest.raises(ElaborationError, match="different simulator"):
            sim2.driver(s, owner="x")

    def test_driver_default_init_is_signal_value(self):
        sim = Simulator()
        s = sim.signal("s", init=42)
        drv = sim.driver(s, owner="p")
        assert drv.current == 42

    def test_iter_driver_values(self):
        sim = Simulator()
        s = sim.signal("s", init=0, resolution=sum)
        sim.driver(s, owner="a", init=1)
        sim.driver(s, owner="b", init=2)
        assert dict(iter_driver_values(s)) == {"a": 1, "b": 2}

    def test_last_event_and_event_count(self):
        sim = Simulator()
        s = sim.signal("s", init=0)
        drv = sim.driver(s, owner="p")

        def writer():
            drv.set(1)
            yield wait_on(s)
            drv.set(2)
            yield wait_on(s)

        sim.add_process("w", writer)
        sim.run()
        assert s.event_count == 2
        assert s.last_event is not None
        assert s.last_event.delta == 2

    def test_negative_delay_rejected(self):
        sim = Simulator()
        s = sim.signal("s", init=0)
        drv = sim.driver(s, owner="p")

        def bad():
            drv.set(1, delay=-1)
            yield wait_forever()

        sim.add_process("bad", bad)
        from repro.kernel import ProcessError, SimulationError

        with pytest.raises((ProcessError, SimulationError)):
            sim.run()

    def test_watchers_see_old_and_new(self):
        sim = Simulator()
        s = sim.signal("s", init=5)
        drv = sim.driver(s, owner="p")
        seen = []
        s.watch(lambda sig, old, new: seen.append((sig.name, old, new)))

        def writer():
            drv.set(9)
            yield wait_forever()

        sim.add_process("w", writer)
        sim.run()
        assert seen == [("s", 5, 9)]


class TestResolvedSignals:
    def test_initial_resolution_at_initialize(self):
        sim = Simulator()
        s = sim.signal("s", init=0, resolution=sum)
        sim.driver(s, owner="a", init=3)
        sim.driver(s, owner="b", init=4)
        sim.initialize()
        assert s.value == 7

    def test_reresolution_on_any_driver_change(self):
        sim = Simulator()
        s = sim.signal("s", init=0, resolution=max)
        d1 = sim.driver(s, owner="a", init=0)
        d2 = sim.driver(s, owner="b", init=0)

        def p1():
            d1.set(5)
            yield wait_forever()

        def p2():
            yield wait_on(s)
            d2.set(9)

        sim.add_process("p1", p1)
        sim.add_process("p2", p2)
        sim.run()
        assert s.value == 9

    def test_same_value_transaction_triggers_reresolution(self):
        # Driver b re-drives its current value while driver a changes:
        # the signal must still resolve to the combined result.
        sim = Simulator()
        s = sim.signal("s", init=0, resolution=sum)
        d1 = sim.driver(s, owner="a", init=1)
        d2 = sim.driver(s, owner="b", init=1)

        def both():
            d1.set(5)
            d2.set(1)  # same value: still a transaction
            yield wait_forever()

        sim.add_process("p", both)
        sim.run()
        assert s.value == 6


class TestWaitConditions:
    def test_wait_on_requires_signals(self):
        with pytest.raises(ElaborationError):
            wait_on()

    def test_wait_until_requires_sensitivity(self):
        with pytest.raises(ElaborationError, match="sensitivity"):
            wait_until(lambda: True)

    def test_wait_for_requires_positive_delay(self):
        with pytest.raises(ElaborationError):
            wait_for(0)

    def test_condition_types(self):
        sim = Simulator()
        s = sim.signal("s", init=0)
        assert isinstance(wait_on(s), WaitOn)
        assert isinstance(wait_until(lambda: True, s), WaitUntil)
        assert isinstance(wait_for(5), WaitFor)

    def test_yielding_non_wait_is_an_error(self):
        sim = Simulator()

        def bad():
            yield 42

        sim.add_process("bad", bad)
        from repro.kernel import ProcessError

        with pytest.raises(ProcessError, match="not a wait condition"):
            sim.run()

    def test_non_generator_process_rejected(self):
        sim = Simulator()
        with pytest.raises(ElaborationError, match="generator"):
            sim.add_process("f", lambda: 42)

    def test_process_after_init_rejected(self):
        sim = Simulator()
        sim.initialize()
        with pytest.raises(ElaborationError, match="already initialized"):
            sim.add_process("late", lambda: iter(()))


class TestStatsArithmetic:
    def test_snapshot_and_subtract(self):
        sim = Simulator()
        s = sim.signal("s", init=0)
        drv = sim.driver(s, owner="p")

        def writer():
            for v in range(1, 6):
                drv.set(v)
                yield wait_on(s)

        sim.add_process("w", writer)
        sim.initialize()
        sim.run(max_cycles=2)
        before = sim.stats.snapshot()
        sim.run()
        delta = sim.stats - before
        assert delta.events == sim.stats.events - before.events
        assert before.events + delta.events == 5
