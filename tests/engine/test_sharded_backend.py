"""The sharded backend's own surface: failures, metrics, validation.

Bit-identity against the compiled reference lives in
``test_sharded_differential.py``; this module covers what is *new* in
the multi-process backend -- the barrier failure path, the per-shard
metrics, the elaborate plumbing and the error paths.
"""

import multiprocessing

import pytest

from repro.core import DISC, ModelError, ModuleSpec, Phase, RTModel, StepPhase
from repro.engine import ShardFailure, ShardedRTSimulation, run_metrics
from repro.engine.backend import shard_metrics_rows
from repro.kernel.errors import DeltaCycleLimitError


def fig1_model() -> RTModel:
    model = RTModel("example", cs_max=7)
    model.register("R1", init=2)
    model.register("R2", init=3)
    model.bus("B1")
    model.bus("B2")
    model.module(ModuleSpec("ADD", latency=1))
    model.add_transfer("(R1,B1,R2,B2,5,ADD,6,B1,R1)")
    return model


def lanes_model(lanes: int = 4) -> RTModel:
    model = RTModel(f"lanes{lanes}", cs_max=2 * lanes + 2)
    for lane in range(lanes):
        model.register(f"A{lane}", init=lane + 1)
        model.register(f"B{lane}", init=lane + 2)
        model.register(f"S{lane}")
        model.bus(f"BA{lane}")
        model.bus(f"BB{lane}")
        model.module(ModuleSpec(f"FU{lane}", latency=1))
        step = 2 * lane + 1
        model.add_transfer(
            f"(A{lane},BA{lane},B{lane},BB{lane},{step},FU{lane},"
            f"{step + 1},BA{lane},S{lane})"
        )
    return model


class TestBasicRuns:
    def test_elaborate_selects_sharded_backend(self):
        sim = fig1_model().elaborate(backend="sharded", shards=2)
        assert isinstance(sim, ShardedRTSimulation)
        assert sim.backend_name == "sharded"
        assert sim.run().registers == {"R1": 5, "R2": 3}

    def test_default_shard_count_is_two(self):
        sim = fig1_model().elaborate(backend="sharded")
        assert sim.num_shards == 2

    def test_register_overrides_apply(self):
        sim = fig1_model().elaborate(
            backend="sharded", shards=2, register_values={"R1": 10}
        ).run()
        assert sim.registers == {"R1": 13, "R2": 3}

    def test_getitem_and_signal(self):
        sim = fig1_model().elaborate(backend="sharded", shards=2).run()
        assert sim["R1"] == 5
        assert sim.signal("R1_out").value == 5
        assert sim.signal("B1").value == DISC
        with pytest.raises(KeyError):
            sim.signal("nope")
        with pytest.raises(KeyError):
            sim["nope"]

    def test_signal_before_run_is_an_error(self):
        sim = fig1_model().elaborate(backend="sharded", shards=2)
        with pytest.raises(RuntimeError, match="after run"):
            sim.signal("B1")

    def test_run_is_idempotent(self):
        sim = fig1_model().elaborate(backend="sharded", shards=2).run()
        deltas = sim.stats.delta_cycles
        assert sim.run().stats.delta_cycles == deltas

    def test_partition_override_reaches_the_plan(self):
        sim = lanes_model(2).elaborate(
            backend="sharded", shards=2, partition={"FU1": 0, "FU0": 1}
        ).run()
        assert sim.plan.module_shard == {"FU1": 0, "FU0": 1}
        assert sim.clean

    def test_max_deltas_limit_enforced(self):
        with pytest.raises(DeltaCycleLimitError):
            fig1_model().elaborate(
                backend="sharded", shards=2, max_deltas=10
            ).run()

    def test_no_workers_leak_after_run(self):
        fig1_model().elaborate(backend="sharded", shards=3).run()
        assert not multiprocessing.active_children()


class TestValidation:
    def test_batch_vectors_rejected(self):
        with pytest.raises(ModelError, match="compiled-batched"):
            fig1_model().elaborate(
                backend="sharded", register_values=[{"R1": 1}]
            )

    def test_unknown_register_override_rejected(self):
        with pytest.raises(ModelError, match="unknown registers"):
            fig1_model().elaborate(
                backend="sharded", register_values={"NOPE": 1}
            )

    def test_unknown_watch_rejected(self):
        with pytest.raises(ModelError, match="unknown signal"):
            fig1_model().elaborate(backend="sharded", watch=["nope"])

    def test_shards_flag_rejected_on_other_backends(self):
        with pytest.raises(ModelError, match="sharded"):
            fig1_model().elaborate(backend="compiled", shards=2)

    def test_partition_flag_rejected_on_other_backends(self):
        with pytest.raises(ModelError, match="sharded"):
            fig1_model().elaborate(backend="event", partition={"B1": 0})


class TestShardFailure:
    def test_killed_worker_surfaces_failure_with_location(self):
        sim = ShardedRTSimulation(
            lanes_model(2), shards=2, _test_fail_at={1: 3}
        )
        with pytest.raises(ShardFailure) as excinfo:
            sim.run()
        failure = excinfo.value
        assert failure.shard == 1
        assert failure.last_completed == StepPhase(2, Phase.CR)
        assert "cs2.cr" in str(failure)
        assert not multiprocessing.active_children()

    def test_worker_dying_before_first_step(self):
        sim = ShardedRTSimulation(
            lanes_model(2), shards=2, _test_fail_at={0: 1}
        )
        with pytest.raises(ShardFailure) as excinfo:
            sim.run()
        assert excinfo.value.shard == 0
        assert excinfo.value.last_completed is None
        assert "before completing any control step" in str(excinfo.value)
        assert not multiprocessing.active_children()


class TestMetrics:
    def test_per_shard_rows(self):
        sim = lanes_model(4).elaborate(backend="sharded", shards=2).run()
        rows = shard_metrics_rows(sim)
        assert [row["shard"] for row in rows] == [0, 1]
        for row in rows:
            assert row["syncs"] == sim.model.cs_max
            assert row["bytes_to_worker"] > 0
            assert row["bytes_from_worker"] > 0
            assert row["worker_wall"] >= 0

    def test_run_metrics_gains_shard_columns(self):
        sim = lanes_model(2).elaborate(backend="sharded", shards=2).run()
        row = run_metrics(sim)
        assert row["shards"] == 2
        assert row["syncs"] == sim.model.cs_max
        assert row["sync_bytes"] > 0

    def test_non_sharded_backends_grow_no_shard_columns(self):
        sim = fig1_model().elaborate(backend="compiled").run()
        assert "shards" not in run_metrics(sim)
        assert shard_metrics_rows(sim) == []
