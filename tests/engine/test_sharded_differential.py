"""Differential property: the sharded backend IS the compiled backend.

The multi-process realization must be bit-identical *per run* to the
single-process compiled executor -- final registers, full traces,
conflict events at exact (CS, PH) locations with identical source
lists, the clean flag, the delta budget and the canonical probe event
order.  Checked at K in {1, 2, 4} shards on the paper's E1 example, the
E4 conflict-injection lanes, the E6 IKS chip, and hypothesis-generated
colliding models (the same strategy the other backends are held to in
``test_differential.py``).
"""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core import ModuleSpec, RTModel
from repro.observe import Probe

from .test_differential import colliding_models, observe

SHARD_COUNTS = (1, 2, 4)


class RecordingProbe(Probe):
    """Flat ordered record of every callback, for order parity."""

    def __init__(self):
        self.events = []

    def on_step(self, step):
        self.events.append(("step", step))

    def on_phase(self, at):
        self.events.append(("phase", at))

    def on_bus_drive(self, at, bus, value):
        self.events.append(("bus", at, bus, value))

    def on_register_latch(self, at, register, value):
        self.events.append(("latch", at, register, value))

    def on_conflict(self, event):
        self.events.append(
            ("conflict", event.signal, event.at, event.sources)
        )


def fig1_model() -> RTModel:
    """E1: the paper's Fig. 1 example."""
    model = RTModel("example", cs_max=7)
    model.register("R1", init=2)
    model.register("R2", init=3)
    model.bus("B1")
    model.bus("B2")
    model.module(ModuleSpec("ADD", latency=1))
    model.add_transfer("(R1,B1,R2,B2,5,ADD,6,B1,R1)")
    return model


def conflicted_model(n_lanes: int, conflict_steps: list) -> RTModel:
    """E4: independent adder lanes plus deliberate bus collisions."""
    model = RTModel(f"conflicts_{n_lanes}", cs_max=2 * n_lanes + 2)
    model.register("X", init=99)
    for lane in range(n_lanes):
        model.register(f"A{lane}", init=lane + 1)
        model.register(f"B{lane}", init=lane + 2)
        model.register(f"S{lane}")
        model.bus(f"BA{lane}")
        model.bus(f"BB{lane}")
        model.module(ModuleSpec(f"FU{lane}", latency=1))
        step = 2 * lane + 1
        model.add_transfer(
            f"(A{lane},BA{lane},B{lane},BB{lane},{step},FU{lane},"
            f"{step + 1},BA{lane},S{lane})"
        )
    for step in conflict_steps:
        lane = (step - 1) // 2
        model.add_transfer(f"(X,BA{lane},-,-,{step},FU{lane},-,-,-)")
    return model


def assert_bit_identical(model, shards: int) -> None:
    """Full-surface comparison of one sharded run vs compiled."""
    ref_probe = RecordingProbe()
    reference = observe(
        model.elaborate(
            trace=True, observe=ref_probe, backend="compiled"
        ).run()
    )
    sharded_probe = RecordingProbe()
    sharded = model.elaborate(
        trace=True,
        observe=sharded_probe,
        backend="sharded",
        shards=shards,
    ).run()
    assert observe(sharded) == reference
    assert sharded_probe.events == ref_probe.events


class TestPaperExperiments:
    @pytest.mark.parametrize("shards", SHARD_COUNTS)
    def test_e1_fig1(self, shards):
        assert_bit_identical(fig1_model(), shards)

    @pytest.mark.parametrize("shards", SHARD_COUNTS)
    def test_e4_injected_conflicts(self, shards):
        model = conflicted_model(6, [1, 5, 9])
        # The injected collisions must actually be observed ...
        assert not model.elaborate(backend="compiled").run().clean
        # ... and identically on every shard count.
        assert_bit_identical(model, shards)

    @pytest.mark.parametrize("shards", SHARD_COUNTS)
    def test_e6_iks_chip(self, shards):
        from repro.iks.flow import build_ik_model

        model, _ = build_ik_model(2.5, 1.0)
        reference = model.elaborate(backend="compiled").run()
        sharded = model.elaborate(backend="sharded", shards=shards).run()
        assert sharded.registers == reference.registers
        assert sharded.clean == reference.clean
        assert [
            (e.signal, e.at, e.sources) for e in sharded.conflicts
        ] == [(e.signal, e.at, e.sources) for e in reference.conflicts]
        for counter in ("cycles", "delta_cycles", "events",
                        "transactions", "process_resumes"):
            assert getattr(sharded.stats, counter) == getattr(
                reference.stats, counter
            )


class TestStatsParity:
    @pytest.mark.parametrize("shards", SHARD_COUNTS)
    def test_full_counter_parity_on_conflicted_lanes(self, shards):
        model = conflicted_model(4, [3, 5])
        reference = model.elaborate(backend="compiled").run()
        sharded = model.elaborate(backend="sharded", shards=shards).run()
        for counter in ("cycles", "delta_cycles", "events",
                        "transactions", "process_resumes"):
            assert getattr(sharded.stats, counter) == getattr(
                reference.stats, counter
            )


class TestWatchSubset:
    def test_watch_subset_traces_match(self):
        model = conflicted_model(3, [3])
        watch = ["BA1", "S1_in", "S1_out", "FU1_out"]
        reference = model.elaborate(watch=watch, backend="compiled").run()
        sharded = model.elaborate(
            watch=watch, backend="sharded", shards=2
        ).run()
        assert sharded.tracer.samples == reference.tracer.samples


# Worker processes make each example ~10x the cost of an in-process
# backend comparison; fork start-up keeps it tolerable, but trim the
# example count and exempt the suite from hypothesis' per-example
# deadline checks.
SETTINGS = settings(
    max_examples=20,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


@SETTINGS
@given(colliding_models(), st.sampled_from(SHARD_COUNTS))
def test_sharded_matches_compiled_on_colliding_models(model, shards):
    assert_bit_identical(model, shards)
