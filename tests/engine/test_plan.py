"""Tests for the shared lowering pipeline (:mod:`repro.engine.plan`).

The Plan IR is the single artifact every compiled backend elaborates
from, so its contract is strict: lowering must be deterministic down
to the pickle bytes (in-process and across interpreter invocations),
the content digest must move on any semantic model edit, and the
backends must accept a pre-lowered plan as a drop-in for the model's
own lowering.
"""

import hashlib
import pickle
import subprocess
import sys
from pathlib import Path

import pytest

from repro.core import ModelError, ModuleSpec, RTModel
from repro.core.modules_lib import Operation
from repro.engine.plan import (
    Plan,
    lower,
    model_digest,
    resolve_plan,
    trans_op_code,
)

REPO_SRC = Path(__file__).resolve().parents[2] / "src"

# One canonical model-building recipe, shared verbatim with the
# subprocess determinism test: same source text, same model.
BUILD_MODEL_SRC = """
from repro.core import ModuleSpec, RTModel
from repro.core.modules_lib import Operation


def build_model():
    model = RTModel("planned", cs_max=9)
    model.register("R1", init=2)
    model.register("R2", init=3)
    model.register("R3")
    model.bus("B1")
    model.bus("B2")
    model.module(ModuleSpec("ADD", latency=1))
    model.module(ModuleSpec(
        "ALU",
        operations={
            "ADD": Operation("ADD", 2, lambda a, b: a + b),
            "SUB": Operation("SUB", 2, lambda a, b: a - b),
        },
        latency=0,
    ))
    model.add_transfer("(R1,B1,R2,B2,3,ADD,4,B1,R1)")
    model.add_transfer("(R1,B1,R2,B2,5,ALU,5,B2,R3)[SUB]")
    return model
"""

_namespace: dict = {}
exec(BUILD_MODEL_SRC, _namespace)
build_model = _namespace["build_model"]


class TestLowering:
    def test_lower_produces_plan(self):
        model = build_model()
        plan = lower(model)
        assert isinstance(plan, Plan)
        assert plan.name == "planned"
        assert plan.cs_max == 9
        assert plan.register_names() == ("R1", "R2", "R3")
        assert plan.bus_count == 2
        assert len(plan.modules) == 2
        # One driver per TRANS instance, in global spec order.
        assert plan.num_drivers == len(model.trans_specs())
        assert plan.matches(model)

    def test_digest_is_stable_and_attached(self):
        model = build_model()
        plan = lower(model)
        assert plan.digest == model_digest(model)
        assert plan.digest == model_digest(build_model())

    def test_unknown_port_reference_raises(self):
        model = RTModel("bad", cs_max=7)
        model.register("R1", init=1)
        model.register("R2", init=1)
        model.bus("B1")
        model.bus("B2")
        model.module(ModuleSpec("ADD", latency=1))
        model.add_transfer("(R1,B1,R2,B2,5,ADD,6,B1,R1)")
        model.buses.pop("B2")
        with pytest.raises(ModelError, match="unknown port or bus"):
            lower(model)

    def test_trans_op_code_matches_module_spec(self):
        model = build_model()
        assert trans_op_code(model, "op:SUB", "ALU_op") == \
            model.modules["ALU"].op_code("SUB")


class TestDeterminism:
    def test_same_model_lowered_twice_is_byte_identical(self):
        d1 = model_digest(build_model())
        p1 = pickle.dumps(lower(build_model(), digest=d1))
        p2 = pickle.dumps(lower(build_model(), digest=d1))
        assert p1 == p2

    def test_subprocess_lowering_is_byte_identical(self):
        """A fresh interpreter (fresh PYTHONHASHSEED, fresh object
        addresses) must produce the same digest and the same pickle
        bytes -- the property the on-disk cache key relies on."""
        script = BUILD_MODEL_SRC + """
import hashlib, pickle, sys
from repro.engine.plan import lower, model_digest

model = build_model()
digest = model_digest(model)
payload = pickle.dumps(lower(model, digest=digest))
print(digest)
print(hashlib.sha256(payload).hexdigest())
"""
        result = subprocess.run(
            [sys.executable, "-c", script],
            capture_output=True, text=True, check=True,
            env={"PYTHONPATH": str(REPO_SRC), "PYTHONHASHSEED": "random"},
        )
        sub_digest, sub_pickle_sha = result.stdout.split()
        model = build_model()
        digest = model_digest(model)
        payload = pickle.dumps(lower(model, digest=digest))
        assert sub_digest == digest
        assert sub_pickle_sha == hashlib.sha256(payload).hexdigest()


class TestDigestSensitivity:
    def test_register_init_changes_digest(self):
        base = build_model()
        edited = build_model()
        edited.registers["R1"] = type(edited.registers["R1"])(
            name="R1", init=3
        )
        assert model_digest(edited) != model_digest(base)

    def test_operation_body_changes_digest(self):
        def variant(op_fn):
            model = RTModel("planned", cs_max=9)
            model.register("R1", init=2)
            model.register("R2", init=3)
            model.bus("B1")
            model.module(ModuleSpec(
                "ALU",
                operations={"ADD": Operation("ADD", 2, op_fn)},
                latency=0,
            ))
            model.add_transfer("(R1,B1,R2,B1,3,ALU,4,B1,R1)")
            return model

        add = variant(lambda a, b: a + b)
        sub = variant(lambda a, b: a - b)
        assert model_digest(add) != model_digest(sub)

    def test_operation_default_changes_digest(self):
        def variant(shift):
            model = RTModel("planned", cs_max=9)
            model.register("R1", init=2)
            model.register("R2", init=3)
            model.bus("B1")
            model.module(ModuleSpec(
                "ALU",
                operations={
                    "SH": Operation(
                        "SH", 2, lambda a, b, _k=shift: a + (b >> _k)
                    ),
                },
                latency=0,
            ))
            model.add_transfer("(R1,B1,R2,B1,3,ALU,4,B1,R1)")
            return model

        assert model_digest(variant(1)) != model_digest(variant(2))

    def test_allocation_changes_digest(self):
        """Rebinding one operand to a different bus is a different
        chip, even though registers and modules are unchanged."""
        def variant(bus):
            model = RTModel("planned", cs_max=9)
            model.register("R1", init=2)
            model.register("R2", init=3)
            model.bus("B1")
            model.bus("B2")
            model.module(ModuleSpec("ADD", latency=1))
            model.add_transfer(f"(R1,B1,R2,{bus},3,ADD,4,B1,R1)")
            return model

        assert model_digest(variant("B1")) != model_digest(variant("B2"))

    def test_schedule_step_changes_digest(self):
        def variant(step):
            model = RTModel("planned", cs_max=9)
            model.register("R1", init=2)
            model.register("R2", init=3)
            model.bus("B1")
            model.bus("B2")
            model.module(ModuleSpec("ADD", latency=1))
            model.add_transfer(f"(R1,B1,R2,B2,{step},ADD,{step + 1},B1,R1)")
            return model

        assert model_digest(variant(3)) != model_digest(variant(4))


class TestResolvePlan:
    def test_explicit_plan_is_used_verbatim(self):
        model = build_model()
        plan = lower(model)
        handle = resolve_plan(model, plan=plan)
        assert handle.plan is plan
        assert handle.source == "given"
        assert handle.build_ms == 0.0

    def test_mismatched_plan_is_rejected(self):
        other = RTModel("other", cs_max=4)
        other.register("R1", init=1)
        other.bus("B1")
        other.module(ModuleSpec("ADD", latency=1))
        other.add_transfer("(R1,B1,R1,B1,1,ADD,2,B1,R1)")
        plan = lower(other)
        with pytest.raises(ModelError, match="different model"):
            resolve_plan(build_model(), plan=plan)

    def test_no_cache_means_off(self):
        handle = resolve_plan(build_model())
        assert handle.source == "off"
        assert handle.plan.matches(build_model())
        assert handle.build_ms > 0.0


class TestBackendsShareThePlan:
    def test_all_backends_accept_a_pre_lowered_plan(self):
        model = build_model()
        plan = lower(model)
        baseline = model.elaborate(backend="compiled").run()
        for backend in ("compiled", "sharded"):
            sim = model.elaborate(backend=backend, plan=plan).run()
            assert sim.registers == baseline.registers
            assert sim.plan_cache_state == "given"
            assert sim.model_plan is plan
        event = model.elaborate().run()
        assert event.registers == baseline.registers

    def test_run_metrics_reports_plan_rows(self):
        from repro.engine import run_metrics

        model = build_model()
        sim = model.elaborate(backend="compiled").run()
        row = run_metrics(sim)
        assert row["plan_cache"] == "off"
        assert row["plan_build_ms"] >= 0.0

    def test_event_backend_rejects_plan_kwargs(self):
        model = build_model()
        with pytest.raises(ModelError, match="compiled backends only"):
            model.elaborate(backend="event", plan=lower(model))


class TestLintGuard:
    def test_no_module_outside_plan_defines_compile_module(self):
        """The three duplicated lowering paths are gone for good: the
        module compilers live in repro.engine.plan and nowhere else."""
        offenders = []
        for path in sorted((REPO_SRC / "repro").rglob("*.py")):
            if path.name == "plan.py" and path.parent.name == "engine":
                continue
            text = path.read_text(encoding="utf-8")
            for needle in ("def _compile_module", "def compile_module"):
                if needle in text:
                    offenders.append(f"{path}: {needle}")
        assert not offenders, (
            "duplicated lowering helpers outside repro.engine.plan:\n"
            + "\n".join(offenders)
        )
