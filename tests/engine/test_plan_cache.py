"""Tests for the on-disk content-addressed plan cache.

The cache is an accelerator, never a correctness hazard: a hit must
be byte-equivalent to lowering from scratch, and any damaged entry --
truncated write, stale format version, wrong payload -- is discarded
with a warning and silently re-lowered, never crashing a run.
"""

import pickle
import warnings

import pytest

from repro.core import ModuleSpec, RTModel
from repro.engine.plan import (
    PLAN_VERSION,
    PlanCache,
    as_plan_cache,
    default_cache_root,
    lower,
    model_digest,
    resolve_plan,
)


def build_model():
    model = RTModel("cached", cs_max=7)
    model.register("R1", init=2)
    model.register("R2", init=3)
    model.bus("B1")
    model.bus("B2")
    model.module(ModuleSpec("ADD", latency=1))
    model.add_transfer("(R1,B1,R2,B2,5,ADD,6,B1,R1)")
    return model


@pytest.fixture
def cache(tmp_path):
    return PlanCache(tmp_path / "plans")


class TestPlanCache:
    def test_put_then_get_roundtrips(self, cache):
        model = build_model()
        plan = lower(model, digest=model_digest(model))
        assert cache.put(plan)
        got = cache.get(plan.digest)
        assert got is not None
        assert pickle.dumps(got) == pickle.dumps(plan)

    def test_get_missing_is_none(self, cache):
        assert cache.get("0" * 64) is None

    def test_entries_are_version_namespaced(self, cache):
        model = build_model()
        plan = lower(model, digest=model_digest(model))
        cache.put(plan)
        path = cache.path_for(plan.digest)
        assert f"v{PLAN_VERSION}" in str(path)
        assert path.exists()

    def test_miss_then_hit_through_resolve(self, cache):
        first = resolve_plan(build_model(), plan_cache=cache)
        assert first.source == "miss"
        second = resolve_plan(build_model(), plan_cache=cache)
        assert second.source == "hit"
        assert second.plan.digest == first.plan.digest
        assert pickle.dumps(second.plan) == pickle.dumps(first.plan)

    def test_backend_elaboration_hits_the_cache(self, cache):
        model = build_model()
        miss = model.elaborate(backend="compiled", plan_cache=cache).run()
        assert miss.plan_cache_state == "miss"
        hit = model.elaborate(backend="compiled", plan_cache=cache).run()
        assert hit.plan_cache_state == "hit"
        assert hit.registers == miss.registers
        from repro.engine import run_metrics

        row = run_metrics(hit)
        assert row["plan_cache"] == "hit"
        assert row["plan_build_ms"] >= 0.0


class TestLeniency:
    """Damaged cache entries degrade to a re-lower, never a crash."""

    def _seed_entry(self, cache):
        model = build_model()
        plan = lower(model, digest=model_digest(model))
        assert cache.put(plan)
        return model, plan, cache.path_for(plan.digest)

    def test_truncated_entry_warns_and_relowers(self, cache):
        model, plan, path = self._seed_entry(cache)
        path.write_bytes(path.read_bytes()[:20])
        with pytest.warns(RuntimeWarning, match="discard"):
            handle = resolve_plan(model, plan_cache=cache)
        assert handle.source == "miss"
        assert handle.plan.digest == plan.digest
        # The bad entry was replaced; the next resolve hits cleanly.
        assert resolve_plan(model, plan_cache=cache).source == "hit"

    def test_garbage_entry_warns_and_relowers(self, cache):
        model, plan, path = self._seed_entry(cache)
        path.write_bytes(b"not a pickle at all")
        with pytest.warns(RuntimeWarning, match="discard"):
            handle = resolve_plan(model, plan_cache=cache)
        assert handle.source == "miss"
        assert handle.plan.digest == plan.digest

    def test_stale_version_header_warns_and_relowers(self, cache):
        model, plan, path = self._seed_entry(cache)
        stale = pickle.dumps(("repro-plan", PLAN_VERSION + 1, plan))
        path.write_bytes(stale)
        with pytest.warns(RuntimeWarning, match="discard"):
            handle = resolve_plan(model, plan_cache=cache)
        assert handle.source == "miss"

    def test_wrong_payload_type_warns_and_relowers(self, cache):
        model, plan, path = self._seed_entry(cache)
        path.write_bytes(pickle.dumps(["wrong", "shape"]))
        with pytest.warns(RuntimeWarning, match="discard"):
            handle = resolve_plan(model, plan_cache=cache)
        assert handle.source == "miss"

    def test_damaged_entry_never_crashes_a_full_run(self, cache):
        model, _plan, path = self._seed_entry(cache)
        path.write_bytes(b"\x80")
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", RuntimeWarning)
            sim = model.elaborate(backend="compiled", plan_cache=cache).run()
        assert sim.registers["R1"] == 5


class TestCacheArg:
    def test_none_and_false_mean_off(self):
        assert as_plan_cache(None) is None
        assert as_plan_cache(False) is None

    def test_true_uses_default_root(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_PLAN_CACHE", str(tmp_path / "env-cache"))
        assert default_cache_root() == tmp_path / "env-cache"
        cache = as_plan_cache(True)
        assert cache is not None
        assert str(tmp_path / "env-cache") in str(cache.path_for("ab" * 32))

    def test_path_builds_a_cache(self, tmp_path):
        cache = as_plan_cache(tmp_path / "here")
        assert cache is not None
        assert str(tmp_path / "here") in str(cache.path_for("ab" * 32))

    def test_cache_instance_passes_through(self, tmp_path):
        cache = PlanCache(tmp_path)
        assert as_plan_cache(cache) is cache
