"""The shard planner: clusters, determinism, overrides, validation."""

import pytest

from repro.core import ModuleSpec, RTModel
from repro.engine import PartitionError, connectivity_clusters, plan_shards


def lanes_model(lanes: int = 4) -> RTModel:
    """Independent adder lanes -- one connectivity cluster per lane."""
    model = RTModel(f"lanes{lanes}", cs_max=2 * lanes + 2)
    for lane in range(lanes):
        model.register(f"A{lane}", init=lane + 1)
        model.register(f"B{lane}", init=lane + 2)
        model.register(f"S{lane}")
        model.bus(f"BA{lane}")
        model.bus(f"BB{lane}")
        model.module(ModuleSpec(f"FU{lane}", latency=1))
        step = 2 * lane + 1
        model.add_transfer(
            f"(A{lane},BA{lane},B{lane},BB{lane},{step},FU{lane},"
            f"{step + 1},BA{lane},S{lane})"
        )
    return model


def fig1_model() -> RTModel:
    model = RTModel("example", cs_max=7)
    model.register("R1", init=2)
    model.register("R2", init=3)
    model.bus("B1")
    model.bus("B2")
    model.module(ModuleSpec("ADD", latency=1))
    model.add_transfer("(R1,B1,R2,B2,5,ADD,6,B1,R1)")
    return model


class TestConnectivityClusters:
    def test_fig1_is_one_cluster(self):
        clusters = connectivity_clusters(fig1_model())
        assert len(clusters) == 1
        assert clusters[0] == {"ADD", "B1", "B2"}

    def test_lanes_are_independent_clusters(self):
        clusters = connectivity_clusters(lanes_model(4))
        assert len(clusters) == 4
        assert {"FU0", "BA0", "BB0"} in clusters

    def test_untouched_resources_form_singletons(self):
        model = fig1_model()
        model.bus("B_SPARE")
        clusters = connectivity_clusters(model)
        assert {"B_SPARE"} in clusters


class TestPlanShards:
    def test_plan_is_deterministic(self):
        model = lanes_model(4)
        first = plan_shards(model, 3)
        second = plan_shards(model, 3)
        assert first == second

    def test_k1_puts_everything_on_shard_zero(self):
        plan = plan_shards(lanes_model(3), 1)
        assert set(plan.bus_shard.values()) == {0}
        assert set(plan.module_shard.values()) == {0}
        assert set(plan.spec_shards) == {0}

    def test_clusters_stay_whole(self):
        model = lanes_model(4)
        plan = plan_shards(model, 2)
        for lane in range(4):
            shard = plan.module_shard[f"FU{lane}"]
            assert plan.bus_shard[f"BA{lane}"] == shard
            assert plan.bus_shard[f"BB{lane}"] == shard

    def test_load_is_balanced_over_uniform_clusters(self):
        plan = plan_shards(lanes_model(4), 2)
        per_shard = [
            sum(1 for s in plan.spec_shards if s == k) for k in range(2)
        ]
        assert per_shard[0] == per_shard[1]

    def test_specs_pin_to_their_resources(self):
        model = lanes_model(2)
        plan = plan_shards(model, 2)
        for spec, shard in zip(model.trans_specs(), plan.spec_shards):
            lane = next(c for c in spec.name if c.isdigit())
            assert shard == plan.module_shard[f"FU{lane}"]

    def test_reads_and_writers_cover_register_traffic(self):
        model = lanes_model(2)
        plan = plan_shards(model, 2)
        shard0 = plan.module_shard["FU0"]
        assert "A0" in plan.reads[shard0]
        assert "B0" in plan.reads[shard0]
        assert plan.writer_shards["S0"] == (shard0,)

    def test_partition_override_pins_cluster(self):
        model = lanes_model(3)
        plan = plan_shards(model, 3, partition={"FU1": 2, "S1": 2})
        assert plan.module_shard["FU1"] == 2
        assert plan.bus_shard["BA1"] == 2  # whole cluster follows
        assert plan.register_shard["S1"] == 2

    def test_partition_split_cluster_rejected(self):
        with pytest.raises(PartitionError, match="splits cluster"):
            plan_shards(fig1_model(), 2, partition={"B1": 0, "B2": 1})

    def test_partition_unknown_name_rejected(self):
        with pytest.raises(PartitionError, match="unknown resources"):
            plan_shards(fig1_model(), 2, partition={"NOPE": 0})

    def test_partition_bad_index_rejected(self):
        with pytest.raises(PartitionError, match="not a shard index"):
            plan_shards(fig1_model(), 2, partition={"B1": 5})

    def test_zero_shards_rejected(self):
        with pytest.raises(PartitionError, match=">= 1"):
            plan_shards(fig1_model(), 0)

    def test_describe_names_every_shard(self):
        text = plan_shards(lanes_model(4), 2).describe()
        assert "2 shards" in text
        assert "shard 0:" in text and "shard 1:" in text
