"""CompiledBatchedRTSimulation: N vectors, one table walk, bit-identical.

The acceptance property of the batched backend: for every batch size
the per-vector results (registers, conflict events with their
``(CS, PH)`` locations and sources, clean flags, watched-subset
traces) must be bit-identical to N sequential ``compiled`` runs.
Plus the batch-only surface: ``clean_mask``, ``register_array``,
``run_metrics`` vectors rows, the numpy guard, and the element-wise
fallback that keeps custom operation libraries (the IKS chip) exact.
"""

import random

import pytest

from repro.core import DISC, ILLEGAL, ModelError, ModuleSpec, RTModel
from repro.core.values_np import (
    combine_batch,
    have_numpy,
    resolve_rt_batch,
)
from repro.core.values import resolve_rt
from repro.core.modules_lib import Operation, _combine, _standard_operations
from repro.engine import CompiledBatchedRTSimulation, run_metrics

np = pytest.importorskip("numpy")


def fig1_model(cs_max=7, width=32):
    model = RTModel("example", cs_max=cs_max, width=width)
    model.register("R1", init=2)
    model.register("R2", init=3)
    model.bus("B1")
    model.bus("B2")
    model.module(ModuleSpec("ADD", latency=1))
    model.add_transfer("(R1,B1,R2,B2,5,ADD,6,B1,R1)")
    return model


def conflict_model():
    """Two sources on B1 in step 2: a deliberate bus conflict."""
    model = RTModel("clash", cs_max=4)
    model.register("R1", init=1)
    model.register("R2", init=2)
    model.register("R3")
    model.bus("B1")
    model.bus("B2")
    model.module(ModuleSpec("ADD", latency=1))
    model.add_transfer("(R1,B1,R2,B2,2,ADD,3,B1,R3)")
    model.add_transfer("(R2,B1,R1,B2,2,ADD,3,B2,R3)")
    return model


def busy_model():
    """A non-pipelined 2-step unit hit again while busy."""
    model = RTModel("busy", cs_max=6)
    model.register("R1", init=5)
    model.register("R2", init=9)
    model.register("R3")
    model.bus("B1")
    model.bus("B2")
    model.module(ModuleSpec("MUL", latency=2, pipelined=False))
    model.add_transfer("(R1,B1,R2,B2,1,MUL,3,B1,R3)")
    model.add_transfer("(R2,B1,R1,B2,2,MUL,4,B2,R3)")
    return model


def conflict_signature(events):
    return [(e.signal, e.at, e.sources) for e in events]


def random_vectors(model, n, seed, disc_chance=0.25):
    rng = random.Random(seed)
    vectors = []
    for _ in range(n):
        vector = {}
        for reg in model.registers:
            if rng.random() < disc_chance:
                vector[reg] = DISC
            else:
                vector[reg] = rng.randrange(0, 1 << model.width)
        vectors.append(vector)
    return vectors


class TestDifferentialVsSequential:
    """The headline property: batched == N sequential compiled runs."""

    @pytest.mark.parametrize("n", [1, 7, 64])
    @pytest.mark.parametrize(
        "builder", [fig1_model, conflict_model, busy_model]
    )
    def test_bit_identical_for_all_batch_sizes(self, builder, n):
        model = builder()
        vectors = random_vectors(model, n, seed=n * 101)
        watch = [f"{next(iter(model.registers))}_out"]
        batched = model.elaborate(
            register_values=vectors, watch=watch,
            backend="compiled-batched",
        ).run()
        assert batched.batch_size == n
        for i, vector in enumerate(vectors):
            compiled = model.elaborate(
                register_values=vector, watch=watch, backend="compiled"
            ).run()
            assert batched.registers[i] == compiled.registers
            assert conflict_signature(
                batched.conflicts[i]
            ) == conflict_signature(compiled.conflicts)
            assert bool(batched.clean_mask[i]) == compiled.clean
            assert batched.tracers[i].samples == compiled.tracer.samples

    def test_pinned_conflicting_vector(self):
        # The structural collision materializes only for lanes whose
        # source registers carry data: lane 0 is pinned to the
        # conflicting assignment, lane 1 disconnects every source, so
        # the double-driven signals all resolve to DISC and stay legal.
        model = conflict_model()
        vectors = [{"R1": 1, "R2": 2}, {"R1": DISC, "R2": DISC}]
        batched = model.elaborate(
            register_values=vectors, backend="compiled-batched"
        ).run()
        assert not batched.clean_mask[0]
        assert batched.clean_mask[1]
        assert batched.conflicts[0] and not batched.conflicts[1]
        event = batched.conflicts[0][0]
        assert event.signal == "B1" and event.at.step == 2


class TestBatchSurface:
    def test_register_array_and_getitem(self):
        model = fig1_model()
        vectors = [{"R1": a, "R2": b} for a, b in [(1, 2), (10, 20)]]
        sim = model.elaborate(
            register_values=vectors, backend="compiled-batched"
        ).run()
        assert sim.register_array("R1").tolist() == [3, 30]
        assert sim["R2"].tolist() == [2, 20]
        with pytest.raises(KeyError):
            sim.register_array("R9")

    def test_run_metrics_reports_vectors_and_summed_conflicts(self):
        model = conflict_model()
        sim = model.elaborate(
            register_values=[{}, {}, {"R1": DISC}],
            backend="compiled-batched",
        ).run()
        row = run_metrics(sim, wall=0.5)
        assert row["vectors"] == 3
        assert row["conflicts"] == sum(len(c) for c in sim.conflicts)
        assert row["conflicts"] >= 2  # default lanes both conflict

    def test_scalar_aliases_only_at_n1(self):
        model = fig1_model()
        one = model.elaborate(
            trace=True, backend="compiled-batched"
        ).run()
        assert one.monitor is not None and one.tracer is not None
        many = model.elaborate(
            register_values=[{}, {}], trace=True,
            backend="compiled-batched",
        ).run()
        assert many.monitor is None and many.tracer is None
        assert len(many.tracers) == 2

    def test_empty_batch_rejected(self):
        with pytest.raises(ModelError):
            CompiledBatchedRTSimulation(fig1_model(), register_values=[])

    def test_unknown_override_rejected(self):
        with pytest.raises(ModelError):
            CompiledBatchedRTSimulation(
                fig1_model(), register_values=[{"R9": 1}]
            )

    def test_wide_models_rejected(self):
        with pytest.raises(ModelError):
            CompiledBatchedRTSimulation(fig1_model(width=64))

    def test_run_steps_matches_compiled(self):
        model = fig1_model()
        for steps in (1, 3, 6, 8):
            ba = model.elaborate(backend="compiled-batched")
            ba.run_steps(steps)
            co = model.elaborate(backend="compiled")
            co.run_steps(steps)
            assert ba.registers[0] == co.registers
            assert ba.stats.delta_cycles == co.stats.delta_cycles


class TestCustomOperationFallback:
    def test_custom_op_reusing_standard_name_stays_exact(self):
        # The IKS hazard: a custom Operation named MULT whose body is
        # *not* a*b must not silently vectorize as the standard MULT.
        custom = Operation("MULT", 2, lambda a, b: (a * b) >> 3)
        assert custom.vector_key is None
        model = RTModel("custom", cs_max=4, width=16)
        model.register("R1", init=40)
        model.register("R2", init=10)
        model.bus("B1")
        model.bus("B2")
        model.module(
            ModuleSpec("MUL", operations={"MULT": custom}, latency=1)
        )
        model.add_transfer("(R1,B1,R2,B2,1,MUL,2,B1,R1)")
        ba = model.elaborate(backend="compiled-batched").run()
        co = model.elaborate(backend="compiled").run()
        assert ba.registers[0] == co.registers
        assert ba.registers[0]["R1"] == (40 * 10) >> 3

    def test_iks_chip_batch_matches_compiled(self):
        # Whole-chip check: CORDIC/fixed-point custom operations run
        # through the element-wise fallback, bit-identical.
        from repro.iks.flow import build_ik_model

        model, _ = build_ik_model(6.0, 4.0)
        ba = model.elaborate(
            register_values=[{}, {}], backend="compiled-batched"
        ).run()
        co = model.elaborate(backend="compiled").run()
        for i in range(2):
            assert ba.registers[i] == co.registers
            assert bool(ba.clean_mask[i]) == co.clean


class TestVectorizedValuePlane:
    """values_np primitives vs their scalar twins, exhaustively-ish."""

    def test_resolve_rt_batch_matches_scalar(self):
        rng = random.Random(5)
        pool = [DISC, ILLEGAL, 0, 1, 7, 255]
        for drivers in (1, 2, 3, 4):
            rows = [
                [rng.choice(pool) for _ in range(drivers)]
                for _ in range(200)
            ]
            got = resolve_rt_batch(np.array(rows, dtype=np.int64))
            want = [resolve_rt(row) for row in rows]
            assert got.tolist() == want

    def test_resolve_rt_batch_empty_driver_axis(self):
        got = resolve_rt_batch(np.empty((4, 0), dtype=np.int64))
        assert got.tolist() == [DISC] * 4

    @pytest.mark.parametrize("width", [8, 16, 32, 63])
    def test_combine_batch_matches_scalar_combine(self, width):
        rng = random.Random(width)
        mask = (1 << width) - 1
        pool = [DISC, ILLEGAL, 0, 1, 2, 3, 5, width, 2 * width, mask,
                mask - 1, mask >> 1, (mask >> 1) + 1]
        for op in _standard_operations(width).values():
            rows = [
                [rng.choice(pool) for _ in range(op.arity)]
                for _ in range(300)
            ]
            cols = [
                np.array([row[j] for row in rows], dtype=np.int64)
                for j in range(op.arity)
            ]
            got = combine_batch(op, cols, width)
            want = [_combine(op, row, width) for row in rows]
            assert got.tolist() == want, op.name

    def test_have_numpy_reports_presence(self):
        assert have_numpy()

    def test_missing_numpy_error_is_actionable(self, monkeypatch):
        import repro.core.values_np as values_np

        monkeypatch.setattr(values_np, "_np", None)
        with pytest.raises(values_np.BatchSupportError) as err:
            values_np.require_numpy("the compiled-batched backend")
        message = str(err.value)
        assert "repro[fast]" in message
        assert "compiled" in message
