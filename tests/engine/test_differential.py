"""Differential property: all three RT realizations agree exactly.

The model layer has three ways to execute the same schedule -- the
event kernel with the fused transfer engine, the event kernel with one
process per TRANS instance, and the compiled control-step backend.
On hypothesis-generated small models (deliberately *allowed* to
contain bus conflicts, unlike the conflict-free corpus of
``tests/test_cross_cutting_properties.py``) the three must produce
identical register results, identical conflict events at identical
(CS, PH) locations, identical phase traces and the same delta-cycle
budget.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import RTModel, RegisterTransfer

UNIT_MENU = [
    ("ADD", ["ADD"], 1),
    ("ALU", ["ADD", "SUB"], 0),
    ("MUL", ["MULT"], 2),
]


@st.composite
def colliding_models(draw) -> RTModel:
    """Small random models over a deliberately tight bus pool.

    With only two buses and free step choice, generated transfers
    regularly fight over a bus in the same phase -- exactly the
    conflict scenarios the diagnostics layer exists for.  All three
    realizations must tell the same story about them.
    """
    n_regs = draw(st.integers(min_value=2, max_value=4))
    n_ops = draw(st.integers(min_value=1, max_value=4))
    cs_max = draw(st.integers(min_value=4, max_value=8))
    model = RTModel(f"diff{n_regs}x{n_ops}", cs_max=cs_max, width=16)
    for r in range(n_regs):
        init = draw(st.integers(min_value=0, max_value=99))
        model.register(f"G{r}", init=init)
    model.bus("BA")
    model.bus("BB")
    units = []
    for name, ops, latency in UNIT_MENU:
        if draw(st.booleans()):
            model.module(name, ops=ops, latency=latency)
            units.append((name, ops, latency))
    if not units:
        name, ops, latency = UNIT_MENU[0]
        model.module(name, ops=ops, latency=latency)
        units.append((name, ops, latency))
    reg_names = [f"G{r}" for r in range(n_regs)]
    for _ in range(n_ops):
        name, ops, latency = draw(st.sampled_from(units))
        step = draw(st.integers(min_value=1, max_value=cs_max - latency))
        bus1 = draw(st.sampled_from(["BA", "BB"]))
        bus2 = draw(st.sampled_from(["BA", "BB"]))
        model.add_transfer(
            RegisterTransfer(
                src1=draw(st.sampled_from(reg_names)),
                bus1=bus1,
                src2=draw(st.sampled_from(reg_names)),
                bus2=bus2,
                read_step=step,
                module=name,
                write_step=step + latency,
                write_bus=draw(st.sampled_from(["BA", "BB"])),
                dest=draw(st.sampled_from(reg_names)),
                op=draw(st.sampled_from(ops)) if len(ops) > 1 else None,
            )
        )
    return model


def observe(sim):
    return {
        "registers": sim.registers,
        "conflicts": [
            (e.signal, e.at, e.sources) for e in sim.conflicts
        ],
        "clean": sim.clean,
        "deltas": sim.stats.delta_cycles,
        "trace": sim.tracer.samples,
    }


SETTINGS = settings(max_examples=40, deadline=None)


@SETTINGS
@given(colliding_models())
def test_three_realizations_agree(model):
    engine = observe(model.elaborate(trace=True).run())
    literal = observe(
        model.elaborate(trace=True, transfer_engine=False).run()
    )
    compiled = observe(
        model.elaborate(trace=True, backend="compiled").run()
    )
    assert literal == engine
    assert compiled == engine


@SETTINGS
@given(
    colliding_models(),
    st.integers(min_value=1, max_value=9),
)
def test_partial_runs_agree(model, steps):
    ev = model.elaborate()
    ev.run_steps(steps)
    co = model.elaborate(backend="compiled")
    co.run_steps(steps)
    assert co.registers == ev.registers
    assert co.stats.delta_cycles == ev.stats.delta_cycles
    assert co.stats.transactions == ev.stats.transactions
