"""Differential property: all RT realizations agree exactly.

The model layer has four ways to execute the same schedule -- the
event kernel with the fused transfer engine, the event kernel with one
process per TRANS instance, the compiled control-step backend, and the
compiled-batched backend sweeping N vectors per table walk.
On hypothesis-generated small models (deliberately *allowed* to
contain bus conflicts, unlike the conflict-free corpus of
``tests/test_cross_cutting_properties.py``) all must produce
identical register results, identical conflict events at identical
(CS, PH) locations, identical phase traces and the same delta-cycle
budget -- per vector, for the batched case.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import DISC, RTModel, RegisterTransfer
from repro.core.values_np import have_numpy
from repro.observe import Probe

needs_numpy = pytest.mark.skipif(
    not have_numpy(),
    reason="the compiled-batched backend needs the repro[fast] extra",
)

UNIT_MENU = [
    ("ADD", ["ADD"], 1),
    ("ALU", ["ADD", "SUB"], 0),
    ("MUL", ["MULT"], 2),
]


@st.composite
def colliding_models(draw) -> RTModel:
    """Small random models over a deliberately tight bus pool.

    With only two buses and free step choice, generated transfers
    regularly fight over a bus in the same phase -- exactly the
    conflict scenarios the diagnostics layer exists for.  All three
    realizations must tell the same story about them.
    """
    n_regs = draw(st.integers(min_value=2, max_value=4))
    n_ops = draw(st.integers(min_value=1, max_value=4))
    cs_max = draw(st.integers(min_value=4, max_value=8))
    model = RTModel(f"diff{n_regs}x{n_ops}", cs_max=cs_max, width=16)
    for r in range(n_regs):
        init = draw(st.integers(min_value=0, max_value=99))
        model.register(f"G{r}", init=init)
    model.bus("BA")
    model.bus("BB")
    units = []
    for name, ops, latency in UNIT_MENU:
        if draw(st.booleans()):
            model.module(name, ops=ops, latency=latency)
            units.append((name, ops, latency))
    if not units:
        name, ops, latency = UNIT_MENU[0]
        model.module(name, ops=ops, latency=latency)
        units.append((name, ops, latency))
    reg_names = [f"G{r}" for r in range(n_regs)]
    for _ in range(n_ops):
        name, ops, latency = draw(st.sampled_from(units))
        step = draw(st.integers(min_value=1, max_value=cs_max - latency))
        bus1 = draw(st.sampled_from(["BA", "BB"]))
        bus2 = draw(st.sampled_from(["BA", "BB"]))
        model.add_transfer(
            RegisterTransfer(
                src1=draw(st.sampled_from(reg_names)),
                bus1=bus1,
                src2=draw(st.sampled_from(reg_names)),
                bus2=bus2,
                read_step=step,
                module=name,
                write_step=step + latency,
                write_bus=draw(st.sampled_from(["BA", "BB"])),
                dest=draw(st.sampled_from(reg_names)),
                op=draw(st.sampled_from(ops)) if len(ops) > 1 else None,
            )
        )
    return model


def observe(sim):
    return {
        "registers": sim.registers,
        "conflicts": [
            (e.signal, e.at, e.sources) for e in sim.conflicts
        ],
        "clean": sim.clean,
        "deltas": sim.stats.delta_cycles,
        "trace": sim.tracer.samples,
    }


SETTINGS = settings(max_examples=40, deadline=None)


@SETTINGS
@given(colliding_models())
def test_three_realizations_agree(model):
    engine = observe(model.elaborate(trace=True).run())
    literal = observe(
        model.elaborate(trace=True, transfer_engine=False).run()
    )
    compiled = observe(
        model.elaborate(trace=True, backend="compiled").run()
    )
    assert literal == engine
    assert compiled == engine


@SETTINGS
@given(
    colliding_models(),
    st.integers(min_value=1, max_value=9),
)
def test_partial_runs_agree(model, steps):
    ev = model.elaborate()
    ev.run_steps(steps)
    co = model.elaborate(backend="compiled")
    co.run_steps(steps)
    assert co.registers == ev.registers
    assert co.stats.delta_cycles == ev.stats.delta_cycles
    assert co.stats.transactions == ev.stats.transactions


def observe_batched_lane(sim, i):
    return {
        "registers": sim.registers[i],
        "conflicts": [
            (e.signal, e.at, e.sources) for e in sim.conflicts[i]
        ],
        "clean": bool(sim.clean_mask[i]),
        "deltas": sim.stats.delta_cycles,
        "trace": sim.tracers[i].samples,
    }


@needs_numpy
@SETTINGS
@given(colliding_models())
def test_batched_n1_matches_every_realization(model):
    engine = observe(model.elaborate(trace=True).run())
    batched = model.elaborate(
        trace=True, backend="compiled-batched"
    ).run()
    assert observe_batched_lane(batched, 0) == engine
    # Full counter parity at N=1 (the batched accounting must reduce
    # exactly to the scalar compiled profile).
    compiled = model.elaborate(trace=True, backend="compiled").run()
    for counter in ("cycles", "delta_cycles", "events",
                    "transactions", "process_resumes"):
        assert getattr(batched.stats, counter) == getattr(
            compiled.stats, counter
        )


class RecordingProbe(Probe):
    """Flat ordered record of every callback, for order parity."""

    def __init__(self):
        self.events = []

    def on_step(self, step):
        self.events.append(("step", step))

    def on_phase(self, at):
        self.events.append(("phase", at))

    def on_bus_drive(self, at, bus, value):
        self.events.append(("bus", at, bus, value))

    def on_register_latch(self, at, register, value):
        self.events.append(("latch", at, register, value))

    def on_conflict(self, event):
        self.events.append(("conflict", event.signal, event.at, event.sources))


@needs_numpy
@SETTINGS
@given(colliding_models())
def test_batched_n1_probe_event_order_matches(model):
    on_event = RecordingProbe()
    model.elaborate(observe=on_event).run()
    on_batched = RecordingProbe()
    model.elaborate(observe=on_batched, backend="compiled-batched").run()
    assert on_batched.events == on_event.events


@st.composite
def override_batches(draw, model):
    """Per-vector register overrides for one generated model.

    Vector 0 is pinned to all-data values (every register carries a
    regular natural, so any structural two-driver collision actually
    materializes as a conflict for it); the rest mix data with DISC
    overrides, so lanes disagree about which conflicts exist.
    """
    regs = sorted(model.registers)
    n = draw(st.integers(min_value=2, max_value=6))
    vectors = [
        {r: draw(st.integers(min_value=0, max_value=999)) for r in regs}
    ]
    for _ in range(n - 1):
        vector = {}
        for r in regs:
            if draw(st.booleans()):
                vector[r] = draw(
                    st.sampled_from([DISC, 0, 1, 7, 65535, 70000])
                )
        vectors.append(vector)
    return vectors


@needs_numpy
@SETTINGS
@given(colliding_models().flatmap(
    lambda model: st.tuples(st.just(model), override_batches(model))
))
def test_batched_lanes_match_sequential_compiled(model_and_batch):
    model, vectors = model_and_batch
    batched = model.elaborate(
        register_values=vectors, trace=True, backend="compiled-batched"
    ).run()
    for i, vector in enumerate(vectors):
        compiled = model.elaborate(
            register_values=vector, trace=True, backend="compiled"
        ).run()
        assert observe_batched_lane(batched, i) == observe(compiled)
