"""Tests for the generated ``compiled-py`` backend (:mod:`repro.engine.codegen`).

The generated executor's contract is the same differential discipline
that pinned the batched and sharded backends: bit-identical registers,
traces, conflicts, all five stats counters and canonical probe order
vs ``compiled``, on the paper's examples and under hypothesis, with
the plain-exec path as the always-available baseline (numba is an
optional accelerator).  The artifact cache is an accelerator, never a
correctness hazard: warm hits must be byte-identical reuses, and any
damaged artifact is discarded with exactly one warning and
regenerated.
"""

import hashlib
import subprocess
import sys
import warnings
from pathlib import Path

import pytest
from hypothesis import HealthCheck, given, settings

from repro.core import ModuleSpec, RTModel
from repro.core.modules_lib import standard_operation
from repro.core.transfer import RegisterTransfer
from repro.core.values_np import have_numpy
from repro.engine import run_metrics
from repro.engine.codegen import (
    CODEGEN_VERSION,
    CodegenBatchedRTSimulation,
    CodegenCache,
    CodegenRTSimulation,
    gc_caches,
    generate_source,
    model_op_arities,
    resolve_codegen,
)
from repro.engine.batched import CompiledBatchedRTSimulation
from repro.engine.compiled import CompiledRTSimulation
from repro.engine.plan import PlanCache, resolve_plan
from repro.kernel.errors import DeltaCycleLimitError

from .test_differential import colliding_models, observe

REPO_SRC = Path(__file__).resolve().parents[2] / "src"

needs_numpy = pytest.mark.skipif(
    not have_numpy(),
    reason="the batched value plane needs the repro[fast] extra",
)

# One canonical model recipe, shared verbatim with the subprocess
# warm-artifact test: same source text, same model, same digest.
BUILD_MODEL_SRC = """
from repro.core import ModuleSpec, RTModel


def build_model():
    model = RTModel("example", cs_max=7)
    model.register("R1", init=2)
    model.register("R2", init=3)
    model.bus("B1")
    model.bus("B2")
    model.module(ModuleSpec("ADD", latency=1))
    model.add_transfer("(R1,B1,R2,B2,5,ADD,6,B1,R1)")
    return model
"""
exec(BUILD_MODEL_SRC)


def conflict_model(lanes=3, collide_steps=(1, 5)):
    """Adder lanes plus deliberate same-bus collisions from X."""
    model = RTModel("clash", cs_max=12)
    model.register("X", init=99)
    for lane in range(lanes):
        model.register(f"A{lane}", init=lane + 1)
        model.register(f"B{lane}", init=lane + 2)
        model.register(f"S{lane}")
        model.bus(f"BA{lane}")
        model.bus(f"BB{lane}")
        model.module(ModuleSpec(f"FU{lane}", latency=1))
        step = 2 * lane + 1
        model.add_transfer(
            f"(A{lane},BA{lane},B{lane},BB{lane},{step},FU{lane},"
            f"{step + 1},BA{lane},S{lane})"
        )
        for step in collide_steps:
            model.add_transfer(
                f"(X,BA{lane},-,-,{step},FU{lane},-,-,-)"
            )
    return model


def alu_model(latency, pipelined, sticky, multi_op):
    """One (latency, pipelined, sticky, op-count) module-shape case."""
    model = RTModel("alu", cs_max=8, width=8)
    model.register("R1", init=200)
    model.register("R2", init=77)
    model.register("S1")
    model.register("S2")
    model.bus("B1")
    model.bus("B2")
    names = ("ADD", "SUB", "AND", "OR") if multi_op else ("ADD",)
    model.module(ModuleSpec(
        "ALU",
        operations={n: standard_operation(n) for n in names},
        default_op="ADD",
        latency=latency,
        pipelined=pipelined,
        width=8,
        sticky_illegal=sticky,
    ))
    model.add_transfer(RegisterTransfer(
        src1="R1", bus1="B1", src2="R2", bus2="B2", read_step=1,
        module="ALU", write_step=1 + latency, write_bus="B1", dest="S1",
        op="SUB" if multi_op else None,
    ))
    model.add_transfer(RegisterTransfer(
        src1="R2", bus1="B1", src2="R1", bus2="B2", read_step=4,
        module="ALU", write_step=4 + latency, write_bus="B2", dest="S2",
        op="OR" if multi_op else None,
    ))
    # A read with no write-back: exercises the busy/poison paths.
    model.add_transfer(RegisterTransfer(
        src1="R1", bus1="B1", src2="R2", bus2="B1", read_step=6,
        module="ALU", write_step=None, write_bus=None, dest=None,
    ))
    return model


class RecordingProbe:
    """Flat canonical-order event log for probe-parity checks."""

    def __init__(self):
        self.log = []

    def on_step(self, step):
        self.log.append(("step", step))

    def on_phase(self, at):
        self.log.append(("phase", at))

    def on_bus_drive(self, at, bus, value):
        self.log.append(("bus", at, bus, value))

    def on_register_latch(self, at, reg, value):
        self.log.append(("latch", at, reg, value))

    def on_conflict(self, event):
        self.log.append(("conflict", event.signal, event.at, event.sources))

    def on_run_start(self, backend):
        self.log.append(("start",))

    def on_run_end(self, backend, wall):
        self.log.append(("end",))


def assert_bit_identical(model, **kwargs):
    """Full-surface scalar parity: compiled vs compiled-py."""
    probe_a, probe_b = RecordingProbe(), RecordingProbe()
    with warnings.catch_warnings():
        warnings.simplefilter("error")
        ref = CompiledRTSimulation(
            model, trace=True, observe=probe_a, **kwargs
        ).run()
        gen = CodegenRTSimulation(
            model, trace=True, observe=probe_b, **kwargs
        ).run()
    assert gen.codegen_mode in ("exec", "jit")
    assert gen.registers == ref.registers
    assert vars(gen.stats) == vars(ref.stats)
    assert gen.conflicts == ref.conflicts
    assert gen.clean == ref.clean
    assert gen.tracer.samples == ref.tracer.samples
    assert probe_b.log == probe_a.log
    return ref, gen


class TestScalarDifferential:
    def test_fig1_bit_identical(self):
        assert_bit_identical(build_model())

    def test_conflicts_bit_identical(self):
        ref, gen = assert_bit_identical(conflict_model())
        assert gen.conflicts, "the clash model must actually conflict"
        assert not gen.clean

    def test_iks_e6_bit_identical(self):
        from repro.iks.flow import build_ik_model

        assert_bit_identical(build_ik_model(2.5, 1.0)[0])

    @pytest.mark.parametrize("multi_op", [False, True])
    @pytest.mark.parametrize(
        "latency,pipelined,sticky",
        [
            (0, True, True),
            (0, True, False),
            (1, True, True),
            (2, True, False),
            (1, False, True),
            (3, False, False),
        ],
    )
    def test_module_shapes(self, latency, pipelined, sticky, multi_op):
        assert_bit_identical(alu_model(latency, pipelined, sticky, multi_op))

    def test_run_steps_parity(self):
        model = build_model()
        for steps in (1, 3, model.cs_max, model.cs_max + 5):
            ref = CompiledRTSimulation(model).run_steps(steps)
            gen = CodegenRTSimulation(model).run_steps(steps)
            assert gen.codegen_mode == "exec"
            assert gen.registers == ref.registers
            assert vars(gen.stats) == vars(ref.stats)

    @settings(
        max_examples=25, deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(colliding_models())
    def test_hypothesis_colliding_models(self, model):
        ref = observe(CompiledRTSimulation(model, trace=True).run())
        gen = observe(CodegenRTSimulation(model, trace=True).run())
        assert gen == ref


@needs_numpy
class TestBatchedDifferential:
    def vectors(self, model, n):
        regs = sorted(model.registers)
        return [
            {regs[i % len(regs)]: 3 * i + 1} if i else {}
            for i in range(n)
        ]

    @pytest.mark.parametrize("n", [1, 5, 7])
    def test_lanes_bit_identical(self, n):
        model = conflict_model()
        vecs = self.vectors(model, n)
        ref = CompiledBatchedRTSimulation(
            model, register_values=vecs, trace=True
        ).run()
        gen = CodegenBatchedRTSimulation(
            model, register_values=vecs, trace=True
        ).run()
        assert gen.codegen_mode in ("exec", "jit")
        assert gen.registers == ref.registers
        assert vars(gen.stats) == vars(ref.stats)
        assert gen.conflicts == ref.conflicts
        assert list(gen.clean_mask) == list(ref.clean_mask)
        for lane in range(n):
            assert gen.tracers[lane].samples == ref.tracers[lane].samples

    def test_probe_order_matches_scalar_at_n1(self):
        model = build_model()
        probe_scalar, probe_batched = RecordingProbe(), RecordingProbe()
        CompiledRTSimulation(model, observe=probe_scalar).run()
        CodegenBatchedRTSimulation(
            model, register_values=[{}], observe=probe_batched
        ).run()
        assert probe_batched.log == probe_scalar.log


class TestMaxDeltasFallback:
    def test_tight_limit_falls_back_and_raises_identically(self):
        model = build_model()
        gen = CodegenRTSimulation(model, max_deltas=3)
        # The per-cycle limit check is semantic; the generated chunks
        # do not carry it, so the backend stays on the interpreter.
        assert gen.codegen_mode == "interpreter"
        with pytest.raises(DeltaCycleLimitError):
            CompiledRTSimulation(model, max_deltas=3).run()
        with pytest.raises(DeltaCycleLimitError):
            gen.run()

    def test_threshold_limit_keeps_the_generated_path(self):
        model = build_model()
        limit = model.cs_max * 6
        ref = CompiledRTSimulation(model, max_deltas=limit).run()
        gen = CodegenRTSimulation(model, max_deltas=limit).run()
        assert gen.codegen_mode == "exec"
        assert gen.registers == ref.registers


class TestArtifactCache:
    def test_miss_then_hit_through_elaborate(self, tmp_path):
        model = build_model()
        miss = model.elaborate(
            backend="compiled-py", plan_cache=tmp_path
        ).run()
        assert miss.codegen_cache_state == "miss"
        artifact = CodegenCache(tmp_path).path_for(miss.model_plan.digest)
        assert artifact.exists()
        first_bytes = artifact.read_bytes()
        hit = model.elaborate(
            backend="compiled-py", plan_cache=tmp_path
        ).run()
        assert hit.codegen_cache_state == "hit"
        assert hit.registers == miss.registers
        assert artifact.read_bytes() == first_bytes
        row = run_metrics(hit)
        assert row["codegen_cache"] == "hit"
        assert row["codegen_build_ms"] >= 0.0
        assert row["codegen_mode"] in ("exec", "jit")

    def test_non_codegen_backend_has_no_codegen_rows(self):
        sim = build_model().elaborate(backend="compiled").run()
        row = run_metrics(sim)
        assert "codegen_cache" not in row
        assert "codegen_mode" not in row

    def test_warm_artifact_reused_byte_identically_in_subprocess(
        self, tmp_path
    ):
        """A fresh interpreter (fresh hash seed) must hit the warm
        artifact and reuse it byte-for-byte -- the property that makes
        ``codegen/v1`` a real warm-start accelerator."""
        model = build_model()
        sim = model.elaborate(
            backend="compiled-py", plan_cache=tmp_path
        ).run()
        assert sim.codegen_cache_state == "miss"
        artifact = CodegenCache(tmp_path).path_for(sim.model_plan.digest)
        parent_sha = hashlib.sha256(artifact.read_bytes()).hexdigest()
        script = BUILD_MODEL_SRC + f"""
import hashlib
model = build_model()
sim = model.elaborate(
    backend="compiled-py", plan_cache={str(tmp_path)!r}
).run()
print(sim.codegen_cache_state)
print(sim.codegen_mode)
print(sim.registers["R1"])
print(hashlib.sha256(
    open({str(artifact)!r}, "rb").read()
).hexdigest())
"""
        result = subprocess.run(
            [sys.executable, "-c", script],
            capture_output=True, text=True, check=True,
            env={"PYTHONPATH": str(REPO_SRC), "PYTHONHASHSEED": "random"},
        )
        state, mode, r1, sub_sha = result.stdout.split()
        assert state == "hit"
        assert mode in ("exec", "jit")
        assert int(r1) == sim.registers["R1"]
        assert sub_sha == parent_sha

    def _seed_artifact(self, tmp_path):
        model = build_model()
        sim = model.elaborate(
            backend="compiled-py", plan_cache=tmp_path
        ).run()
        cache = CodegenCache(tmp_path)
        return model, cache, cache.path_for(sim.model_plan.digest)

    def test_truncated_artifact_regenerates_with_one_warning(
        self, tmp_path
    ):
        model, cache, artifact = self._seed_artifact(tmp_path)
        artifact.write_text(artifact.read_text()[:40], encoding="utf-8")
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            sim = model.elaborate(
                backend="compiled-py", plan_cache=tmp_path
            ).run()
        relevant = [
            w for w in caught
            if issubclass(w.category, RuntimeWarning)
            and "codegen cache" in str(w.message)
        ]
        assert len(relevant) == 1
        assert sim.codegen_cache_state == "miss"
        assert sim.codegen_mode in ("exec", "jit")
        assert sim.registers["R1"] == 5
        # The entry was replaced; the next elaboration hits cleanly.
        again = model.elaborate(
            backend="compiled-py", plan_cache=tmp_path
        ).run()
        assert again.codegen_cache_state == "hit"

    def test_unparsable_artifact_regenerates_with_one_warning(
        self, tmp_path
    ):
        model, cache, artifact = self._seed_artifact(tmp_path)
        digest = artifact.stem
        # Header-complete (passes the text validation) but broken
        # source: the failure surfaces at compile time instead.
        artifact.write_text(
            f"CODEGEN_VERSION = {CODEGEN_VERSION}\n"
            f'PLAN_DIGEST = "{digest}"\n'
            "def bind(:\n",
            encoding="utf-8",
        )
        cache.code_path_for(digest).unlink()
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            sim = model.elaborate(
                backend="compiled-py", plan_cache=tmp_path
            ).run()
        relevant = [
            w for w in caught
            if issubclass(w.category, RuntimeWarning)
            and "codegen cache" in str(w.message)
        ]
        assert len(relevant) == 1
        assert sim.codegen_cache_state == "miss"
        assert sim.registers["R1"] == 5

    def test_codegen_warning_deduped_per_process(
        self, tmp_path, monkeypatch
    ):
        """A damaged artifact that cannot be removed (read-only cache)
        warns once per process, not once per elaboration."""
        model, cache, artifact = self._seed_artifact(tmp_path)
        plan = resolve_plan(model).plan
        arities = model_op_arities(model, plan)
        artifact.write_text("garbage", encoding="utf-8")
        monkeypatch.setattr(
            Path, "unlink",
            lambda self, missing_ok=False: (_ for _ in ()).throw(
                OSError("read-only")
            ),
        )
        monkeypatch.setattr(
            CodegenCache, "put", lambda self, *a, **k: False
        )
        monkeypatch.setattr(
            CodegenCache, "put_code", lambda self, *a, **k: False
        )
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            first = resolve_codegen(plan, arities, plan_cache=tmp_path)
            second = resolve_codegen(plan, arities, plan_cache=tmp_path)
        assert first.source == "miss" and second.source == "miss"
        relevant = [
            w for w in caught
            if issubclass(w.category, RuntimeWarning)
            and "codegen cache" in str(w.message)
        ]
        assert len(relevant) == 1

    def test_plan_warning_deduped_per_process(self, tmp_path, monkeypatch):
        """Same dedupe contract on the plan cache (the PR-6 noise fix):
        a sticky corrupt entry re-warns never, not per resolve."""
        model = build_model()
        cache = PlanCache(tmp_path)
        handle = resolve_plan(model, plan_cache=cache)
        path = cache.path_for(handle.plan.digest)
        path.write_bytes(b"not a pickle")
        monkeypatch.setattr(
            Path, "unlink",
            lambda self, missing_ok=False: (_ for _ in ()).throw(
                OSError("read-only")
            ),
        )
        monkeypatch.setattr(PlanCache, "put", lambda self, plan: False)
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            first = resolve_plan(model, plan_cache=cache)
            second = resolve_plan(model, plan_cache=cache)
        assert first.source == "miss" and second.source == "miss"
        relevant = [
            w for w in caught
            if issubclass(w.category, RuntimeWarning)
            and "plan cache" in str(w.message)
        ]
        assert len(relevant) == 1


class TestGcCaches:
    def test_gc_prunes_foreign_and_keeps_valid(self, tmp_path):
        model = build_model()
        sim = model.elaborate(
            backend="compiled-py", plan_cache=tmp_path
        ).run()
        assert sim.codegen_cache_state == "miss"
        plans = tmp_path / "plans" / "v1"
        codegen = tmp_path / "codegen" / f"v{CODEGEN_VERSION}"
        fake = "f" * 64
        (plans / "not-a-digest.plan").write_text("junk")
        (plans / f"{fake}.plan").write_bytes(b"truncated")
        (codegen / f"{fake}.py").write_text("garbage")
        (codegen / f"{fake}.pyc").write_bytes(b"orphan sidecar")
        (codegen / f".{fake}.py.tmp-123").write_text("leftover")
        report = gc_caches(tmp_path)
        assert report["plans"]["kept"] == 1
        assert report["plans"]["removed"] == 2
        assert report["codegen"]["kept"] == 2  # the .py and its .pyc
        assert report["codegen"]["removed"] == 3
        assert f"{fake}.py" in report["codegen"]["removed_names"]
        # The valid entries survived: the next elaboration still hits.
        again = model.elaborate(
            backend="compiled-py", plan_cache=tmp_path
        ).run()
        assert again.plan_cache_state == "hit"
        assert again.codegen_cache_state == "hit"

    def test_gc_on_empty_root_reports_zeros(self, tmp_path):
        report = gc_caches(tmp_path / "nothing-here")
        for kind in ("plans", "codegen"):
            assert report[kind] == {
                "scanned": 0, "kept": 0, "removed": 0, "removed_names": [],
            }


class TestMetricsExposition:
    def test_codegen_requests_recorded(self, tmp_path):
        from repro.observe import REGISTRY
        from repro.observe.metrics import parse_prometheus

        REGISTRY.reset()
        model = build_model()
        model.elaborate(backend="compiled-py", plan_cache=tmp_path).run()
        model.elaborate(backend="compiled-py", plan_cache=tmp_path).run()
        model.elaborate(backend="compiled-py").run()
        parsed = parse_prometheus(REGISTRY.to_prometheus())
        sources = {
            s["labels"]["source"]: s["value"]
            for s in parsed["repro_codegen_requests_total"]["samples"]
        }
        assert sources["miss"] == 1.0
        assert sources["hit"] == 1.0
        assert sources["off"] == 1.0
        assert (
            parsed["repro_codegen_build_ms_count"]["samples"][0]["value"]
            == 3.0
        )
        REGISTRY.reset()


class TestGeneratedSource:
    def test_source_is_digest_stamped_and_deterministic(self):
        model = build_model()
        plan = resolve_plan(model).plan
        arities = model_op_arities(model, plan)
        text = generate_source(plan, arities)
        assert f"CODEGEN_VERSION = {CODEGEN_VERSION}" in text
        assert f'PLAN_DIGEST = "{plan.digest}"' in text
        assert text == generate_source(plan, arities)

    def test_no_module_outside_codegen_builds_step_source(self):
        """Generated-source assembly is the codegen module's monopoly:
        nothing else may stitch step-function source text together
        (the markers below appear only in generated artifacts and the
        generator itself)."""
        offenders = []
        needles = (
            "PLAN_DIGEST =",           # artifact header stamp
            "CHUNK_STATS",             # per-chunk accounting constant
            "def bind(",               # generated entry points
            "def bind_batch(",
        )
        for path in sorted((REPO_SRC / "repro").rglob("*.py")):
            if path.name == "codegen.py" and path.parent.name == "engine":
                continue
            text = path.read_text(encoding="utf-8")
            for needle in needles:
                if needle in text:
                    offenders.append(f"{path}: {needle!r}")
        assert not offenders, (
            "step-function source text built outside repro.engine.codegen:\n"
            + "\n".join(offenders)
        )
