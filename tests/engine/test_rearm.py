"""`rearm()`: re-running one elaboration in place must be
bit-identical to a fresh elaboration -- registers, conflicts, stats
and trace samples -- on both scalar backends.  This is the serving
hot path (repro.serve re-arms one cached elaboration per lane)."""

import random

import pytest

from repro.core import ModelError
from repro.core.values import DISC
from repro.observe import Probe
from repro.observe.monitor import monitored_watch_list

from ..observe.conftest import conflict_model, fig1_model, tiny_model

SCALAR_BACKENDS = ("compiled", "compiled-py")


def _snapshot(sim):
    return {
        "registers": dict(sim.registers),
        "clean": sim.clean,
        "conflicts": [
            (e.signal, tuple(e.sources), None if e.at is None else
             (e.at.step, int(e.at.phase)))
            for e in sim.conflicts
        ],
        "cycles": sim.stats.cycles,
        "transactions": sim.stats.transactions,
    }


@pytest.mark.parametrize("backend", SCALAR_BACKENDS)
@pytest.mark.parametrize("build", [fig1_model, tiny_model, conflict_model])
def test_rearm_matches_fresh_elaboration(backend, build):
    model = build()
    rng = random.Random(4242)
    vectors = [
        {name: rng.randrange(0, 1 << model.width) for name in model.registers}
        for _ in range(20)
    ]
    vectors.append({"R1": DISC})  # disconnect override travels too
    sim = model.elaborate(backend=backend)
    for vector in vectors:
        sim.rearm(vector)
        sim.run()
        fresh = model.elaborate(
            register_values=vector, backend=backend
        ).run()
        assert _snapshot(sim) == _snapshot(fresh), vector


@pytest.mark.parametrize("backend", SCALAR_BACKENDS)
def test_rearm_resets_trace(backend):
    model = fig1_model()
    watch = monitored_watch_list(model)
    sim = model.elaborate(backend=backend, watch=watch)
    sim.run()
    first = list(sim.tracer.samples)
    assert first, "watch list produced no samples"
    sim.rearm()
    assert sim.tracer.samples == []
    sim.run()
    assert sim.tracer.samples == first  # same inputs, same trace


@pytest.mark.parametrize("backend", SCALAR_BACKENDS)
def test_rearm_override_wraps_to_width(backend):
    model = fig1_model()
    wrapped = model.elaborate(backend=backend)
    wrapped.rearm({"R1": (1 << model.width) + 3})
    wrapped.run()
    fresh = model.elaborate(register_values={"R1": 3}, backend=backend).run()
    assert wrapped.registers == fresh.registers


def test_rearm_rejects_unknown_register():
    sim = fig1_model().elaborate(backend="compiled")
    with pytest.raises(ModelError, match="unknown register"):
        sim.rearm({"BOGUS": 1})


def test_rearm_rejects_probe():
    sim = fig1_model().elaborate(backend="compiled", observe=Probe())
    with pytest.raises(ModelError, match="probe"):
        sim.rearm()
