"""The engine layer's protocol, registry and metrics surface."""

import pytest

from repro.clocked import elaborate_clocked, translate
from repro.core import ModuleSpec, RTModel
from repro.core.simulator import RTSimulation
from repro.engine import (
    Backend,
    BackendError,
    CompiledRTSimulation,
    backend_names,
    create_backend,
    register_backend,
    run_metrics,
)
from repro.handshake import HandshakeNetwork


def fig1_model(cs_max=7, r1=2, r2=3):
    model = RTModel("example", cs_max=cs_max)
    model.register("R1", init=r1)
    model.register("R2", init=r2)
    model.bus("B1")
    model.bus("B2")
    model.module(ModuleSpec("ADD", latency=1))
    model.add_transfer("(R1,B1,R2,B2,5,ADD,6,B1,R1)")
    return model


class TestRegistry:
    def test_builtin_backends_are_registered(self):
        names = backend_names()
        assert "event" in names
        assert "compiled" in names

    def test_unknown_backend_raises(self):
        with pytest.raises(BackendError, match="unknown backend"):
            create_backend("quantum", fig1_model())

    def test_unknown_backend_through_elaborate(self):
        with pytest.raises(BackendError, match="available"):
            fig1_model().elaborate(backend="quantum")

    def test_create_backend_types(self):
        model = fig1_model()
        assert isinstance(create_backend("event", model), RTSimulation)
        assert isinstance(
            create_backend("compiled", model), CompiledRTSimulation
        )

    def test_custom_backend_registration(self):
        calls = []

        def factory(model, **kwargs):
            calls.append((model.name, kwargs))
            return RTSimulation(model, **kwargs)

        register_backend("custom-test", factory)
        try:
            sim = fig1_model().elaborate(backend="custom-test")
            assert sim.run()["R1"] == 5
            assert calls and calls[0][0] == "example"
        finally:
            from repro.engine.backend import _REGISTRY

            _REGISTRY.pop("custom-test", None)


class TestProtocolConformance:
    """Every execution style satisfies the one Backend surface."""

    def _check(self, backend):
        assert isinstance(backend, Backend)
        result = backend.run()
        assert result is backend
        assert isinstance(backend.registers, dict)
        assert isinstance(backend.conflicts, list)
        assert isinstance(backend.clean, bool)
        assert backend.stats.delta_cycles >= 0

    def test_event_backend(self):
        self._check(fig1_model().elaborate())

    def test_compiled_backend(self):
        self._check(fig1_model().elaborate(backend="compiled"))

    def test_clocked_backend(self):
        self._check(elaborate_clocked(translate(fig1_model())))

    def test_handshake_backend(self):
        net = HandshakeNetwork()
        net.source("a", [3])
        net.source("b", [4])
        net.op("sum", lambda a, b: a + b, "a", "b")
        net.sink("out", "sum")
        sim = net.elaborate()
        self._check(sim)
        assert sim.registers == {"out": 7}


class TestRunMetrics:
    def test_row_shape(self):
        sim = fig1_model().elaborate().run()
        row = run_metrics(sim, wall=0.25)
        assert set(row) == {
            "deltas", "events", "resumes", "transactions", "conflicts",
            "wall",
        }
        assert row["deltas"] == 42
        assert row["conflicts"] == 0
        assert row["wall"] == 0.25

    def test_wall_is_optional(self):
        sim = fig1_model().elaborate(backend="compiled").run()
        assert "wall" not in run_metrics(sim)

    def test_baseline_subtraction(self):
        sim = fig1_model().elaborate()
        snap = sim.stats.snapshot()
        sim.run()
        row = run_metrics(sim, baseline=snap)
        assert row["deltas"] == 42

    def test_rows_comparable_across_backends(self):
        model = fig1_model()
        ev = run_metrics(model.elaborate().run())
        co = run_metrics(model.elaborate(backend="compiled").run())
        assert ev["deltas"] == co["deltas"]
        assert ev["events"] == co["events"]
        assert ev["transactions"] == co["transactions"]
        assert co["resumes"] < ev["resumes"]

    def test_tolerates_trace_false_backends(self):
        # Regression: backends elaborated without tracing leave
        # ``tracer`` as None; the row must simply omit trace_samples.
        for backend in ("event", "compiled"):
            sim = fig1_model().elaborate(backend=backend).run()
            assert sim.tracer is None
            assert "trace_samples" not in run_metrics(sim)

    def test_tolerates_backends_without_trace_attribute(self):
        # The handshake backend has no ``tracer`` attribute at all.
        net = HandshakeNetwork()
        net.source("a", [3])
        net.source("b", [4])
        net.op("sum", lambda a, b: a + b, "a", "b")
        net.sink("out", "sum")
        sim = net.elaborate().run()
        assert not hasattr(sim, "tracer")
        row = run_metrics(sim)
        assert "trace_samples" not in row
        assert row["conflicts"] == 0

    def test_trace_samples_reported_when_traced(self):
        sim = fig1_model().elaborate(trace=True).run()
        row = run_metrics(sim)
        assert row["trace_samples"] == len(sim.tracer.samples) == 42
