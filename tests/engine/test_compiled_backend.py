"""CompiledRTSimulation: bit-identical to the event kernel.

The compiled backend precomputes per-(step, phase) action tables and
executes them as a straight loop; these tests pin its observable
equivalence with the event kernel on fixed models -- registers,
conflict events (including their (CS, PH) locations and sources),
traces, partial runs, and the synthesized delta/event/transaction
accounting that keeps the paper's CS_MAX*6 claims verifiable.
"""

import pytest

from repro.core import DISC, ILLEGAL, ModelError, ModuleSpec, RTModel
from repro.engine import CompiledRTSimulation


def fig1_model(cs_max=7, r1=2, r2=3):
    model = RTModel("example", cs_max=cs_max)
    model.register("R1", init=r1)
    model.register("R2", init=r2)
    model.bus("B1")
    model.bus("B2")
    model.module(ModuleSpec("ADD", latency=1))
    model.add_transfer("(R1,B1,R2,B2,5,ADD,6,B1,R1)")
    return model


def conflict_model():
    """Two sources on B1 in step 2: a deliberate bus conflict."""
    model = RTModel("clash", cs_max=4)
    model.register("R1", init=1)
    model.register("R2", init=2)
    model.register("R3")
    model.bus("B1")
    model.bus("B2")
    model.module(ModuleSpec("ADD", latency=1))
    model.add_transfer("(R1,B1,R2,B2,2,ADD,3,B1,R3)")
    model.add_transfer("(R2,B1,R1,B2,2,ADD,3,B2,R3)")
    return model


def conflict_signature(sim):
    return [(e.signal, e.at, e.sources) for e in sim.conflicts]


class TestRegisterParity:
    def test_fig1(self):
        model = fig1_model()
        ev = model.elaborate().run()
        co = model.elaborate(backend="compiled").run()
        assert co.registers == ev.registers == {"R1": 5, "R2": 3}
        assert co["R1"] == 5

    def test_register_overrides(self):
        model = fig1_model()
        ev = model.elaborate(register_values={"R1": 10, "R2": 20}).run()
        co = model.elaborate(
            register_values={"R1": 10, "R2": 20}, backend="compiled"
        ).run()
        assert co.registers == ev.registers == {"R1": 30, "R2": 20}

    def test_unknown_override_rejected(self):
        with pytest.raises(ModelError):
            CompiledRTSimulation(fig1_model(), register_values={"R9": 1})


class TestStatsParity:
    @pytest.mark.parametrize("builder", [fig1_model, conflict_model])
    def test_full_run_counters(self, builder):
        model = builder()
        ev = model.elaborate().run()
        co = model.elaborate(backend="compiled").run()
        assert co.stats.delta_cycles == ev.stats.delta_cycles
        assert co.stats.cycles == ev.stats.cycles
        assert co.stats.events == ev.stats.events
        assert co.stats.transactions == ev.stats.transactions

    def test_delta_budget_is_cs_max_times_6(self):
        model = fig1_model()
        co = model.elaborate(backend="compiled").run()
        assert co.stats.delta_cycles == model.cs_max * 6

    def test_fused_dispatch_reduces_resumes(self):
        model = fig1_model()
        ev = model.elaborate().run()
        co = model.elaborate(backend="compiled").run()
        assert co.stats.process_resumes * 3 <= ev.stats.process_resumes


class TestConflictParity:
    def test_conflict_events_match_event_kernel(self):
        model = conflict_model()
        ev = model.elaborate().run()
        co = model.elaborate(backend="compiled").run()
        assert conflict_signature(co) == conflict_signature(ev)
        assert not co.clean
        assert conflict_signature(co)  # the clash was actually seen

    def test_conflict_location_is_step_and_phase(self):
        co = conflict_model().elaborate(backend="compiled").run()
        event = co.conflicts[0]
        assert event.signal == "B1"
        assert event.at.step == 2
        assert {owner for owner, _ in event.sources} >= {
            "R1_out_B1_2", "R2_out_B1_2",
        }

    def test_clean_model_stays_clean(self):
        co = fig1_model().elaborate(backend="compiled").run()
        assert co.clean
        assert co.conflicts == []


class TestTraceParity:
    def test_traces_are_identical(self):
        model = fig1_model()
        ev = model.elaborate(trace=True).run()
        co = model.elaborate(trace=True, backend="compiled").run()
        assert ev.tracer.watched_names == co.tracer.watched_names
        assert ev.tracer.samples == co.tracer.samples

    def test_watch_traces_only_the_subset(self):
        # The subset fast path: watch= samples only the named ports.
        model = fig1_model()
        co = model.elaborate(watch=["R1_out", "B1"], backend="compiled").run()
        assert co.tracer is not None
        assert co.tracer.watched_names == ["R1_out", "B1"]
        assert all(
            set(sample.values) == {"R1_out", "B1"}
            for sample in co.tracer.samples
        )

    def test_watched_subset_matches_event_kernel_port_for_port(self):
        # Same sample times, same values -- just restricted columns.
        model = fig1_model()
        co = model.elaborate(watch=["R1_out", "B1"], backend="compiled").run()
        ev = model.elaborate(trace=True).run()
        assert len(co.tracer.samples) == len(ev.tracer.samples)
        for ours, theirs in zip(co.tracer.samples, ev.tracer.samples):
            assert ours.at == theirs.at
            for name in ("R1_out", "B1"):
                assert ours.values[name] == theirs.values[name]

    def test_subset_trace_cuts_memory_on_the_iks_chip(self):
        # The E6 chip: watching two result registers instead of every
        # port shrinks the per-sample payload by the port ratio.
        from repro.iks.flow import build_ik_model
        from repro.iks.microprogram import RESULT_REGISTERS

        watch = [f"{RESULT_REGISTERS['theta1']}_out",
                 f"{RESULT_REGISTERS['theta2']}_out"]
        model, _ = build_ik_model(6.0, 4.0)
        full = model.elaborate(trace=True, backend="compiled").run()
        subset = model.elaborate(watch=watch, backend="compiled").run()
        full_cells = sum(len(s.values) for s in full.tracer.samples)
        subset_cells = sum(len(s.values) for s in subset.tracer.samples)
        assert len(full.tracer.samples) == len(subset.tracer.samples)
        assert subset_cells * 10 < full_cells
        # ...and the retained columns are still bit-identical.
        for ours, theirs in zip(subset.tracer.samples, full.tracer.samples):
            assert all(ours.values[n] == theirs.values[n] for n in watch)

    def test_unknown_watch_rejected(self):
        with pytest.raises(ModelError):
            fig1_model().elaborate(watch=["nope"], backend="compiled")


class TestPartialRuns:
    @pytest.mark.parametrize("steps", [1, 2, 4, 5, 6, 7, 8])
    def test_run_steps_matches_event_kernel(self, steps):
        model = fig1_model()
        ev = model.elaborate()
        ev.run_steps(steps)
        co = model.elaborate(backend="compiled")
        co.run_steps(steps)
        assert co.registers == ev.registers
        assert co.stats.delta_cycles == ev.stats.delta_cycles
        assert co.stats.transactions == ev.stats.transactions

    def test_resume_after_partial_run(self):
        model = fig1_model()
        ev = model.elaborate()
        ev.run_steps(3)
        ev.run()
        co = model.elaborate(backend="compiled")
        co.run_steps(3)
        co.run()
        assert co.registers == ev.registers
        assert co.stats.delta_cycles == ev.stats.delta_cycles


class TestSignalAccess:
    def test_signal_view_reads_current_value(self):
        co = fig1_model().elaborate(backend="compiled")
        assert co.signal("R1_out").value == 2
        assert co.signal("B1").value == DISC
        co.run()
        assert co.signal("R1_out").value == 5

    def test_unknown_signal_rejected(self):
        with pytest.raises(KeyError):
            fig1_model().elaborate(backend="compiled").signal("nope")


class TestIllegalPropagation:
    def test_illegal_register_marks_unclean(self):
        model = conflict_model()
        co = model.elaborate(backend="compiled").run()
        ev = model.elaborate().run()
        assert co.registers == ev.registers
        assert co.registers["R3"] == ILLEGAL
        assert not co.clean
