"""Tests for the static schedule analysis, including agreement with the
dynamic (simulation-based) conflict detection."""

import pytest

from repro.core import (
    ModuleSpec,
    Phase,
    RTModel,
    RegisterTransfer,
    StepPhase,
    analyze,
)


def base_model(cs_max=6):
    m = RTModel("m", cs_max=cs_max)
    for name, init in (("R1", 1), ("R2", 2), ("R3", 3)):
        m.register(name, init=init)
    m.bus("B1")
    m.bus("B2")
    m.module(ModuleSpec("ADD", latency=1))
    return m


class TestCleanSchedules:
    def test_fig1_is_clean(self):
        m = base_model(cs_max=7)
        m.add_transfer("(R1,B1,R2,B2,5,ADD,6,B1,R1)")
        report = analyze(m)
        assert report.clean

    def test_str_of_clean_report(self):
        m = base_model(cs_max=2)
        m.add_transfer("(R1,B1,R2,B2,1,ADD,2,B1,R1)")
        assert "no conflicts predicted" in str(analyze(m))


class TestSinkConflicts:
    def test_bus_conflict_predicted_at_observation_point(self):
        m = base_model()
        m.add_transfer("(R1,B1,R2,B2,2,ADD,3,B1,R1)")
        m.add_transfer("(R3,B1,-,-,2,ADD,-,-,-)")
        report = analyze(m)
        bus_conflicts = [c for c in report.conflicts if c.sink == "B1"]
        assert bus_conflicts
        assert bus_conflicts[0].observed_at == StepPhase(2, Phase.RB)

    def test_static_prediction_matches_dynamic_observation(self):
        m = base_model()
        m.add_transfer("(R1,B1,R2,B2,2,ADD,3,B1,R1)")
        m.add_transfer("(R3,B1,-,-,2,ADD,-,-,-)")
        predicted = {
            (c.sink, c.observed_at) for c in analyze(m).conflicts
        }
        sim = m.elaborate().run()
        observed = {(c.signal, c.at) for c in sim.conflicts}
        # Every dynamic conflict's first observation is predicted.
        # (Static analysis may additionally predict downstream
        # locations that dynamic sees via propagation.)
        assert observed & predicted
        first = next(iter(sorted(observed)))
        assert first in predicted

    def test_register_input_conflict(self):
        m = base_model()
        m.module(ModuleSpec("ADD2", latency=1))
        m.bus("B3")
        m.bus("B4")
        # Both adders write R3 in step 3 over different buses: the
        # collision is at R3_in in (3, wb), observed (3, cr).
        m.add_transfer("(R1,B1,R2,B2,2,ADD,3,B1,R3)")
        m.add_transfer("(R1,B3,R2,B4,2,ADD2,3,B3,R3)")
        report = analyze(m)
        sinks = {c.sink for c in report.conflicts}
        assert "R3_in" in sinks


class TestOperandPairing:
    def test_half_fed_module_predicted(self):
        m = base_model()
        m.add_transfer("(R1,B1,-,-,2,ADD,-,-,-)")
        report = analyze(m)
        assert any(c.sink == "ADD_out" for c in report.conflicts)

    def test_pairing_across_two_partial_tuples_is_fine(self):
        m = base_model()
        m.add_transfer("(R1,B1,-,-,2,ADD,-,-,-)")
        m.add_transfer("(-,-,R2,B2,2,ADD,-,-,-)")
        report = analyze(m)
        assert not [c for c in report.conflicts if c.sink == "ADD_out"]

    def test_op_select_conflict_predicted(self):
        m = base_model()
        m.module("ALU", ops=["ADD", "SUB"], latency=0)
        m.bus("B3")
        m.add_transfer(
            RegisterTransfer(
                src1="R1", bus1="B3", src2=None, bus2=None,
                read_step=2, module="ALU", op="ADD",
            )
        )
        # This also leaves ALU half-fed; we only check the op conflict.
        m.transfers.append(
            RegisterTransfer(
                src1="R2", bus1="B2", read_step=2, module="ALU", op="SUB",
            )
        )
        report = analyze(m)
        assert any(c.sink == "ALU_op" for c in report.conflicts)


class TestLatencyChecks:
    def test_wrong_write_step_warned(self):
        m = base_model()
        # ADD has latency 1 but the result is collected 2 steps later.
        m.add_transfer("(R1,B1,R2,B2,2,ADD,4,B1,R1)")
        report = analyze(m)
        assert any("latency" in w for w in report.warnings)
        assert report.clean  # a warning, not a conflict

    def test_stale_read_actually_yields_disc(self):
        m = base_model()
        m.add_transfer("(R1,B1,R2,B2,2,ADD,4,B1,R1)")
        sim = m.elaborate().run()
        # The pipeline has drained by step 4: the WA transfer moves
        # DISC, the register keeps its old value.
        assert sim["R1"] == 1


class TestPipeliningChecks:
    def test_busy_nonpipelined_module_predicted(self):
        m = base_model()
        m.module(
            ModuleSpec(
                "SEQ",
                operations={"MULT": ModuleSpec("x").operations["ADD"]},
                latency=3,
                pipelined=False,
            )
        )
        m.bus("B3")
        m.add_transfer("(R1,B3,R2,B2,1,SEQ,-,-,-)".replace("-,-,-", "-,-,-"))
        m.add_transfer(
            RegisterTransfer(
                src1="R3", bus1="B1", src2="R1", bus2="B2",
                read_step=2, module="SEQ",
            )
        )
        report = analyze(m)
        assert any("while busy" in c.reason for c in report.conflicts)

    def test_spaced_use_not_flagged(self):
        m = base_model(cs_max=10)
        m.module(
            ModuleSpec("SEQ", latency=3, pipelined=False)
        )
        m.bus("B3")
        m.add_transfer(
            RegisterTransfer(
                src1="R1", bus1="B3", src2="R2", bus2="B2",
                read_step=1, module="SEQ",
            )
        )
        m.add_transfer(
            RegisterTransfer(
                src1="R1", bus1="B3", src2="R2", bus2="B2",
                read_step=5, module="SEQ",
            )
        )
        report = analyze(m)
        assert not [c for c in report.conflicts if "while busy" in c.reason]


class TestHorizonChecks:
    def test_result_beyond_horizon_warned(self):
        m = base_model(cs_max=2)
        m.add_transfer("(R1,B1,R2,B2,2,ADD,-,-,-)")
        report = analyze(m)
        assert any("never observable" in w for w in report.warnings)

    def test_trailing_steps_warned(self):
        m = base_model(cs_max=6)
        m.add_transfer("(R1,B1,R2,B2,1,ADD,2,B1,R1)")
        report = analyze(m)
        assert any("trailing steps" in w for w in report.warnings)
