"""Tests for the static resource-occupancy analysis."""

import pytest

from repro.core import ModuleSpec, RTModel
from repro.core.occupancy import occupancy


def fig1_model():
    m = RTModel("example", cs_max=7)
    m.register("R1", init=2)
    m.register("R2", init=3)
    m.bus("B1")
    m.bus("B2")
    m.module(ModuleSpec("ADD", latency=1))
    m.add_transfer("(R1,B1,R2,B2,5,ADD,6,B1,R1)")
    return m


class TestOccupancy:
    def test_fig1_bus_usage(self):
        report = occupancy(fig1_model())
        assert set(report.buses["B1"].steps) == {5, 6}  # read + write
        assert set(report.buses["B2"].steps) == {5}

    def test_fig1_module_busy_through_latency(self):
        report = occupancy(fig1_model())
        assert set(report.modules["ADD"].steps) == {5}  # reads in 5

    def test_multi_step_unit_blocks_longer(self):
        m = RTModel("mul", cs_max=6)
        m.register("A", init=1)
        m.register("B", init=2)
        m.register("P")
        m.bus("B1")
        m.bus("B2")
        m.module(ModuleSpec("MUL", latency=2))
        m.add_transfer("(A,B1,B,B2,1,MUL,3,B1,P)")
        report = occupancy(m)
        assert set(report.modules["MUL"].steps) == {1, 2}

    def test_register_write_steps(self):
        report = occupancy(fig1_model())
        assert set(report.registers["R1"].steps) == {6}
        assert report.registers["R2"].steps == {}

    def test_utilization_numbers(self):
        report = occupancy(fig1_model())
        util = report.utilization()
        # B1 is busy 2/7 steps, B2 1/7 -> mean 3/14.
        assert util["bus"] == pytest.approx(3 / 14)
        assert util["module"] == pytest.approx(1 / 7)

    def test_peak_step(self):
        report = occupancy(fig1_model())
        step, count = report.peak_step()
        assert step == 5  # B1, B2 and ADD all active
        assert count == 3

    def test_chart_render(self):
        chart = occupancy(fig1_model()).chart()
        lines = chart.splitlines()
        b1_row = next(l for l in lines if l.startswith("B1"))
        assert b1_row.split()[1] == "....##."
        assert "-- modules" in chart

    def test_describe_mentions_utilization(self):
        text = occupancy(fig1_model()).describe()
        assert "bus utilization" in text
        assert "peak activity" in text

    def test_empty_model(self):
        m = RTModel("empty", cs_max=3)
        m.register("R")
        report = occupancy(m)
        assert report.utilization()["register"] == 0.0
        assert report.peak_step() == (0, 0)
