"""Tests for the RTModel builder (§2.1, §2.7, §3 desugarings)."""

import pytest

from repro.core import DISC, ModelError, ModuleSpec, RTModel, RegisterTransfer


def small_model():
    m = RTModel("m", cs_max=8)
    m.register("R1", init=1)
    m.register("R2", init=2)
    m.bus("B1")
    m.bus("B2")
    m.module(ModuleSpec("ADD", latency=1))
    return m


class TestDeclarations:
    def test_duplicate_names_rejected_across_kinds(self):
        m = small_model()
        with pytest.raises(ModelError, match="duplicate"):
            m.register("B1")
        with pytest.raises(ModelError, match="duplicate"):
            m.bus("ADD")
        with pytest.raises(ModelError, match="duplicate"):
            m.module(ModuleSpec("R1"))

    def test_register_init_is_masked_to_width(self):
        m = RTModel("m", cs_max=1, width=8)
        m.register("R", init=300)
        assert m.registers["R"].init == 300 % 256

    def test_register_init_validated(self):
        m = RTModel("m", cs_max=1)
        with pytest.raises(ValueError):
            m.register("R", init=-7)

    def test_module_shorthand(self):
        m = RTModel("m", cs_max=1)
        m.module("ALU", ops=["ADD", "SUB"], latency=0)
        spec = m.modules["ALU"]
        assert set(spec.operations) == {"ADD", "SUB"}
        assert spec.latency == 0

    def test_module_width_follows_model(self):
        m = RTModel("m", cs_max=1, width=16)
        m.module(ModuleSpec("ADD", latency=1))  # default width 32
        assert m.modules["ADD"].width == 16

    def test_ports_are_registers(self):
        m = RTModel("m", cs_max=1)
        m.input_port("x", value=9)
        m.output_port("y")
        assert m.registers["x"].init == 9
        assert m.registers["y"].init == DISC

    def test_cs_max_must_be_positive(self):
        with pytest.raises(ModelError):
            RTModel("m", cs_max=0)


class TestTransferValidation:
    def test_unknown_module_rejected(self):
        m = small_model()
        with pytest.raises(ModelError, match="unknown module"):
            m.add_transfer("(R1,B1,R2,B2,1,MUL,2,B1,R1)")

    def test_unknown_register_rejected(self):
        m = small_model()
        with pytest.raises(ModelError, match="unknown register"):
            m.add_transfer("(RX,B1,R2,B2,1,ADD,2,B1,R1)")

    def test_unknown_bus_rejected(self):
        m = small_model()
        with pytest.raises(ModelError, match="unknown bus"):
            m.add_transfer("(R1,BX,R2,B2,1,ADD,2,B1,R1)")

    def test_step_beyond_cs_max_rejected(self):
        m = small_model()
        with pytest.raises(ModelError, match="exceeds cs_max"):
            m.add_transfer("(R1,B1,R2,B2,8,ADD,9,B1,R1)")

    def test_second_operand_on_unary_module_rejected(self):
        m = small_model()
        m.module("CP", ops=["PASS"], latency=0)
        with pytest.raises(ModelError, match="single input"):
            m.add_transfer(
                RegisterTransfer(
                    src1="R1", bus1="B1", src2="R2", bus2="B2",
                    read_step=1, module="CP",
                )
            )

    def test_op_on_single_function_module_rejected(self):
        m = small_model()
        with pytest.raises(ModelError, match="single"):
            m.add_transfer(
                RegisterTransfer(
                    src1="R1", bus1="B1", src2="R2", bus2="B2",
                    read_step=1, module="ADD", op="SUB",
                )
            )

    def test_unknown_op_rejected(self):
        m = small_model()
        m.module("ALU", ops=["ADD", "SUB"], latency=0)
        with pytest.raises(KeyError, match="no operation"):
            m.add_transfer(
                RegisterTransfer(
                    src1="R1", bus1="B1", src2="R2", bus2="B2",
                    read_step=1, module="ALU", op="DIV",
                )
            )

    def test_compute_helper_places_write_step(self):
        m = small_model()
        t = m.compute("ADD", dest="R1", step=3, src1="R1", bus1="B1",
                      src2="R2", bus2="B2")
        assert t.write_step == 4  # latency 1
        assert t.write_bus == "B1"


class TestDirectLinkDesugaring:
    """§3: 'it is better to model more resources than to extend the
    VHDL subset'."""

    def test_direct_link_bus_name_matches_paper_style(self):
        m = small_model()
        m.register("P")
        m.module(ModuleSpec("Z_ADD", latency=0))
        bus = m.direct_link_bus("P", "Z_ADD", port=2)
        # "a bus P_Z_ADD_in2 is introduced"
        assert bus == "P_Z_ADD_in2"
        assert m.buses[bus].direct_link

    def test_direct_link_bus_is_idempotent(self):
        m = small_model()
        m.register("P")
        m.module(ModuleSpec("Z_ADD", latency=0))
        assert m.direct_link_bus("P", "Z_ADD", 2) == m.direct_link_bus(
            "P", "Z_ADD", 2
        )

    def test_copy_path_introduces_two_buses_and_a_module(self):
        m = small_model()
        m.register("Z")
        m.register("RF")
        bus_in, copier, bus_out = m.copy_path("Z", "RF")
        assert copier in m.modules
        assert m.modules[copier].latency == 0
        assert bus_in in m.buses and bus_out in m.buses

    def test_copy_transfer_moves_value(self):
        m = RTModel("m", cs_max=3)
        m.register("Z", init=11)
        m.register("RF")
        m.module(ModuleSpec("ADD", latency=1))  # unrelated
        m.copy_transfer("Z", "RF", step=2)
        sim = m.elaborate().run()
        assert sim["RF"] == 11
        assert sim.clean

    def test_copy_path_requires_known_registers(self):
        m = small_model()
        with pytest.raises(ModelError, match="unknown register"):
            m.copy_path("Z", "R1")


class TestDescribe:
    def test_describe_mentions_all_resources(self):
        m = small_model()
        m.add_transfer("(R1,B1,R2,B2,5,ADD,6,B1,R1)")
        text = m.describe()
        for token in ("R1", "R2", "B1", "B2", "ADD", "(R1,B1,R2,B2,5,ADD,6,B1,R1)"):
            assert token in text
