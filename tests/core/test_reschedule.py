"""Tests for the automatic transfer rescheduler (paper §2.1's
'scheduling task')."""

import pytest
from hypothesis import given, settings

from repro.core import (
    ModuleSpec,
    RTModel,
    RegisterTransfer,
    analyze,
    standard_operation,
)
from repro.core.reschedule import RescheduleError, reschedule


def sparse_model():
    """A deliberately wasteful hand schedule: big gaps between steps."""
    m = RTModel("sparse", cs_max=20)
    for name, init in (("A", 3), ("B", 4), ("C", 5)):
        m.register(name, init=init)
    m.register("T1")
    m.register("T2")
    m.bus("B1")
    m.bus("B2")
    m.bus("B3")
    m.bus("B4")
    m.module(ModuleSpec("ADD", latency=1))
    m.module(ModuleSpec("MUL", latency=2))
    m.add_transfer("(A,B1,B,B2,3,ADD,4,B1,T1)")
    m.add_transfer("(T1,B1,C,B2,9,MUL,11,B3,T2)")
    m.add_transfer("(T2,B1,A,B2,15,ADD,16,B4,T2)")
    return m


class TestRescheduleBasics:
    def test_compacts_sparse_schedule(self):
        res = reschedule(sparse_model())
        assert res.new_cs_max < res.original_cs_max
        assert res.saved_steps > 0

    def test_preserves_results(self):
        model = sparse_model()
        res = reschedule(model)
        assert (
            res.model.elaborate().run().registers
            == model.elaborate().run().registers
        )

    def test_result_is_statically_clean(self):
        res = reschedule(sparse_model())
        assert analyze(res.model).clean

    def test_dependences_respected(self):
        res = reschedule(sparse_model())
        t = {i: tr for i, tr in enumerate(res.model.transfers)}
        # MUL reads T1: must issue after ADD's write (read0 + 1).
        assert t[1].read_step >= t[0].write_step + 1
        assert t[2].read_step >= t[1].write_step + 1

    def test_keep_cs_max_option(self):
        model = sparse_model()
        res = reschedule(model, keep_cs_max=True)
        assert res.model.cs_max == model.cs_max

    def test_describe_lists_moves(self):
        text = reschedule(sparse_model()).describe()
        assert "->" in text and "saved" in text

    def test_partial_tuples_rejected(self):
        m = RTModel("partial", cs_max=4)
        m.register("A", init=1)
        m.bus("B1")
        m.module(ModuleSpec("ADD", latency=1))
        m.add_transfer("(A,B1,-,-,1,ADD,-,-,-)".replace("-,-,-", "-,-,-"))
        with pytest.raises(RescheduleError, match="complete"):
            reschedule(m)


class TestSameStepSemantics:
    def test_same_step_read_before_write_preserved(self):
        # The microcode idiom: a unit reads an operand register in the
        # same step a route overwrites it.  The rescheduler must keep
        # the read on the OLD value.
        m = RTModel("rw", cs_max=8)
        m.register("X", init=10)
        m.register("NEW", init=99)
        m.register("OUT1")
        m.register("OUT2")
        m.bus("B1")
        m.bus("B2")
        m.bus("B3")
        m.bus("B4")
        for copier in ("CP1", "CP2"):
            m.module(ModuleSpec(
                copier,
                operations={"PASS": standard_operation("PASS")},
                latency=0,
            ))
        # Step 2: OUT1 := X (old value) while X := NEW in the same step.
        m.add_transfer(RegisterTransfer(
            src1="X", bus1="B1", read_step=2, module="CP1",
            write_step=2, write_bus="B2", dest="OUT1",
        ))
        m.add_transfer(RegisterTransfer(
            src1="NEW", bus1="B3", read_step=2, module="CP2",
            write_step=2, write_bus="B4", dest="X",
        ))
        # Step 4: OUT2 := X (new value).
        m.add_transfer(RegisterTransfer(
            src1="X", bus1="B1", read_step=4, module="CP1",
            write_step=4, write_bus="B2", dest="OUT2",
        ))
        baseline = m.elaborate().run().registers
        assert baseline["OUT1"] == 10 and baseline["OUT2"] == 99
        res = reschedule(m)
        assert res.model.elaborate().run().registers == baseline

    def test_inflight_write_war(self):
        # Reader consumes an older value while a long-latency write to
        # the same register is already in flight.
        m = RTModel("flight", cs_max=10)
        m.register("A", init=2)
        m.register("B", init=3)
        m.register("P")
        m.register("OUT")
        m.bus("B1")
        m.bus("B2")
        m.bus("B3")
        m.module(ModuleSpec("MUL", latency=2))
        m.module(ModuleSpec("ADD", latency=1))
        m.add_transfer("(A,B1,B,B2,1,MUL,3,B3,P)")  # P := 6 at cs3
        m.add_transfer("(A,B1,B,B2,4,MUL,6,B3,P)")  # P := 6 again at cs6
        # Reads P at cs5 -- sees the first product while the second is
        # in flight.
        m.add_transfer("(P,B1,A,B2,5,ADD,6,B1,OUT)")
        baseline = m.elaborate().run().registers
        res = reschedule(m)
        assert analyze(res.model).clean
        assert res.model.elaborate().run().registers == baseline


class TestIksCompaction:
    def test_compacts_the_hand_written_microprogram(self):
        from repro.iks.flow import build_ik_model

        model, _ = build_ik_model(2.5, 1.0)
        res = reschedule(model)
        assert res.new_cs_max < model.cs_max
        assert (
            res.model.elaborate().run().registers
            == model.elaborate().run().registers
        )

    def test_compaction_holds_across_targets(self):
        from repro.iks.flow import build_ik_model

        for target in [(1.0, 2.0), (0.8, -1.2)]:
            model, _ = build_ik_model(*target)
            res = reschedule(model)
            assert (
                res.model.elaborate().run().registers
                == model.elaborate().run().registers
            )
