"""Tests for control-step phases (§2.2, Fig. 2)."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.phases import (
    PHASES_PER_STEP,
    Phase,
    StepPhase,
    iter_schedule,
)


class TestPhase:
    def test_order_matches_figure_2(self):
        assert [p.vhdl_name for p in Phase] == ["ra", "rb", "cm", "wa", "wb", "cr"]

    def test_six_phases_per_step(self):
        assert PHASES_PER_STEP == 6

    def test_low_and_high_attributes(self):
        # Phase'Low = ra, Phase'High = cr (paper's CONTROLLER comments).
        assert Phase.low() is Phase.RA
        assert Phase.high() is Phase.CR

    def test_succ_cycles(self):
        sequence = [Phase.RA]
        for _ in range(6):
            sequence.append(sequence[-1].succ())
        assert sequence[-1] is Phase.RA
        assert sequence[:-1] == list(Phase)

    def test_pred_inverts_succ(self):
        for phase in Phase:
            assert phase.succ().pred() is phase

    def test_from_vhdl_name_roundtrip(self):
        for phase in Phase:
            assert Phase.from_vhdl_name(phase.vhdl_name) is phase
        assert Phase.from_vhdl_name("CM") is Phase.CM  # case-insensitive

    def test_from_vhdl_name_rejects_unknown(self):
        with pytest.raises(ValueError, match="unknown phase"):
            Phase.from_vhdl_name("xx")


class TestStepPhase:
    def test_ordering_is_lexicographic(self):
        assert StepPhase(1, Phase.CR) < StepPhase(2, Phase.RA)
        assert StepPhase(3, Phase.RA) < StepPhase(3, Phase.RB)

    def test_succ_crosses_step_boundary(self):
        assert StepPhase(4, Phase.CR).succ() == StepPhase(5, Phase.RA)
        assert StepPhase(4, Phase.WA).succ() == StepPhase(4, Phase.WB)

    def test_str_form(self):
        assert str(StepPhase(5, Phase.RA)) == "cs5.ra"

    def test_negative_step_rejected(self):
        with pytest.raises(ValueError):
            StepPhase(-1, Phase.RA)

    @given(st.integers(min_value=0, max_value=1000), st.sampled_from(list(Phase)))
    def test_succ_is_strictly_increasing(self, step, phase):
        point = StepPhase(step, phase)
        assert point < point.succ()


class TestIterSchedule:
    def test_yields_cs_max_times_six_points(self):
        points = list(iter_schedule(7))
        assert len(points) == 7 * 6

    def test_points_are_sorted_and_distinct(self):
        points = list(iter_schedule(5))
        assert points == sorted(points)
        assert len(set(points)) == len(points)

    def test_successive_points_follow_succ(self):
        points = list(iter_schedule(3))
        for a, b in zip(points, points[1:]):
            assert a.succ() == b

    def test_requires_positive_cs_max(self):
        with pytest.raises(ValueError):
            list(iter_schedule(0))
