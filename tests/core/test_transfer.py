"""Tests for register-transfer tuples and the tuple <-> TRANS mapping
(paper §2.1, §2.4, §2.7)."""

import pytest

from repro.core.phases import Phase
from repro.core.transfer import (
    RegisterTransfer,
    TransferError,
    TransSpec,
    expand_all,
    from_trans_specs,
    to_trans_specs,
)

FIG1 = RegisterTransfer(
    src1="R1",
    bus1="B1",
    src2="R2",
    bus2="B2",
    read_step=5,
    module="ADD",
    write_step=6,
    write_bus="B1",
    dest="R1",
)


class TestTupleConstruction:
    def test_fig1_tuple_roundtrips_through_str(self):
        text = str(FIG1)
        assert text == "(R1,B1,R2,B2,5,ADD,6,B1,R1)"
        assert RegisterTransfer.parse(text) == FIG1

    def test_parse_partial_tuples_from_paper(self):
        read = RegisterTransfer.parse("(R1, B1, -, -, 5, ADD, -, -, -)")
        assert read.src1 == "R1" and read.read_step == 5
        assert not read.has_write
        write = RegisterTransfer.parse("(-,-,-,-,-,ADD,6,B1,R1)")
        assert write.has_write and not write.has_read

    def test_parse_op_extension(self):
        t = RegisterTransfer.parse("(A,B1,C,B2,3,ALU,4,B1,A)[SUB]")
        assert t.op == "SUB"

    def test_parse_rejects_wrong_arity(self):
        with pytest.raises(TransferError, match="9 fields"):
            RegisterTransfer.parse("(R1,B1,5,ADD)")

    def test_parse_rejects_non_numeric_step(self):
        with pytest.raises(TransferError, match="control step"):
            RegisterTransfer.parse("(R1,B1,-,-,x,ADD,-,-,-)")

    def test_source_requires_bus(self):
        with pytest.raises(TransferError, match="src1 and bus1"):
            RegisterTransfer(src1="R1", read_step=2, module="ADD")

    def test_read_half_requires_step(self):
        with pytest.raises(TransferError, match="without read_step"):
            RegisterTransfer(src1="R1", bus1="B1", module="ADD")

    def test_write_half_requires_bus_and_step(self):
        with pytest.raises(TransferError, match="dest requires"):
            RegisterTransfer(module="ADD", dest="R1", write_step=3)

    def test_empty_tuple_rejected(self):
        with pytest.raises(TransferError, match="neither read nor write"):
            RegisterTransfer(module="ADD")

    def test_op_requires_read_half(self):
        with pytest.raises(TransferError, match="operation select"):
            RegisterTransfer(
                module="ALU", write_step=3, write_bus="B1", dest="R1", op="SUB"
            )

    def test_latency_of_complete_tuple(self):
        assert FIG1.latency() == 1
        assert FIG1.read_half().latency() is None

    def test_halves_partition_the_tuple(self):
        read, write = FIG1.read_half(), FIG1.write_half()
        assert read.has_read and not read.has_write
        assert write.has_write and not write.has_read
        assert read.module == write.module == "ADD"


class TestForwardMapping:
    """Tuple -> TRANS instances, exactly as listed in §2.7."""

    def test_fig1_expansion_names(self):
        specs = to_trans_specs(FIG1)
        names = {spec.name for spec in specs}
        # The paper's six instances (underlined tuple parts):
        assert names == {
            "R1_out_B1_5",
            "B1_ADD_in1_5",
            "R2_out_B2_5",
            "B2_ADD_in2_5",
            "ADD_out_B1_6",
            "B1_R1_in_6",
        }

    def test_fig1_expansion_phases(self):
        by_name = {s.name: s for s in to_trans_specs(FIG1)}
        assert by_name["R1_out_B1_5"].phase is Phase.RA
        assert by_name["B1_ADD_in1_5"].phase is Phase.RB
        assert by_name["R2_out_B2_5"].phase is Phase.RA
        assert by_name["B2_ADD_in2_5"].phase is Phase.RB
        assert by_name["ADD_out_B1_6"].phase is Phase.WA
        assert by_name["B1_R1_in_6"].phase is Phase.WB

    def test_read_half_expands_to_four_instances(self):
        specs = to_trans_specs(FIG1.read_half())
        assert len(specs) == 4
        assert all(spec.step == 5 for spec in specs)

    def test_write_half_expands_to_two_instances(self):
        specs = to_trans_specs(FIG1.write_half())
        assert len(specs) == 2
        assert {s.phase for s in specs} == {Phase.WA, Phase.WB}

    def test_single_operand_uses_in1(self):
        t = RegisterTransfer(
            src1="X", bus1="B", read_step=2, module="NEG"
        )
        sinks = {s.sink for s in to_trans_specs(t)}
        assert sinks == {"B", "NEG_in1"}

    def test_op_extension_adds_op_instance(self):
        t = RegisterTransfer(
            src1="A",
            bus1="B1",
            src2="C",
            bus2="B2",
            read_step=3,
            module="ALU",
            op="SUB",
        )
        specs = to_trans_specs(t)
        op_specs = [s for s in specs if s.sink == "ALU_op"]
        assert len(op_specs) == 1
        assert op_specs[0].phase is Phase.RB
        assert op_specs[0].source == "op:SUB"


class TestInverseMapping:
    """TRANS instances -> tuples (paper §2.7's three derived tuples)."""

    def test_paper_partial_tuples(self):
        specs = to_trans_specs(FIG1)
        partials = from_trans_specs(specs)
        # Without latency info: one read half (both operands merge into
        # one tuple because they feed the same module in the same step)
        # and one write half.
        assert len(partials) == 2
        read = next(t for t in partials if t.has_read)
        write = next(t for t in partials if t.has_write)
        assert read == RegisterTransfer(
            src1="R1", bus1="B1", src2="R2", bus2="B2", read_step=5, module="ADD"
        )
        assert write == RegisterTransfer(
            module="ADD", write_step=6, write_bus="B1", dest="R1"
        )

    def test_roundtrip_with_latency(self):
        specs = to_trans_specs(FIG1)
        merged = from_trans_specs(specs, latency_of=lambda m: 1)
        assert merged == [FIG1]

    def test_roundtrip_preserves_op(self):
        t = RegisterTransfer(
            src1="A",
            bus1="B1",
            src2="C",
            bus2="B2",
            read_step=3,
            module="ALU",
            write_step=3,
            write_bus="B3",
            dest="D",
            op="SUB",
        )
        assert from_trans_specs(to_trans_specs(t), latency_of=lambda m: 0) == [t]

    def test_missing_ra_instance_detected(self):
        specs = [TransSpec(5, Phase.RB, "B1", "ADD_in1")]
        with pytest.raises(TransferError, match="missing ra instance"):
            from_trans_specs(specs)

    def test_missing_wa_instance_detected(self):
        specs = [TransSpec(6, Phase.WB, "B1", "R1_in")]
        with pytest.raises(TransferError, match="missing wa instance"):
            from_trans_specs(specs)

    def test_double_load_of_bus_detected(self):
        specs = [
            TransSpec(5, Phase.RA, "R1_out", "B1"),
            TransSpec(5, Phase.RA, "R2_out", "B1"),
        ]
        with pytest.raises(TransferError, match="already loaded"):
            from_trans_specs(specs)

    def test_double_feed_of_module_port_detected(self):
        specs = [
            TransSpec(5, Phase.RA, "R1_out", "B1"),
            TransSpec(5, Phase.RA, "R2_out", "B2"),
            TransSpec(5, Phase.RB, "B1", "ADD_in1"),
            TransSpec(5, Phase.RB, "B2", "ADD_in1"),
        ]
        with pytest.raises(TransferError, match="already fed"):
            from_trans_specs(specs)

    def test_multiple_transfers_roundtrip(self):
        t2 = RegisterTransfer(
            src1="R3",
            bus1="B3",
            src2="R4",
            bus2="B4",
            read_step=1,
            module="MUL",
            write_step=3,
            write_bus="B3",
            dest="R3",
        )
        latencies = {"ADD": 1, "MUL": 2}
        specs = expand_all([FIG1, t2])
        merged = from_trans_specs(specs, latency_of=latencies.__getitem__)
        assert sorted(map(str, merged)) == sorted(map(str, [FIG1, t2]))

    def test_unmerged_write_survives_without_latency_map(self):
        # A write whose read half is absent must still be reported.
        specs = to_trans_specs(FIG1.write_half())
        partials = from_trans_specs(specs, latency_of=lambda m: 1)
        assert partials == [FIG1.write_half()]
