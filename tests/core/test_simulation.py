"""End-to-end tests of elaborated RT models (§2.7): the Fig. 1 example,
dynamic conflict localization, delta-cycle accounting and tracing."""

import io

import pytest

from repro.core import (
    DISC,
    ILLEGAL,
    ModelError,
    ModuleSpec,
    Phase,
    RTModel,
    StepPhase,
)


def fig1_model(r1=2, r2=3, cs_max=7):
    """The paper's Fig. 1 example: R1 <- R1 + R2 via steps 5 and 6."""
    m = RTModel("example", cs_max=cs_max)
    m.register("R1", init=r1)
    m.register("R2", init=r2)
    m.bus("B1")
    m.bus("B2")
    m.module(ModuleSpec("ADD", latency=1))
    m.add_transfer("(R1,B1,R2,B2,5,ADD,6,B1,R1)")
    return m


class TestFig1:
    def test_result(self):
        sim = fig1_model().elaborate().run()
        assert sim["R1"] == 5
        assert sim["R2"] == 3
        assert sim.clean

    def test_delta_cycles_equal_cs_max_times_six(self):
        sim = fig1_model().elaborate().run()
        assert sim.stats.delta_cycles == 7 * 6

    def test_no_physical_time(self):
        sim = fig1_model().elaborate().run()
        assert sim.sim.now.time == 0

    def test_register_value_overrides(self):
        sim = fig1_model().elaborate(register_values={"R1": 10, "R2": 20}).run()
        assert sim["R1"] == 30

    def test_override_of_unknown_register_rejected(self):
        with pytest.raises(ModelError, match="unknown registers"):
            fig1_model().elaborate(register_values={"R9": 1})

    def test_trace_shows_bus_occupancy(self):
        sim = fig1_model().elaborate(trace=True).run()
        t = sim.tracer
        # B1 carries R1's value during (5, rb) and ADD's result during
        # (6, wb); it is DISC elsewhere.
        assert t.at(5, Phase.RB)["B1"] == 2
        assert t.at(5, Phase.CM)["B1"] == DISC
        assert t.at(6, Phase.WB)["B1"] == 5
        assert t.at(4, Phase.RB)["B1"] == DISC

    def test_trace_shows_module_ports(self):
        sim = fig1_model().elaborate(trace=True).run()
        t = sim.tracer
        assert t.at(5, Phase.CM)["ADD_in1"] == 2
        assert t.at(5, Phase.CM)["ADD_in2"] == 3
        assert t.at(6, Phase.WA)["ADD_out"] == 5

    def test_register_updates_at_cr(self):
        sim = fig1_model().elaborate(trace=True).run()
        t = sim.tracer
        # The register latches during CR; the signal assignment takes
        # one delta, so the new output value is visible from the next
        # step's RA on -- exactly when transfers may read it.
        assert t.at(6, Phase.CR)["R1_out"] == 2
        assert t.at(7, Phase.RA)["R1_out"] == 5

    def test_getitem_unknown_register(self):
        sim = fig1_model().elaborate()
        with pytest.raises(KeyError):
            sim["nope"]


class TestConflictLocalization:
    """§2.7: conflicts appear as ILLEGAL at a specific (step, phase)."""

    def conflicted_model(self):
        # Two sources loaded onto B1 in the same step -> bus conflict.
        m = RTModel("conflict", cs_max=4)
        m.register("R1", init=1)
        m.register("R2", init=2)
        m.register("R3", init=3)
        m.bus("B1")
        m.bus("B2")
        m.module(ModuleSpec("ADD", latency=1))
        m.add_transfer("(R1,B1,R2,B2,2,ADD,3,B1,R1)")
        m.add_transfer("(R3,B1,-,-,2,ADD,-,-,-)")
        return m

    def test_conflict_is_observed(self):
        sim = self.conflicted_model().elaborate().run()
        assert not sim.clean
        assert sim.conflicts

    def test_conflict_located_at_exact_step_and_phase(self):
        sim = self.conflicted_model().elaborate().run()
        buses = [c for c in sim.conflicts if c.signal == "B1"]
        assert buses
        # Both sources drive B1 in (2, ra); the ILLEGAL value becomes
        # visible one delta later, in (2, rb).
        assert buses[0].at == StepPhase(2, Phase.RB)

    def test_conflict_sources_identified(self):
        sim = self.conflicted_model().elaborate().run()
        event = next(c for c in sim.conflicts if c.signal == "B1")
        owners = {owner for owner, _ in event.sources}
        assert owners == {"R1_out_B1_2", "R3_out_B1_2"}

    def test_illegal_propagates_into_register(self):
        sim = self.conflicted_model().elaborate().run()
        assert sim["R1"] == ILLEGAL

    def test_monitor_report_format(self):
        sim = self.conflicted_model().elaborate().run()
        report = sim.monitor.report()
        assert "ILLEGAL on B1 at cs2.rb" in report

    def test_clean_model_reports_no_conflicts(self):
        sim = fig1_model().elaborate().run()
        assert sim.monitor.report() == "no conflicts observed"


class TestChainedTransfers:
    def test_two_stage_dataflow(self):
        # R3 <- (R1 + R2) + R2, reusing the adder in successive steps.
        m = RTModel("chain", cs_max=6)
        m.register("R1", init=10)
        m.register("R2", init=5)
        m.register("R3")
        m.bus("B1")
        m.bus("B2")
        m.module(ModuleSpec("ADD", latency=1))
        m.add_transfer("(R1,B1,R2,B2,1,ADD,2,B1,R3)")
        m.add_transfer("(R3,B1,R2,B2,3,ADD,4,B1,R3)")
        sim = m.elaborate().run()
        assert sim["R3"] == 20
        assert sim.clean

    def test_parallel_units_in_same_step(self):
        # Two adders working in the same control step on different buses.
        m = RTModel("parallel", cs_max=3)
        for name, init in (("A", 1), ("B", 2), ("C", 3), ("D", 4)):
            m.register(name, init=init)
        m.register("S1")
        m.register("S2")
        for bus in ("BA", "BB", "BC", "BD"):
            m.bus(bus)
        m.module(ModuleSpec("ADD1", latency=1))
        m.module(ModuleSpec("ADD2", latency=1))
        m.add_transfer("(A,BA,B,BB,1,ADD1,2,BA,S1)")
        m.add_transfer("(C,BC,D,BD,1,ADD2,2,BC,S2)")
        sim = m.elaborate().run()
        assert sim["S1"] == 3
        assert sim["S2"] == 7
        assert sim.clean

    def test_same_bus_reused_across_steps(self):
        # Bus reuse in *different* steps is legal.
        m = RTModel("reuse", cs_max=5)
        m.register("A", init=1)
        m.register("B", init=2)
        m.register("S1")
        m.register("S2")
        m.bus("B1")
        m.bus("B2")
        m.module(ModuleSpec("ADD", latency=1))
        m.add_transfer("(A,B1,B,B2,1,ADD,2,B1,S1)")
        m.add_transfer("(B,B1,A,B2,3,ADD,4,B1,S2)")
        sim = m.elaborate().run()
        assert sim["S1"] == 3
        assert sim["S2"] == 3
        assert sim.clean


class TestTransferRealizations:
    """The two TRANS realizations (process-per-instance vs the folded
    engine) must be observationally identical."""

    def test_same_results_and_deltas(self):
        model = fig1_model()
        engine = model.elaborate(transfer_engine=True).run()
        processes = model.elaborate(transfer_engine=False).run()
        assert engine.registers == processes.registers
        assert engine.stats.delta_cycles == processes.stats.delta_cycles

    def test_same_traces(self):
        model = fig1_model()
        engine = model.elaborate(trace=True, transfer_engine=True).run()
        processes = model.elaborate(trace=True, transfer_engine=False).run()
        for sample_e, sample_p in zip(
            engine.tracer.samples, processes.tracer.samples
        ):
            assert sample_e.at == sample_p.at
            assert sample_e.values == sample_p.values

    def test_same_conflict_attribution(self):
        def conflicted():
            m = RTModel("conflict", cs_max=4)
            m.register("R1", init=1)
            m.register("R2", init=2)
            m.register("R3", init=3)
            m.bus("B1")
            m.bus("B2")
            m.module(ModuleSpec("ADD", latency=1))
            m.add_transfer("(R1,B1,R2,B2,2,ADD,3,B1,R1)")
            m.add_transfer("(R3,B1,-,-,2,ADD,-,-,-)")
            return m

        engine = conflicted().elaborate(transfer_engine=True).run()
        processes = conflicted().elaborate(transfer_engine=False).run()
        key = lambda c: (c.signal, c.at, tuple(sorted(c.sources)))  # noqa: E731
        assert sorted(map(key, engine.conflicts)) == sorted(
            map(key, processes.conflicts)
        )

    def test_engine_resumes_fewer_processes_on_large_models(self):
        # The engine costs one wakeup per cycle; process-per-instance
        # costs O(instances x steps).  On tiny models the engine can
        # even lose -- the win is asymptotic, so test a wide model.
        model = RTModel("wide", cs_max=13)
        for lane in range(12):
            model.register(f"A{lane}", init=1)
            model.register(f"B{lane}", init=2)
            model.register(f"S{lane}")
            model.bus(f"BA{lane}")
            model.bus(f"BB{lane}")
            model.module(ModuleSpec(f"FU{lane}", latency=1))
            for step in (1, 5, 9):
                model.add_transfer(
                    f"(A{lane},BA{lane},B{lane},BB{lane},{step},FU{lane},"
                    f"{step + 1},BA{lane},S{lane})"
                )
        engine = model.elaborate(transfer_engine=True).run()
        processes = model.elaborate(transfer_engine=False).run()
        assert engine.registers == processes.registers
        assert engine.stats.process_resumes < processes.stats.process_resumes


class TestRunControl:
    def test_run_steps_stops_midway(self):
        sim = fig1_model().elaborate()
        sim.run_steps(4)
        assert sim.cs.value == 4
        assert sim["R1"] == 2  # transfer at steps 5/6 not yet executed

    def test_run_steps_then_full_run(self):
        sim = fig1_model().elaborate()
        sim.run_steps(4)
        sim.run()
        assert sim["R1"] == 5


class TestTraceExport:
    def test_format_table_contains_values(self):
        sim = fig1_model().elaborate(trace=True).run()
        table = sim.tracer.format_table(["B1", "ADD_out", "R1_out"])
        assert "cs5.rb" in table
        assert "DISC" in table

    def test_vcd_export_wellformed(self):
        sim = fig1_model().elaborate(trace=True).run()
        out = io.StringIO()
        sim.tracer.write_vcd(out)
        text = out.getvalue()
        assert "$enddefinitions" in text
        assert "$var integer 32" in text
        assert "bz" in text  # DISC encoded as high-Z

    def test_history_is_change_compressed(self):
        sim = fig1_model().elaborate(trace=True).run()
        history = sim.tracer.history("B1")
        values = [v for _, v in history]
        # DISC -> 2 -> DISC -> 5 -> DISC
        assert values == [DISC, 2, DISC, 5, DISC]

    def test_step_values_samples_one_phase(self):
        sim = fig1_model().elaborate(trace=True).run()
        per_step = sim.tracer.step_values("R1_out", Phase.RA)
        assert per_step[5] == 2
        assert per_step[6] == 2  # latched at (6, CR), visible from (7, RA)
        assert per_step[7] == 5
