"""Tests for CONTROLLER, TRANS and REG processes (§2.2, §2.4, §2.5)."""

import pytest

from repro.core.components import make_controller, make_reg, make_trans
from repro.core.phases import Phase
from repro.core.values import DISC, resolve_rt
from repro.kernel import Simulator, wait_on


def timing_signals(sim, cs_max):
    cs = sim.signal("CS", init=0)
    ph = sim.signal("PH", init=Phase.high())
    make_controller(sim, cs, ph, cs_max)
    return cs, ph


class TestController:
    def test_phase_sequence_one_step(self):
        sim = Simulator()
        cs, ph = timing_signals(sim, cs_max=1)
        seen = []

        def observer():
            while True:
                yield wait_on(ph)
                seen.append((cs.value, ph.value))

        sim.add_process("observer", observer)
        sim.run()
        assert seen == [(1, p) for p in Phase]

    def test_full_run_covers_all_steps(self):
        sim = Simulator()
        cs, ph = timing_signals(sim, cs_max=4)
        seen = []

        def observer():
            while True:
                yield wait_on(ph)
                seen.append((cs.value, ph.value))

        sim.add_process("observer", observer)
        sim.run()
        expected = [(s, p) for s in range(1, 5) for p in Phase]
        assert seen == expected

    def test_delta_cycle_count_matches_paper(self):
        # "The complete simulation takes CS_MAX * 6 delta simulation
        # cycles."
        for cs_max in (1, 3, 10):
            sim = Simulator()
            timing_signals(sim, cs_max)
            sim.run()
            assert sim.stats.delta_cycles == cs_max * 6

    def test_simulation_quiesces_after_last_step(self):
        sim = Simulator()
        cs, ph = timing_signals(sim, cs_max=2)
        sim.run()
        assert sim.quiescent
        assert cs.value == 2
        assert ph.value is Phase.CR

    def test_no_physical_time_is_consumed(self):
        sim = Simulator()
        timing_signals(sim, cs_max=5)
        sim.run()
        assert sim.now.time == 0

    def test_rejects_nonpositive_cs_max(self):
        sim = Simulator()
        cs = sim.signal("CS", init=0)
        ph = sim.signal("PH", init=Phase.high())
        with pytest.raises(ValueError):
            make_controller(sim, cs, ph, 0)


class TestTrans:
    def test_transfer_asserts_then_releases(self):
        sim = Simulator()
        cs, ph = timing_signals(sim, cs_max=3)
        src = sim.signal("SRC", init=9)
        sink = sim.signal("SINK", init=DISC, resolution=resolve_rt)
        make_trans(sim, cs, ph, step=2, phase=Phase.RA, source=src, sink=sink)
        history = []

        def observer():
            while True:
                yield wait_on(ph)
                history.append((cs.value, ph.value, sink.value))

        sim.add_process("observer", observer)
        sim.run()
        by_time = {(c, p): v for c, p, v in history}
        # Value present exactly during the RB cycle of step 2.
        assert by_time[(2, Phase.RA)] == DISC
        assert by_time[(2, Phase.RB)] == 9
        assert by_time[(2, Phase.CM)] == DISC
        assert by_time[(3, Phase.RB)] == DISC

    def test_transfer_samples_source_at_activation(self):
        sim = Simulator()
        cs, ph = timing_signals(sim, cs_max=3)
        src = sim.signal("SRC", init=1)
        src_drv = sim.driver(src, owner="env")
        sink = sim.signal("SINK", init=DISC, resolution=resolve_rt)
        make_trans(sim, cs, ph, step=2, phase=Phase.RA, source=src, sink=sink)
        captured = []

        def mutator():
            # Change the source during step 1; the transfer at step 2
            # must see the new value.
            yield wait_on(cs)
            src_drv.set(77)
            yield wait_on(ph)

        def observer():
            while True:
                yield wait_on(ph)
                if (cs.value, ph.value) == (2, Phase.RB):
                    captured.append(sink.value)

        sim.add_process("mutator", mutator)
        sim.add_process("observer", observer)
        sim.run()
        assert captured == [77]

    def test_constant_source_value_for_op_ports(self):
        sim = Simulator()
        cs, ph = timing_signals(sim, cs_max=2)
        sink = sim.signal("OP", init=DISC, resolution=resolve_rt)
        make_trans(
            sim, cs, ph, step=1, phase=Phase.RB,
            source=None, sink=sink, source_value=3, name="op_sel",
        )
        captured = []

        def observer():
            while True:
                yield wait_on(ph)
                if (cs.value, ph.value) == (1, Phase.CM):
                    captured.append(sink.value)

        sim.add_process("observer", observer)
        sim.run()
        assert captured == [3]

    def test_cr_phase_transfer_rejected(self):
        sim = Simulator()
        cs, ph = timing_signals(sim, cs_max=2)
        src = sim.signal("S", init=1)
        sink = sim.signal("T", init=DISC, resolution=resolve_rt)
        with pytest.raises(ValueError, match="last phase"):
            make_trans(sim, cs, ph, step=1, phase=Phase.CR, source=src, sink=sink)


class TestReg:
    def test_register_latches_in_cr_phase(self):
        sim = Simulator()
        cs, ph = timing_signals(sim, cs_max=2)
        r_in = sim.signal("R_in", init=DISC, resolution=resolve_rt)
        r_out = sim.signal("R_out", init=DISC)
        make_reg(sim, ph, r_in, r_out, name="R")
        drv = sim.driver(r_in, owner="env", init=DISC)

        def stimulus():
            # Drive the input during WB of step 1 so it is visible at CR.
            while not (cs.value == 1 and ph.value is Phase.WB):
                yield wait_on(ph)
            drv.set(5)
            yield wait_on(ph)  # CR cycle
            drv.set(DISC)

        sim.add_process("stimulus", stimulus)
        sim.run()
        assert r_out.value == 5

    def test_register_keeps_value_without_input(self):
        sim = Simulator()
        cs, ph = timing_signals(sim, cs_max=3)
        r_in = sim.signal("R_in", init=DISC, resolution=resolve_rt)
        r_out = sim.signal("R_out", init=42)
        make_reg(sim, ph, r_in, r_out, name="R", init=42)
        sim.run()
        assert r_out.value == 42

    def test_register_init_preloads_output(self):
        sim = Simulator()
        cs, ph = timing_signals(sim, cs_max=1)
        r_in = sim.signal("R_in", init=DISC, resolution=resolve_rt)
        r_out = sim.signal("R_out", init=7)
        make_reg(sim, ph, r_in, r_out, name="R", init=7)
        assert r_out.value == 7
