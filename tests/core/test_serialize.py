"""Tests for JSON model (de)serialization."""

import json

import pytest

from repro.core import ModuleSpec, Operation, RTModel
from repro.core.serialize import (
    SerializeError,
    dumps,
    load,
    loads,
    model_from_dict,
    model_to_dict,
)


def sample_model():
    m = RTModel("sample", cs_max=6, width=16)
    m.register("A", init=9)
    m.register("B")
    m.bus("B1")
    m.bus("LINK", direct_link=True)
    m.module("ALU", ops=["ADD", "SUB"], latency=0, default_op="SUB")
    m.module(ModuleSpec("MUL", latency=2, sticky_illegal=False))
    m.add_transfer("(A,B1,B,LINK,1,ALU,1,B1,B)[SUB]")
    return m


class TestRoundTrip:
    def test_dumps_loads_identity(self):
        model = sample_model()
        again = loads(dumps(model))
        assert again.name == model.name
        assert again.cs_max == model.cs_max
        assert again.width == model.width
        assert set(again.registers) == set(model.registers)
        assert again.registers["A"].init == 9
        assert again.buses["LINK"].direct_link
        assert set(again.modules["ALU"].operations) == {"ADD", "SUB"}
        assert again.modules["ALU"].default_op == "SUB"
        assert not again.modules["MUL"].sticky_illegal
        assert [str(t) for t in again.transfers] == [
            str(t) for t in model.transfers
        ]

    def test_roundtripped_model_simulates_identically(self):
        model = sample_model()
        again = loads(dumps(model))
        assert (
            again.elaborate().run().registers
            == model.elaborate().run().registers
        )

    def test_file_io(self, tmp_path):
        from repro.core.serialize import dump

        path = tmp_path / "model.json"
        dump(sample_model(), path)
        assert load(path).name == "sample"

    def test_document_is_stable_json(self):
        doc = json.loads(dumps(sample_model()))
        assert doc["format"] == "repro-rt-model"
        assert doc["version"] == 1
        assert doc["transfers"] == ["(A,B1,B,LINK,1,ALU,1,B1,B)[SUB]"]


class TestErrors:
    def test_custom_operation_rejected(self):
        m = RTModel("custom", cs_max=2)
        m.module(
            ModuleSpec(
                "WEIRD",
                operations={"MYOP": Operation("MYOP", 2, lambda a, b: a)},
            )
        )
        with pytest.raises(SerializeError, match="not a standard operation"):
            dumps(m)

    def test_wrong_format_rejected(self):
        with pytest.raises(SerializeError, match="not a repro-rt-model"):
            model_from_dict({"format": "other"})

    def test_wrong_version_rejected(self):
        with pytest.raises(SerializeError, match="version"):
            model_from_dict({"format": "repro-rt-model", "version": 99})

    def test_invalid_json_rejected(self):
        with pytest.raises(SerializeError, match="invalid JSON"):
            loads("{nope")

    def test_missing_field_reported(self):
        with pytest.raises(SerializeError, match="missing field"):
            model_from_dict({"format": "repro-rt-model", "version": 1})

    def test_unknown_operation_rejected(self):
        doc = model_to_dict(sample_model())
        doc["modules"][0]["operations"] = ["FROBNICATE"]
        with pytest.raises(SerializeError, match="unknown standard"):
            model_from_dict(doc)
