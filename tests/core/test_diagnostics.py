"""ConflictLog behaviour: dedup by location, listener streaming."""

from repro.core.diagnostics import ConflictEvent, ConflictLog
from repro.core.phases import Phase, StepPhase


def event(signal="B1", step=2, phase=Phase.RB, sources=(("t1", 1), ("t2", 2))):
    return ConflictEvent(signal, StepPhase(step, phase), tuple(sources))


class TestDedup:
    def test_repeated_location_recorded_once(self):
        log = ConflictLog()
        log.record(event())
        log.record(event())
        assert len(log.events) == 1

    def test_distinct_signals_both_kept(self):
        log = ConflictLog()
        log.record(event("B1"))
        log.record(event("B2"))
        assert len(log.events) == 2

    def test_distinct_locations_both_kept(self):
        log = ConflictLog()
        log.record(event(step=2))
        log.record(event(step=3))
        log.record(event(step=3, phase=Phase.CM))
        assert len(log.events) == 3

    def test_unlocated_events_kept_verbatim(self):
        # The handshake style reports token conflicts without a
        # (CS, PH) location; those must never collapse.
        log = ConflictLog()
        log.record(ConflictEvent("out", None, ()))
        log.record(ConflictEvent("out", None, ()))
        assert len(log.events) == 2

    def test_dedup_keeps_first_sources(self):
        log = ConflictLog()
        log.record(event(sources=(("t1", 1),)))
        log.record(event(sources=(("t9", 9),)))
        assert log.events[0].sources == (("t1", 1),)

    def test_clean_flag(self):
        log = ConflictLog()
        assert log.clean
        log.record(event())
        assert not log.clean


class TestListener:
    def test_listener_sees_each_recorded_event(self):
        seen = []
        log = ConflictLog(listener=seen.append)
        first = event("B1")
        log.record(first)
        log.record(event("B2"))
        assert seen[0] is first
        assert len(seen) == 2

    def test_listener_not_called_for_duplicates(self):
        seen = []
        log = ConflictLog(listener=seen.append)
        log.record(event())
        log.record(event())
        assert len(seen) == 1

    def test_report_still_renders(self):
        log = ConflictLog()
        log.record(event())
        assert "ILLEGAL on B1" in log.report()
        assert "1 conflict(s)" in log.report()
