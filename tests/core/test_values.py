"""Tests for the subset's value domain and resolution function (§2.3)."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.values import (
    DISC,
    ILLEGAL,
    check_value,
    format_value,
    is_data,
    is_disc,
    is_illegal,
    resolve_rt,
)

# A strategy over representable values: naturals, DISC, ILLEGAL.
rt_values = st.one_of(
    st.integers(min_value=0, max_value=2**32 - 1),
    st.just(DISC),
    st.just(ILLEGAL),
)


class TestPredicates:
    def test_constants_match_paper(self):
        assert DISC == -1
        assert ILLEGAL == -2

    def test_classification_is_exclusive(self):
        for value in (0, 1, 17, DISC, ILLEGAL):
            flags = [is_data(value), is_disc(value), is_illegal(value)]
            assert sum(flags) == 1

    def test_check_value_accepts_domain(self):
        for value in (0, 5, DISC, ILLEGAL):
            assert check_value(value) == value

    def test_check_value_rejects_other_negatives(self):
        with pytest.raises(ValueError):
            check_value(-3)

    def test_check_value_rejects_non_ints(self):
        with pytest.raises(TypeError):
            check_value("5")
        with pytest.raises(TypeError):
            check_value(True)

    def test_format_value(self):
        assert format_value(DISC) == "DISC"
        assert format_value(ILLEGAL) == "ILLEGAL"
        assert format_value(42) == "42"


class TestResolution:
    """The paper's truth table, case by case."""

    def test_all_disc_resolves_disc(self):
        assert resolve_rt([DISC, DISC, DISC]) == DISC

    def test_empty_resolves_disc(self):
        assert resolve_rt([]) == DISC

    def test_single_value_passes_through(self):
        assert resolve_rt([DISC, 7, DISC]) == 7

    def test_two_values_collide(self):
        assert resolve_rt([3, DISC, 4]) == ILLEGAL

    def test_two_equal_values_still_collide(self):
        # Two non-DISC drivers are a conflict even with equal values:
        # the resolution counts sources, not values.
        assert resolve_rt([5, 5]) == ILLEGAL

    def test_any_illegal_poisons(self):
        assert resolve_rt([ILLEGAL, DISC]) == ILLEGAL
        assert resolve_rt([DISC, ILLEGAL, 9]) == ILLEGAL

    def test_zero_is_a_regular_value(self):
        assert resolve_rt([0, DISC]) == 0


class TestResolutionProperties:
    """Algebraic properties, checked with hypothesis."""

    @given(st.lists(rt_values, max_size=8))
    def test_result_is_representable(self, values):
        result = resolve_rt(values)
        assert result >= ILLEGAL

    @given(st.lists(rt_values, max_size=8))
    def test_order_independence(self, values):
        assert resolve_rt(values) == resolve_rt(list(reversed(values)))

    @given(st.lists(rt_values, max_size=8))
    def test_disc_is_identity_element(self, values):
        assert resolve_rt(values + [DISC]) == resolve_rt(values)

    @given(st.lists(rt_values, max_size=8))
    def test_illegal_is_absorbing(self, values):
        assert resolve_rt(values + [ILLEGAL]) == ILLEGAL

    @given(st.lists(rt_values, max_size=6), st.lists(rt_values, max_size=6))
    def test_associativity_via_nesting(self, left, right):
        # Resolving in two stages agrees with resolving flat, i.e. the
        # function is a commutative monoid fold (required for VHDL
        # resolution to be well-defined over driver subsets).
        flat = resolve_rt(left + right)
        staged = resolve_rt([resolve_rt(left), resolve_rt(right)])
        assert staged == flat

    @given(rt_values)
    def test_singleton_is_identity(self, value):
        assert resolve_rt([value]) == value
