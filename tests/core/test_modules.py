"""Tests for functional-unit processes (§2.6 and the §3 op extension)."""

import pytest

from repro.core.components import make_controller, make_trans
from repro.core.modules_lib import (
    ModuleSpec,
    Operation,
    alu_spec,
    make_module,
    standard_operation,
)
from repro.core.phases import Phase
from repro.core.values import DISC, ILLEGAL, resolve_rt
from repro.kernel import Simulator, wait_on


class Harness:
    """A controller plus one module, with helpers to feed operands."""

    def __init__(self, spec, cs_max=6):
        self.sim = Simulator()
        self.cs = self.sim.signal("CS", init=0)
        self.ph = self.sim.signal("PH", init=Phase.high())
        make_controller(self.sim, self.cs, self.ph, cs_max)
        self.inputs = [
            self.sim.signal(f"M_in{i+1}", init=DISC, resolution=resolve_rt)
            for i in range(spec.arity)
        ]
        self.out = self.sim.signal("M_out", init=DISC)
        self.op = None
        if spec.multi_op:
            self.op = self.sim.signal("M_op", init=DISC, resolution=resolve_rt)
        make_module(self.sim, spec, self.ph, self.inputs, self.out, self.op)
        self.spec = spec
        self.samples = {}
        self.sim.add_process("sampler", self._sampler)

    def _sampler(self):
        while True:
            yield wait_on(self.ph)
            # Sample the output in the WA phase: that is when transfer
            # processes would move it onto a bus.
            if self.ph.value is Phase.WA:
                self.samples[self.cs.value] = self.out.value

    def feed(self, step, *operands, op=None):
        """Drive the input ports during (step, rb..cm) like TRANS does."""
        for sig, value in zip(self.inputs, operands):
            if value is None:
                continue
            src = self.sim.signal(f"const_{sig.name}_{step}", init=value)
            make_trans(
                self.sim, self.cs, self.ph, step, Phase.RB, src, sig,
                name=f"feed_{sig.name}_{step}",
            )
        if op is not None:
            make_trans(
                self.sim, self.cs, self.ph, step, Phase.RB, None, self.op,
                source_value=self.spec.op_code(op), name=f"op_{step}",
            )

    def run(self):
        self.sim.run()
        return self.samples


class TestPaperAdder:
    """The §2.6 pipelined adder, latency 1."""

    def spec(self):
        return ModuleSpec("ADD", latency=1, pipelined=True)

    def test_result_appears_one_step_later(self):
        h = Harness(self.spec())
        h.feed(2, 10, 20)
        samples = h.run()
        assert samples[2] == DISC  # still computing
        assert samples[3] == 30  # result of step 2's operands
        assert samples[4] == DISC  # pipeline drained

    def test_pipelining_accepts_operands_every_step(self):
        h = Harness(self.spec())
        h.feed(1, 1, 2)
        h.feed(2, 3, 4)
        h.feed(3, 5, 6)
        samples = h.run()
        assert samples[2] == 3
        assert samples[3] == 7
        assert samples[4] == 11

    def test_single_operand_is_illegal(self):
        # "This model assumes that either both operand values are
        # natural values or both are DISC."
        h = Harness(self.spec())
        h.feed(2, 10, None)
        samples = h.run()
        assert samples[3] == ILLEGAL

    def test_illegal_freezes_the_module(self):
        # Paper's guard: if M /= ILLEGAL then ... -- once poisoned the
        # unit keeps producing ILLEGAL.
        h = Harness(self.spec())
        h.feed(1, 10, None)  # poison
        h.feed(3, 1, 2)  # would be fine otherwise
        samples = h.run()
        assert samples[2] == ILLEGAL
        assert samples[4] == ILLEGAL

    def test_non_sticky_module_recovers(self):
        spec = ModuleSpec("ADD", latency=1, pipelined=True, sticky_illegal=False)
        h = Harness(spec)
        h.feed(1, 10, None)
        h.feed(3, 1, 2)
        samples = h.run()
        assert samples[2] == ILLEGAL
        assert samples[4] == 3


class TestCombinationalModule:
    """Latency-0 units (the IKS adders)."""

    def test_result_available_same_step(self):
        spec = ModuleSpec("XADD", latency=0)
        h = Harness(spec)
        h.feed(2, 4, 5)
        samples = h.run()
        assert samples[2] == 9
        assert samples[3] == DISC

    def test_wraparound_at_width(self):
        spec = ModuleSpec("ADD8", latency=0, width=8)
        h = Harness(spec)
        h.feed(1, 200, 100)
        samples = h.run()
        assert samples[1] == (200 + 100) % 256


class TestPipelinedDepth2:
    """The IKS multiplier: 2-stage pipelined."""

    def spec(self):
        return ModuleSpec(
            "MULT",
            operations={"MULT": standard_operation("MULT")},
            latency=2,
            pipelined=True,
        )

    def test_two_step_latency(self):
        h = Harness(self.spec())
        h.feed(1, 6, 7)
        samples = h.run()
        assert samples[1] == DISC
        assert samples[2] == DISC
        assert samples[3] == 42

    def test_back_to_back_issue(self):
        h = Harness(self.spec())
        h.feed(1, 2, 3)
        h.feed(2, 4, 5)
        samples = h.run()
        assert samples[3] == 6
        assert samples[4] == 20


class TestNonPipelined:
    def spec(self):
        return ModuleSpec(
            "DIVIDER",
            operations={"MULT": standard_operation("MULT")},
            latency=2,
            pipelined=False,
        )

    def test_result_after_latency(self):
        # Same convention as pipelined units: operands at step s,
        # result available for WA at step s + latency.
        h = Harness(self.spec())
        h.feed(1, 3, 4)
        samples = h.run()
        assert samples[2] == DISC
        assert samples[3] == 12

    def test_operands_while_busy_poison_result(self):
        h = Harness(self.spec())
        h.feed(1, 3, 4)
        h.feed(2, 5, 6)  # arrives while busy
        samples = h.run()
        assert samples[3] == ILLEGAL

    def test_sequential_use_is_fine(self):
        # Minimum initiation interval of a non-pipelined unit is
        # latency + 1.
        h = Harness(self.spec(), cs_max=8)
        h.feed(1, 3, 4)
        h.feed(4, 5, 6)
        samples = h.run()
        assert samples[3] == 12
        assert samples[6] == 30


class TestOperationSelect:
    """§3: 'a register transfer also defines the operation to be
    performed by the module'."""

    def spec(self):
        return alu_spec("ALU", ["ADD", "SUB", "RSHIFT"], latency=0)

    def test_each_step_selects_its_operation(self):
        h = Harness(self.spec())
        h.feed(1, 10, 3, op="ADD")
        h.feed(2, 10, 3, op="SUB")
        h.feed(3, 16, 2, op="RSHIFT")
        samples = h.run()
        assert samples[1] == 13
        assert samples[2] == 7
        assert samples[3] == 4

    def test_default_op_when_port_disc(self):
        spec = alu_spec("ALU", ["ADD", "SUB"], default_op="ADD", latency=0)
        h = Harness(spec)
        h.feed(1, 10, 3)  # no op selected -> default
        samples = h.run()
        assert samples[1] == 13

    def test_conflicting_ops_poison_result(self):
        h = Harness(self.spec())
        h.feed(1, 10, 3, op="ADD")
        # A second op-select in the same step collides on the op port.
        make_trans(
            h.sim, h.cs, h.ph, 1, Phase.RB, None, h.op,
            source_value=h.spec.op_code("SUB"), name="op_dup",
        )
        samples = h.run()
        assert samples[1] == ILLEGAL


class TestModuleSpecValidation:
    def test_op_code_roundtrip(self):
        spec = alu_spec("ALU", ["ADD", "SUB", "MULT"])
        for name in spec.operations:
            assert spec.op_by_code(spec.op_code(name)).name == name

    def test_unknown_op_rejected(self):
        spec = alu_spec("ALU", ["ADD"])
        with pytest.raises(KeyError):
            spec.op_code("DIV")

    def test_bad_default_rejected(self):
        with pytest.raises(ValueError, match="default op"):
            ModuleSpec(
                "M",
                operations={"ADD": standard_operation("ADD")},
                default_op="SUB",
            )

    def test_negative_latency_rejected(self):
        with pytest.raises(ValueError, match="latency"):
            ModuleSpec("M", latency=-1)

    def test_input_port_count_enforced(self):
        sim = Simulator()
        ph = sim.signal("PH", init=Phase.high())
        out = sim.signal("out", init=DISC)
        spec = ModuleSpec("ADD", latency=1)
        with pytest.raises(ValueError, match="input ports"):
            make_module(sim, spec, ph, [], out)

    def test_multi_op_requires_op_port(self):
        sim = Simulator()
        ph = sim.signal("PH", init=Phase.high())
        spec = alu_spec("ALU", ["ADD", "SUB"])
        inputs = [
            sim.signal(f"i{i}", init=DISC, resolution=resolve_rt)
            for i in range(2)
        ]
        out = sim.signal("out", init=DISC)
        with pytest.raises(ValueError, match="op port"):
            make_module(sim, spec, ph, inputs, out)

    def test_standard_ops_cover_arities(self):
        assert standard_operation("PASS").arity == 1
        assert standard_operation("ADD").arity == 2
        with pytest.raises(KeyError):
            standard_operation("NOPE")

    def test_arshift_sign_extends(self):
        op = standard_operation("ARSHIFT")
        width = 32
        minus_8 = (1 << width) - 8
        result = op.apply([minus_8, 2], width)
        assert result == (1 << width) - 2  # -8 >> 2 == -2
