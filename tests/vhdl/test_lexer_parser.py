"""Tests for the VHDL subset lexer and parser."""

import pytest

from repro.vhdl import parse_expression, parse_file, tokenize
from repro.vhdl.lexer import VhdlSyntaxError
from repro.vhdl import ast as vast


class TestLexer:
    def test_identifiers_are_case_insensitive(self):
        tokens = tokenize("Foo FOO foo")
        assert [t.text for t in tokens[:-1]] == ["foo", "foo", "foo"]

    def test_keywords_recognized(self):
        tokens = tokenize("entity foo is end;")
        kinds = [(t.kind, t.text) for t in tokens[:-1]]
        assert kinds[0] == ("keyword", "entity")
        assert kinds[1] == ("ident", "foo")

    def test_compound_delimiters(self):
        tokens = tokenize("a <= b := c => d /= e >= f")
        delims = [t.text for t in tokens if t.kind == "delim"]
        assert delims == ["<=", ":=", "=>", "/=", ">="]

    def test_comments_stripped(self):
        tokens = tokenize("a -- whole line\nb")
        assert [t.text for t in tokens[:-1]] == ["a", "b"]

    def test_line_numbers_tracked(self):
        tokens = tokenize("a\n  b\nc")
        assert [(t.text, t.line) for t in tokens[:-1]] == [
            ("a", 1),
            ("b", 2),
            ("c", 3),
        ]

    def test_bad_character_reports_position(self):
        with pytest.raises(VhdlSyntaxError, match="line 2"):
            tokenize("ok\n  @bad")


class TestExpressionParser:
    def test_precedence(self):
        expr = parse_expression("a + b * c")
        assert isinstance(expr, vast.Binary)
        assert expr.op == "+"
        assert isinstance(expr.right, vast.Binary)
        assert expr.right.op == "*"

    def test_comparison_and_logic(self):
        expr = parse_expression("cs = s and ph = p")
        assert expr.op == "and"
        assert expr.left.op == "="

    def test_attributes(self):
        expr = parse_expression("phase'succ(p)")
        assert isinstance(expr, vast.Attr)
        assert expr.prefix == "phase"
        assert expr.name == "succ"
        assert isinstance(expr.arg, vast.Name)

    def test_attribute_without_arg(self):
        expr = parse_expression("phase'high")
        assert expr.arg is None

    def test_unary_minus(self):
        expr = parse_expression("-1")
        assert isinstance(expr, vast.Unary)
        assert expr.operand == vast.IntLit(1)

    def test_parenthesized(self):
        expr = parse_expression("(a + b) * c")
        assert expr.op == "*"
        assert expr.left.op == "+"

    def test_exponentiation_binds_tightest(self):
        expr = parse_expression("a / 2 ** b")
        assert expr.op == "/"
        assert expr.right.op == "**"

    def test_exponentiation_is_right_associative(self):
        expr = parse_expression("2 ** 3 ** 2")
        assert expr.op == "**"
        assert isinstance(expr.right, vast.Binary)
        assert expr.right.op == "**"

    def test_trailing_garbage_rejected(self):
        with pytest.raises(VhdlSyntaxError):
            parse_expression("a + b)")


class TestDesignParser:
    ENTITY = """
    entity trans is
      generic (s: natural; p: phase);
      port (cs: in natural;
            ph: in phase;
            ins: in integer;
            outs: out integer := disc);
    end trans;
    """

    def test_entity_interface(self):
        design = parse_file(self.ENTITY)
        entity = design.entities()["trans"]
        assert [g.name for g in entity.generics] == ["s", "p"]
        assert [p.name for p in entity.ports] == ["cs", "ph", "ins", "outs"]
        assert entity.ports[3].mode == "out"
        assert entity.ports[3].init is not None

    def test_architecture_with_process(self):
        text = self.ENTITY + """
        architecture transfer of trans is
        begin
          process
          begin
            wait until cs = s and ph = p;
            outs <= ins;
            wait until cs = s and ph = phase'succ(p);
            outs <= disc;
          end process;
        end transfer;
        """
        design = parse_file(text)
        arch = design.architectures()["trans"]
        proc = arch.statements[0]
        assert isinstance(proc, vast.ProcessStmt)
        assert len(proc.body) == 4
        assert isinstance(proc.body[0], vast.WaitStmt)
        assert isinstance(proc.body[1], vast.SignalAssign)

    def test_process_with_sensitivity_and_variables(self):
        text = """
        entity e is
          port (a: in integer; b: out integer);
        end e;
        architecture x of e is
        begin
          process (a)
            variable v: integer := 0;
          begin
            v := a + 1;
            b <= v;
          end process;
        end x;
        """
        proc = parse_file(text).architectures()["e"].statements[0]
        assert proc.sensitivity == ("a",)
        assert proc.decls[0].names == ("v",)

    def test_component_instantiation(self):
        text = """
        entity top is end top;
        architecture t of top is
          signal cs: natural := 0;
          signal ph: phase := cr;
          signal b1: resolved integer := disc;
        begin
          r1_out_b1_5: trans generic map (5, ra) port map (cs, ph, b1, b1);
          control: controller generic map (cs_max => 7) port map (cs, ph);
        end t;
        """
        arch = parse_file(text).architectures()["top"]
        inst = arch.statements[0]
        assert isinstance(inst, vast.ComponentInst)
        assert inst.entity == "trans"
        assert len(inst.generic_map) == 2
        named = arch.statements[1].generic_map[0]
        assert named.formal == "cs_max"

    def test_resolved_subtype_indication(self):
        text = """
        entity top is end top;
        architecture t of top is
          signal b1: resolved integer := disc;
        begin
        end t;
        """
        decl = parse_file(text).architectures()["top"].decls[0]
        assert decl.subtype.resolution == "resolved"
        assert decl.subtype.type_mark == "integer"

    def test_package_declaration(self):
        text = """
        package p is
          type phase is (ra, rb, cm, wa, wb, cr);
          constant disc: integer := -1;
        end package p;
        """
        package = parse_file(text).packages()[0]
        assert package.decls[0].literals == ("ra", "rb", "cm", "wa", "wb", "cr")

    def test_if_elsif_else(self):
        text = """
        entity e is port (a: in integer; b: out integer); end e;
        architecture x of e is
        begin
          process (a)
          begin
            if a = 0 then
              b <= 1;
            elsif a = 1 then
              b <= 2;
            else
              b <= 3;
            end if;
          end process;
        end x;
        """
        proc = parse_file(text).architectures()["e"].statements[0]
        if_stmt = proc.body[0]
        assert len(if_stmt.branches) == 3
        assert if_stmt.branches[2][0] is None  # else branch

    def test_library_and_use_clauses_ignored(self):
        text = """
        library ieee;
        use ieee.std_logic_1164.all;
        entity e is end e;
        """
        assert "e" in parse_file(text).entities()

    def test_mismatched_closing_name_rejected(self):
        with pytest.raises(VhdlSyntaxError, match="does not match"):
            parse_file("entity a is end b;")

    def test_component_declarations_skipped(self):
        text = """
        entity top is end top;
        architecture t of top is
          component trans
            generic (s: natural);
            port (x: in integer);
          end component;
          signal s: integer := 0;
        begin
        end t;
        """
        arch = parse_file(text).architectures()["top"]
        assert len(arch.decls) == 1  # only the signal survives
