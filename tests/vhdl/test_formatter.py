"""Tests for the VHDL pretty-printer: parse(format(parse(x))) == parse(x)."""

import pytest

from repro.core import ModuleSpec, RTModel
from repro.vhdl import EXAMPLE_FIG1, PAPER_LIBRARY, Elaborator, parse_file
from repro.vhdl.emitter import emit_model_vhdl
from repro.vhdl.formatter import format_expr, format_file
from repro.vhdl.parser import parse_expression


class TestExpressionFormatting:
    @pytest.mark.parametrize(
        "source",
        [
            "a + b * c",
            "(a + b) * c",
            "a - b - c",
            "a - (b - c)",
            "cs = s and ph = p",
            "not (a = b)",
            "-x + 3",
            "phase'succ(p)",
            "phase'high",
            "(a + b) mod 65536",
        ],
    )
    def test_format_parse_fixpoint(self, source):
        expr = parse_expression(source)
        text = format_expr(expr)
        assert parse_expression(text) == expr

    def test_minimal_parentheses(self):
        assert format_expr(parse_expression("a + (b * c)")) == "a + b * c"
        assert format_expr(parse_expression("(a + b) * c")) == "(a + b) * c"

    def test_left_associativity_preserved(self):
        # a - b - c parses left-assoc; the formatter must not turn it
        # into a - (b - c).
        expr = parse_expression("a - b - c")
        assert parse_expression(format_expr(expr)) == expr
        expr2 = parse_expression("a - (b - c)")
        text = format_expr(expr2)
        assert "(" in text
        assert parse_expression(text) == expr2


class TestFileFormatting:
    @pytest.mark.parametrize(
        "source",
        [PAPER_LIBRARY, EXAMPLE_FIG1, PAPER_LIBRARY + EXAMPLE_FIG1],
        ids=["library", "fig1", "both"],
    )
    def test_roundtrip_on_paper_sources(self, source):
        design = parse_file(source)
        formatted = format_file(design)
        assert parse_file(formatted) == design

    def test_idempotence(self):
        design = parse_file(PAPER_LIBRARY)
        once = format_file(design)
        twice = format_file(parse_file(once))
        assert once == twice

    def test_emitted_models_format_cleanly(self):
        m = RTModel("fmt", cs_max=4)
        m.register("A", init=1)
        m.register("B", init=2)
        m.register("S")
        m.bus("B1")
        m.bus("B2")
        m.module("ALU", ops=["ADD", "SUB"], latency=0)
        m.compute("ALU", dest="S", step=1, src1="A", bus1="B1",
                  src2="B", bus2="B2", op="ADD")
        text = emit_model_vhdl(m)
        design = parse_file(text)
        assert parse_file(format_file(design)) == design

    def test_formatted_source_still_elaborates(self):
        formatted = format_file(parse_file(EXAMPLE_FIG1))
        design = Elaborator(formatted).elaborate("example").run()
        assert design.signal("r1_out").value == 5
