"""Tests for elaboration and interpretation of the subset, including
the paper's own source code (§2.2-§2.7)."""

import pytest

from repro.core import DISC, ILLEGAL
from repro.vhdl import (
    EXAMPLE_FIG1,
    ElaborationError,
    Elaborator,
    check_subset,
)


class TestPaperLibrary:
    def test_paper_library_conforms_to_subset(self):
        from repro.vhdl import PAPER_LIBRARY

        report = check_subset(PAPER_LIBRARY, include_paper_library=False)
        assert report.conformant, str(report)

    def test_fig1_example_runs_from_source(self):
        design = Elaborator(EXAMPLE_FIG1).elaborate("example").run()
        assert design.signal("r1_out").value == 5
        assert design.signal("r2_out").value == 3

    def test_fig1_delta_cycles_match_claim(self):
        # CS_MAX = 7 in the instantiation -> 42 delta cycles.
        design = Elaborator(EXAMPLE_FIG1).elaborate("example").run()
        assert design.sim.stats.delta_cycles == 7 * 6

    def test_fig1_no_physical_time(self):
        design = Elaborator(EXAMPLE_FIG1).elaborate("example").run()
        assert design.sim.now.time == 0

    def test_controller_stops_at_cs_max(self):
        design = Elaborator(EXAMPLE_FIG1).elaborate("example").run()
        assert design.signal("cs").value == 7
        assert str(design.signal("ph").value) == "cr"
        assert design.sim.quiescent


class TestInterpreterSemantics:
    def test_conflicting_trans_instances_produce_illegal(self):
        # Two TRANS drive B1 in the same step/phase; a latching probe
        # captures the bus value in the rb cycle, where the ILLEGAL is
        # observable (paper §2.7).
        text = """
        entity probe is
          port (ph: in phase; sig: in integer; captured: out integer := disc);
        end probe;
        architecture a of probe is
        begin
          process
          begin
            wait until ph = rb;
            if sig /= disc then
              captured <= sig;
            end if;
          end process;
        end a;

        entity top is end top;
        architecture t of top is
          signal cs: natural := 0;
          signal ph: phase := cr;
          signal a_out: integer := 4;
          signal b_out: integer := 9;
          signal b1: resolved integer := disc;
          signal seen: integer := disc;
        begin
          t1: trans generic map (1, ra) port map (cs, ph, a_out, b1);
          t2: trans generic map (1, ra) port map (cs, ph, b_out, b1);
          p: probe port map (ph, b1, seen);
          control: controller generic map (2) port map (cs, ph);
        end t;
        """
        design = Elaborator(text).elaborate("top").run()
        assert design.signal("seen").value == ILLEGAL

    def test_adder_pipeline_from_paper_source(self):
        # Drive the paper's ADD directly and observe the 1-step latency.
        text = """
        entity top is end top;
        architecture t of top is
          signal cs: natural := 0;
          signal ph: phase := cr;
          signal x_out: integer := 10;
          signal y_out: integer := 20;
          signal a1, a2: resolved integer := disc;
          signal sum: integer := disc;
          signal b1: resolved integer := disc;
          signal r_in: resolved integer := disc;
          signal r_out: integer := disc;
        begin
          adder: add port map (ph, a1, a2, sum);
          tx: trans generic map (1, rb) port map (cs, ph, x_out, a1);
          ty: trans generic map (1, rb) port map (cs, ph, y_out, a2);
          twa: trans generic map (2, wa) port map (cs, ph, sum, b1);
          twb: trans generic map (2, wb) port map (cs, ph, b1, r_in);
          r: reg port map (ph, r_in, r_out);
          control: controller generic map (3) port map (cs, ph);
        end t;
        """
        design = Elaborator(text).elaborate("top").run()
        assert design.signal("r_out").value == 30

    def test_reg_init_generic(self):
        text = """
        entity top is end top;
        architecture t of top is
          signal ph: phase := cr;
          signal cs: natural := 0;
          signal r_in: resolved integer := disc;
          signal r_out: integer := disc;
        begin
          r: reg generic map (42) port map (ph, r_in, r_out);
          control: controller generic map (1) port map (cs, ph);
        end t;
        """
        design = Elaborator(text).elaborate("top").run()
        assert design.signal("r_out").value == 42

    def test_variables_are_process_local_state(self):
        text = """
        entity counter is port (tick: in phase; n: out natural := 0); end counter;
        architecture a of counter is
        begin
          process
            variable c: natural := 0;
          begin
            wait until tick = ra;
            c := c + 1;
            n <= c;
          end process;
        end a;

        entity top is end top;
        architecture t of top is
          signal cs: natural := 0;
          signal ph: phase := cr;
          signal count: natural := 0;
        begin
          u: counter port map (ph, count);
          control: controller generic map (4) port map (cs, ph);
        end t;
        """
        design = Elaborator(text).elaborate("top").run()
        assert design.signal("count").value == 4

    def test_generic_defaults_apply(self):
        text = """
        entity src is
          generic (v: integer := 7);
          port (o: out integer := 0);
        end src;
        architecture a of src is
        begin
          process
          begin
            o <= v;
            wait;
          end process;
        end a;
        entity top is end top;
        architecture t of top is
          signal x: integer := 0;
        begin
          u: src port map (x);
        end t;
        """
        design = Elaborator(text).elaborate("top").run()
        assert design.signal("x").value == 7

    def test_top_generics_via_python(self):
        text = """
        entity top is
          generic (n: natural);
          port (o: out natural := 0);
        end top;
        architecture t of top is
        begin
          process
          begin
            o <= n * 2;
            wait;
          end process;
        end t;
        """
        design = Elaborator(text).elaborate("top", generics={"n": 21}).run()
        assert design.signal("o").value == 42


class TestElaborationErrors:
    def test_unknown_entity(self):
        with pytest.raises(ElaborationError, match="no entity"):
            Elaborator("entity e is end e;").elaborate("nope")

    def test_missing_architecture(self):
        with pytest.raises(ElaborationError, match="no architecture"):
            Elaborator("entity e is end e;").elaborate("e")

    def test_unknown_component(self):
        text = """
        entity top is end top;
        architecture t of top is
        begin
          u: ghost port map (x);
        end t;
        """
        with pytest.raises(ElaborationError, match="unknown entity"):
            Elaborator(text).elaborate("top")

    def test_unconnected_port(self):
        text = """
        entity top is end top;
        architecture t of top is
          signal cs: natural := 0;
        begin
          control: controller generic map (1) port map (cs);
        end t;
        """
        with pytest.raises(ElaborationError, match="unconnected"):
            Elaborator(text).elaborate("top")

    def test_missing_generic(self):
        text = """
        entity top is end top;
        architecture t of top is
          signal cs: natural := 0;
          signal ph: phase := cr;
        begin
          control: controller port map (cs, ph);
        end t;
        """
        with pytest.raises(ElaborationError, match="generic"):
            Elaborator(text).elaborate("top")

    def test_process_without_wait_rejected(self):
        text = """
        entity top is end top;
        architecture t of top is
          signal x: integer := 0;
        begin
          process
          begin
            x <= 1;
          end process;
        end t;
        """
        with pytest.raises(ElaborationError, match="would loop forever"):
            Elaborator(text).elaborate("top")

    def test_sensitivity_plus_wait_rejected(self):
        text = """
        entity top is end top;
        architecture t of top is
          signal x: integer := 0;
        begin
          process (x)
          begin
            wait until x = 1;
          end process;
        end t;
        """
        with pytest.raises(ElaborationError, match="mutually exclusive"):
            Elaborator(text).elaborate("top")

    def test_second_driver_on_unresolved_signal(self):
        text = """
        entity top is end top;
        architecture t of top is
          signal x: integer := 0;
        begin
          p1: process begin x <= 1; wait; end process;
          p2: process begin x <= 2; wait; end process;
        end t;
        """
        from repro.kernel import ElaborationError as KernelElabError

        with pytest.raises(KernelElabError, match="unresolved"):
            Elaborator(text).elaborate("top")
