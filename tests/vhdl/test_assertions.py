"""Tests for assert/report/severity and the self-checking testbench
generator."""

import pytest

from repro.core import ModuleSpec, RTModel
from repro.kernel import ProcessError
from repro.vhdl import Elaborator, check_subset, emit_model_vhdl, parse_file
from repro.vhdl import ast as vast
from repro.vhdl.emitter import EmitterError
from repro.vhdl.formatter import format_file
from repro.vhdl.lexer import tokenize


def fig1_model():
    m = RTModel("example", cs_max=7)
    m.register("R1", init=2)
    m.register("R2", init=3)
    m.bus("B1")
    m.bus("B2")
    m.module(ModuleSpec("ADD", latency=1))
    m.add_transfer("(R1,B1,R2,B2,5,ADD,6,B1,R1)")
    return m


class TestLexerStrings:
    def test_string_literal(self):
        tokens = tokenize('report "hello world";')
        strings = [t for t in tokens if t.kind == "string"]
        assert strings[0].text == "hello world"

    def test_doubled_quote_escape(self):
        tokens = tokenize('"say ""hi"""')
        assert tokens[0].text == 'say "hi"'


class TestAssertParsing:
    def test_full_form(self):
        design = parse_file(
            """
            entity e is end e;
            architecture a of e is
            begin
              p: process
              begin
                assert 1 = 1 report "fine" severity warning;
                wait;
              end process;
            end a;
            """
        )
        stmt = design.architectures()["e"].statements[0].body[0]
        assert isinstance(stmt, vast.AssertStmt)
        assert stmt.report == "fine"
        assert stmt.severity == "warning"

    def test_defaults(self):
        design = parse_file(
            """
            entity e is end e;
            architecture a of e is
            begin
              p: process
              begin
                assert 1 = 1;
                wait;
              end process;
            end a;
            """
        )
        stmt = design.architectures()["e"].statements[0].body[0]
        assert stmt.report is None
        assert stmt.severity == "error"

    def test_bad_severity_rejected(self):
        from repro.vhdl.lexer import VhdlSyntaxError

        with pytest.raises(VhdlSyntaxError, match="severity"):
            parse_file(
                """
                entity e is end e;
                architecture a of e is
                begin
                  p: process begin assert 1 = 1 severity loud; wait;
                  end process;
                end a;
                """
            )

    def test_formatter_roundtrip(self):
        text = '''
        entity e is end e;
        architecture a of e is
        begin
          p: process
          begin
            assert 1 = 2 report "with ""quotes"" inside" severity note;
            assert 2 = 2;
            wait;
          end process;
        end a;
        '''
        design = parse_file(text)
        assert parse_file(format_file(design)) == design


class TestAssertSemantics:
    def run(self, body: str):
        text = f"""
        entity top is end top;
        architecture t of top is
          signal a: integer := 3;
        begin
          p: process
          begin
            {body}
            wait;
          end process;
        end t;
        """
        design = Elaborator(text).elaborate("top")
        design.run()
        return design

    def test_passing_assert_is_silent(self):
        design = self.run('assert a = 3 report "nope";')
        assert design.assertion_log == []

    def test_error_severity_aborts(self):
        with pytest.raises(ProcessError, match="went wrong"):
            self.run('assert a = 4 report "went wrong";')

    def test_failure_severity_aborts(self):
        with pytest.raises(ProcessError):
            self.run('assert a = 4 severity failure;')

    def test_note_and_warning_collected(self):
        design = self.run(
            'assert a = 4 report "n1" severity note;\n'
            'assert a = 5 report "w1" severity warning;'
        )
        assert len(design.assertion_log) == 2
        assert "n1" in design.assertion_log[0]
        assert "w1" in design.assertion_log[1]

    def test_default_message(self):
        with pytest.raises(ProcessError, match="assertion violation"):
            self.run("assert a = 4;")


class TestSelfCheckingTestbench:
    def test_passing_checks(self):
        text = emit_model_vhdl(fig1_model(), checks={"R1": 5, "R2": 3})
        assert check_subset(text).conformant
        design = Elaborator(text).elaborate("example").run()
        assert design.assertion_log == []

    def test_failing_check_aborts_with_register_name(self):
        text = emit_model_vhdl(fig1_model(), checks={"R1": 99})
        # String literals keep their case (identifiers lower-case).
        with pytest.raises(ProcessError, match="R1 expected 99"):
            Elaborator(text).elaborate("example").run()

    def test_unknown_register_rejected_at_emission(self):
        with pytest.raises(EmitterError, match="unknown registers"):
            emit_model_vhdl(fig1_model(), checks={"R9": 1})

    def test_checks_with_disc_expectation(self):
        from repro.core import DISC

        # A never-written register is expected to stay DISC.
        model = fig1_model()
        model.register("IDLE")
        text = emit_model_vhdl(model, checks={"IDLE": DISC})
        design = Elaborator(text).elaborate("example").run()
        assert design.assertion_log == []
