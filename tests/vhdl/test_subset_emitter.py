"""Tests for the subset checker and the RT-model VHDL emitter,
including the emit -> parse -> elaborate -> simulate round trip (E12's
correctness core)."""

import pytest

from repro.core import ModuleSpec, RTModel
from repro.handshake import chain_rt_model
from repro.vhdl import (
    EmitterError,
    check_subset,
    emit_model_vhdl,
    emit_module_entity,
    roundtrip_model,
)


def fig1_model(cs_max=7):
    m = RTModel("example", cs_max=cs_max)
    m.register("R1", init=2)
    m.register("R2", init=3)
    m.bus("B1")
    m.bus("B2")
    m.module(ModuleSpec("ADD", latency=1))
    m.add_transfer("(R1,B1,R2,B2,5,ADD,6,B1,R1)")
    return m


class TestSubsetChecker:
    def test_paper_example_conforms(self):
        from repro.vhdl import EXAMPLE_FIG1

        assert check_subset(EXAMPLE_FIG1).conformant

    def test_process_without_wait_flagged(self):
        text = """
        entity e is end e;
        architecture a of e is
          signal x: integer := 0;
        begin
          p: process begin x <= 1; end process;
        end a;
        """
        report = check_subset(text)
        assert not report.conformant
        assert any("never suspend" in str(v) for v in report.violations)

    def test_sensitivity_plus_wait_flagged(self):
        text = """
        entity e is end e;
        architecture a of e is
          signal x: integer := 0;
        begin
          p: process (x) begin wait until x = 1; end process;
        end a;
        """
        report = check_subset(text)
        assert any("illegal VHDL" in str(v) for v in report.violations)

    def test_unknown_type_flagged(self):
        text = """
        entity e is
          port (x: in std_logic);
        end e;
        """
        report = check_subset(text)
        assert any("unknown type" in str(v) for v in report.violations)

    def test_unknown_resolution_flagged(self):
        text = """
        entity e is end e;
        architecture a of e is
          signal x: wired_or integer := 0;
        begin
        end a;
        """
        report = check_subset(text)
        assert any("resolution" in str(v) for v in report.violations)

    def test_assignment_to_input_port_flagged(self):
        text = """
        entity e is
          port (x: in integer);
        end e;
        architecture a of e is
        begin
          p: process begin x <= 1; wait; end process;
        end a;
        """
        report = check_subset(text)
        assert any("not a local signal" in str(v) for v in report.violations)

    def test_unknown_instance_flagged(self):
        text = """
        entity e is end e;
        architecture a of e is
        begin
          u: ghost port map (x);
        end a;
        """
        report = check_subset(text)
        assert any("unknown entity" in str(v) for v in report.violations)

    def test_report_string(self):
        assert "conforms" in str(check_subset("entity e is end e;"))


class TestModuleEmission:
    def test_adder_entity_follows_paper_pattern(self):
        text = emit_module_entity(ModuleSpec("ADD", latency=1))
        assert "wait until PH = cm;" in text
        assert "M_out <= P0;" in text  # the pipeline variable
        assert "V := ILLEGAL;" in text  # all-or-none rule

    def test_multi_op_module_decodes_op_port(self):
        from repro.core import alu_spec

        text = emit_module_entity(alu_spec("ALU", ["ADD", "SUB"], latency=0))
        assert "M_op: in Integer" in text
        assert "elsif M_op = 1 then" in text

    def test_unary_module(self):
        from repro.core import standard_operation, ModuleSpec

        spec = ModuleSpec(
            "CP", operations={"COPY": standard_operation("COPY")}, latency=0
        )
        text = emit_module_entity(spec)
        assert "M_in1: in Integer" in text
        assert "M_in2" not in text

    def test_coarse_grain_op_rejected(self):
        from repro.iks.chip import cordic_operations
        from repro.iks import CordicSpec, DEFAULT_FORMAT

        spec = ModuleSpec(
            "CORDIC",
            operations=cordic_operations(CordicSpec(DEFAULT_FORMAT)),
            latency=4,
            pipelined=False,
        )
        with pytest.raises(EmitterError):
            emit_module_entity(spec)


class TestRoundTrip:
    def test_fig1_roundtrip(self):
        m = fig1_model()
        assert roundtrip_model(m) == m.elaborate().run().registers

    def test_emitted_design_conforms(self):
        report = check_subset(emit_model_vhdl(fig1_model()))
        assert report.conformant, str(report)

    def test_roundtrip_with_register_overrides(self):
        m = fig1_model()
        got = roundtrip_model(m, register_values={"R1": 10, "R2": 30})
        assert got["R1"] == 40

    @pytest.mark.parametrize("n", [3, 8])
    def test_chain_roundtrip(self, n):
        m = chain_rt_model(list(range(1, n + 1)))
        assert roundtrip_model(m) == m.elaborate().run().registers

    def test_opselect_and_copy_roundtrip(self):
        m = RTModel("opsmodel", cs_max=6)
        m.register("A", init=10)
        m.register("B", init=4)
        m.register("S")
        m.bus("X1")
        m.bus("X2")
        m.module("ALU", ops=["ADD", "SUB"], latency=0)
        m.compute(
            "ALU", dest="S", step=1, src1="A", bus1="X1", src2="B", bus2="X2",
            op="SUB",
        )
        m.copy_transfer("S", "A", step=3)
        assert roundtrip_model(m) == m.elaborate().run().registers

    def test_hls_output_roundtrip(self):
        from repro.hls import synthesize

        res = synthesize("t = (a + b) * (c - d)\nout = t + t")
        inputs = {"a": 9, "b": 2, "c": 8, "d": 3}
        native = res.simulate(inputs)
        vhdl_regs = roundtrip_model(res.model, register_values=inputs)
        for var, reg in res.output_regs.items():
            assert vhdl_regs[reg] == native[var]

    def test_shift_operations_roundtrip(self):
        # Regression: shift ops emit as "a / (2 ** b)" -- the parser
        # must accept exponentiation.
        m = RTModel("shifty", cs_max=4)
        m.register("A", init=64)
        m.register("B", init=2)
        m.register("S")
        m.bus("X1")
        m.bus("X2")
        m.module("SH", ops=["RSHIFT", "LSHIFT"], latency=0)
        m.compute("SH", dest="S", step=1, src1="A", bus1="X1",
                  src2="B", bus2="X2", op="RSHIFT")
        got = roundtrip_model(m)
        assert got == m.elaborate().run().registers
        assert got["S"] == 16

    def test_conflicting_model_roundtrips_to_illegal(self):
        from repro.core import ILLEGAL

        m = fig1_model()
        m.register("R3", init=9)
        m.add_transfer("(R3,B1,-,-,5,ADD,-,-,-)")
        got = roundtrip_model(m)
        native = m.elaborate().run().registers
        assert got == native
        assert got["R1"] == ILLEGAL
