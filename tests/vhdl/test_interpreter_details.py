"""Detailed semantics tests for the VHDL interpreter: arithmetic
operators, attributes, and edge cases not covered by the component
tests."""

import pytest

from repro.vhdl import Elaborator
from repro.vhdl.elaborator import InterpretationError


def run_expr(expr: str, decls: str = "") -> int:
    """Evaluate an expression in a one-shot process; return the result."""
    text = f"""
    entity top is end top;
    architecture t of top is
      signal result: integer := 0;
      {decls}
    begin
      p: process
      begin
        result <= {expr};
        wait;
      end process;
    end t;
    """
    design = Elaborator(text).elaborate("top").run()
    return design.signal("result").value


class TestArithmetic:
    def test_division_truncates_toward_zero(self):
        assert run_expr("7 / 2") == 3
        assert run_expr("(0 - 7) / 2") == -3  # not floor (-4)

    def test_mod_has_divisor_sign(self):
        assert run_expr("7 mod 3") == 1
        assert run_expr("(0 - 7) mod 3") == 2  # LRM: sign of divisor

    def test_rem_has_dividend_sign(self):
        assert run_expr("7 rem 3") == 1
        assert run_expr("(0 - 7) rem 3") == -1

    def test_exponentiation(self):
        assert run_expr("2 ** 10") == 1024
        assert run_expr("64 / (2 ** 2)") == 16

    def test_division_by_zero_reported(self):
        # Runtime errors inside a process surface as ProcessError with
        # the original message preserved.
        from repro.kernel import ProcessError

        with pytest.raises(ProcessError, match="division by zero"):
            run_expr("1 / 0")

    def test_mod_by_zero_reported(self):
        from repro.kernel import ProcessError

        with pytest.raises(ProcessError, match="mod by zero"):
            run_expr("1 mod 0")

    def test_unary_minus_chains(self):
        assert run_expr("-(3 + 4)") == -7


class TestBooleansAndComparison:
    def test_xor(self):
        text = """
        entity top is end top;
        architecture t of top is
          signal result: integer := 0;
        begin
          p: process
          begin
            if (1 = 1) xor (2 = 3) then
              result <= 1;
            end if;
            wait;
          end process;
        end t;
        """
        design = Elaborator(text).elaborate("top").run()
        assert design.signal("result").value == 1

    def test_enum_comparisons_by_position(self):
        text = """
        entity top is end top;
        architecture t of top is
          signal result: integer := 0;
        begin
          p: process
          begin
            if ra < cm and cr >= wb then
              result <= 1;
            end if;
            wait;
          end process;
        end t;
        """
        design = Elaborator(text).elaborate("top").run()
        assert design.signal("result").value == 1

    def test_integer_condition_rejected(self):
        text = """
        entity top is end top;
        architecture t of top is
          signal result: integer := 0;
        begin
          p: process
          begin
            if 1 then
              result <= 1;
            end if;
            wait;
          end process;
        end t;
        """
        from repro.kernel import ProcessError

        with pytest.raises((InterpretationError, ProcessError)):
            Elaborator(text).elaborate("top").run()


class TestAttributes:
    def test_pos_and_val(self):
        assert run_expr("phase'pos(cm)") == 2

    def test_val_roundtrip(self):
        text = """
        entity top is end top;
        architecture t of top is
          signal result: integer := 0;
        begin
          p: process
          begin
            if phase'val(2) = cm then
              result <= 1;
            end if;
            wait;
          end process;
        end t;
        """
        design = Elaborator(text).elaborate("top").run()
        assert design.signal("result").value == 1

    def test_succ_out_of_range_reported(self):
        text = """
        entity top is end top;
        architecture t of top is
          signal ph2: phase := cr;
        begin
          p: process
          begin
            ph2 <= phase'succ(cr);
            wait;
          end process;
        end t;
        """
        from repro.kernel import ProcessError

        with pytest.raises((InterpretationError, ProcessError),
                           match="out of range"):
            Elaborator(text).elaborate("top").run()

    def test_attr_on_non_type_rejected(self):
        with pytest.raises((InterpretationError, Exception),
                           match="not a type"):
            run_expr("result'high")

    def test_left_right(self):
        assert run_expr("phase'pos(phase'left)") == 0
        assert run_expr("phase'pos(phase'right)") == 5


class TestWaitOnForm:
    def test_wait_on_signals(self):
        text = """
        entity top is end top;
        architecture t of top is
          signal a: integer := 0;
          signal seen: integer := 0;
        begin
          writer: process
          begin
            a <= 5;
            wait;
          end process;
          reader: process
          begin
            wait on a;
            seen <= a;
            wait;
          end process;
        end t;
        """
        design = Elaborator(text).elaborate("top").run()
        assert design.signal("seen").value == 5

    def test_plain_wait_suspends_forever(self):
        text = """
        entity top is end top;
        architecture t of top is
          signal a: integer := 0;
        begin
          p: process
          begin
            a <= 1;
            wait;
            a <= 2;
          end process;
        end t;
        """
        design = Elaborator(text).elaborate("top").run()
        assert design.signal("a").value == 1  # never reaches the second
