"""VHDL -> RTModel recovery (the emitter's inverse)."""

import pytest

from repro.core import DISC, ModuleSpec, RTModel
from repro.core.modules_lib import _standard_operations
from repro.vhdl import (
    EXAMPLE_FIG1,
    ImporterError,
    emit_model_vhdl,
    recover_model,
)


def fig1_model(cs_max=7):
    model = RTModel("example", cs_max=cs_max)
    model.register("R1", init=2)
    model.register("R2", init=3)
    model.bus("B1")
    model.bus("B2")
    model.module(ModuleSpec("ADD", latency=1))
    model.add_transfer("(R1,B1,R2,B2,5,ADD,6,B1,R1)")
    return model


def multi_op_model():
    ops = _standard_operations(8)
    model = RTModel("mix", cs_max=6, width=8)
    model.register("r1", init=7)
    model.register("r2", init=9)
    model.register("r3")
    model.bus("b1")
    model.bus("b2")
    model.bus("b3")
    model.module(
        ModuleSpec(
            "alu",
            operations={k: ops[k] for k in ("ADD", "SUB", "MULT")},
            default_op="ADD",
            latency=0,
            width=8,
        )
    )
    model.module(
        ModuleSpec(
            "neg",
            operations={"NEG": ops["NEG"]},
            latency=1,
            width=8,
            sticky_illegal=False,
        )
    )
    model.compute("alu", "r3", 1, src1="r1", bus1="b1", src2="r2",
                  bus2="b2", op="SUB")
    model.compute("neg", "r1", 2, src1="r3", bus1="b3", write_bus="b3")
    model.compute("alu", "r2", 4, src1="r1", bus1="b1", src2="r3",
                  bus2="b2", op="MULT")
    return model


class TestPaperExample:
    def test_fig1_structure(self):
        model = recover_model(EXAMPLE_FIG1, "example")
        assert model.cs_max == 7
        assert {n: d.init for n, d in model.registers.items()} == {
            "r1": 2, "r2": 3,
        }
        assert sorted(model.buses) == ["b1", "b2"]
        add = model.modules["add"]
        assert sorted(add.operations) == ["ADD"]
        assert add.latency == 1
        assert add.sticky_illegal  # the §2.6 'if M /= ILLEGAL' guard
        assert len(model.transfers) == 1

    @pytest.mark.parametrize("backend", ["event", "compiled"])
    def test_fig1_simulates(self, backend):
        model = recover_model(EXAMPLE_FIG1, "example")
        sim = model.elaborate(backend=backend).run()
        assert sim.registers == {"r1": 5, "r2": 3}
        assert sim.stats.delta_cycles == 42
        assert sim.clean


class TestEmitterRoundTrip:
    def test_fig1_emit_recover(self):
        model = fig1_model()
        recovered = recover_model(emit_model_vhdl(model), "example")
        assert recovered.cs_max == model.cs_max
        native = model.elaborate(backend="compiled").run()
        again = recovered.elaborate(backend="compiled").run()
        assert {k.lower(): v for k, v in native.registers.items()} == \
            again.registers
        assert native.stats.delta_cycles == again.stats.delta_cycles

    def test_multi_op_latency0_nonsticky_roundtrip(self):
        model = multi_op_model()
        text = emit_model_vhdl(model)
        recovered = recover_model(text, "mix")
        alu = recovered.modules["alu"]
        assert sorted(alu.operations) == ["ADD", "MULT", "SUB"]
        assert alu.default_op == "ADD"
        assert alu.latency == 0
        neg = recovered.modules["neg"]
        assert sorted(neg.operations) == ["NEG"]
        assert neg.latency == 1
        assert not neg.sticky_illegal
        assert recovered.width == 8
        for backend in ("event", "compiled"):
            native = model.elaborate(backend=backend).run()
            again = recovered.elaborate(backend=backend).run()
            assert native.registers == again.registers
            assert native.stats.delta_cycles == again.stats.delta_cycles

    def test_checker_process_is_skipped(self):
        model = fig1_model()
        text = emit_model_vhdl(model, checks={"R1": 5})
        recovered = recover_model(text, "example")
        assert recovered.elaborate(backend="compiled").run()["r1"] == 5

    def test_uninitialized_register_recovers_disc(self):
        model = multi_op_model()
        recovered = recover_model(emit_model_vhdl(model), "mix")
        assert recovered.registers["r3"].init == DISC


class TestRejections:
    def test_unknown_top(self):
        with pytest.raises(ImporterError, match="no architecture"):
            recover_model(EXAMPLE_FIG1, "missing")

    def test_non_checker_process_rejected(self):
        text = EXAMPLE_FIG1 + """
architecture extra of example is
  signal x: Integer := 0;
begin
  rogue: process
  begin
    wait until x = 1;
    x <= 2;
  end process;
end extra;
"""
        with pytest.raises(ImporterError, match="checker"):
            recover_model(text, "example")

    def test_missing_controller(self):
        text = """
entity bare is
end bare;

architecture transfer of bare is
  signal r1_in: resolved Integer := DISC;
  signal r1_out: Integer := DISC;
begin
  r1_proc: REG generic map (0) port map (PH, r1_in, r1_out);
end transfer;
"""
        with pytest.raises(ImporterError, match="CONTROLLER"):
            recover_model(text, "bare")
