"""Tests for the clocked back end (translation, simulation,
equivalence, VHDL emission)."""

import pytest

from repro.clocked import (
    TranslationError,
    check_equivalence,
    clockfree_step_trace,
    elaborate_clocked,
    emit_clocked_vhdl,
    simulate_cycles,
    translate,
)
from repro.core import DISC, ModuleSpec, RTModel
from repro.handshake import chain_expected, chain_rt_model


def fig1_model():
    m = RTModel("example", cs_max=7)
    m.register("R1", init=2)
    m.register("R2", init=3)
    m.bus("B1")
    m.bus("B2")
    m.module(ModuleSpec("ADD", latency=1))
    m.add_transfer("(R1,B1,R2,B2,5,ADD,6,B1,R1)")
    return m


class TestTranslate:
    def test_decode_tables_for_fig1(self):
        tr = translate(fig1_model())
        issue = tr.issues["ADD"][5]
        assert issue.left == "R1" and issue.right == "R2"
        write = tr.writes["R1"][6]
        assert write.module == "ADD"
        assert tr.cycles == 7

    def test_conflicting_schedule_rejected(self):
        m = fig1_model()
        m.register("R3", init=9)
        m.add_transfer("(R3,B1,-,-,5,ADD,-,-,-)")
        with pytest.raises(TranslationError, match="conflicting"):
            translate(m)

    def test_orphan_write_half_rejected(self):
        m = RTModel("orphan", cs_max=4)
        m.register("R1", init=1)
        m.bus("B1")
        m.module(ModuleSpec("ADD", latency=1))
        m.add_transfer("(-,-,-,-,-,ADD,3,B1,R1)")
        with pytest.raises(TranslationError, match="no issue"):
            translate(m)

    def test_split_operand_halves_merge(self):
        m = RTModel("split", cs_max=4)
        m.register("A", init=1)
        m.register("B", init=2)
        m.register("S")
        m.bus("B1")
        m.bus("B2")
        m.module(ModuleSpec("ADD", latency=1))
        m.add_transfer("(A,B1,-,-,1,ADD,-,-,-)")
        m.add_transfer("(-,-,B,B2,1,ADD,-,-,-)")
        m.add_transfer("(-,-,-,-,-,ADD,2,B1,S)")
        tr = translate(m)
        issue = tr.issues["ADD"][1]
        assert issue.left == "A" and issue.right == "B"
        assert simulate_cycles(tr).registers["S"] == 3

    def test_describe_mentions_units_and_registers(self):
        text = translate(fig1_model()).describe()
        assert "unit ADD" in text
        assert "reg R1" in text


class TestCycleSimulator:
    def test_fig1_result(self):
        run = simulate_cycles(translate(fig1_model()))
        assert run.registers["R1"] == 5
        assert run.registers["R2"] == 3

    def test_per_cycle_trace(self):
        run = simulate_cycles(translate(fig1_model()))
        # The adder result lands in R1 at the end of cycle 6.
        assert run.after_cycle("R1", 5) == 2
        assert run.after_cycle("R1", 6) == 5
        assert run.after_cycle("R1", 7) == 5

    def test_register_value_overrides(self):
        run = simulate_cycles(
            translate(fig1_model()), register_values={"R1": 10, "R2": 30}
        )
        assert run.registers["R1"] == 40

    def test_uninitialized_register_stays_disc(self):
        m = RTModel("idle", cs_max=2)
        m.register("R1")
        m.register("R2", init=4)
        m.bus("B1")
        m.module(ModuleSpec("ADD", latency=1))
        run = simulate_cycles(translate(m))
        assert run.registers["R1"] == DISC

    def test_chain_matches_direct_fold(self):
        ops = list(range(2, 12))
        run = simulate_cycles(translate(chain_rt_model(ops)))
        assert run.registers["ACC"] == chain_expected(ops)


class TestKernelClockedModel:
    def test_fig1_on_kernel(self):
        sim = elaborate_clocked(translate(fig1_model())).run()
        assert sim.registers["R1"] == 5

    def test_physical_time_advances(self):
        handle = elaborate_clocked(translate(fig1_model()), half_period=5)
        handle.run()
        # 7 cycles x 10 ns.
        assert handle.sim.now.time == 7 * 10

    def test_kernel_matches_cycle_sim(self):
        ops = [3, 1, 4, 1, 5, 9, 2, 6]
        tr = translate(chain_rt_model(ops))
        fast = simulate_cycles(tr)
        slow = elaborate_clocked(tr).run()
        assert slow.registers == fast.registers

    def test_clocked_costs_more_events_than_clockfree(self):
        # The cost asymmetry the paper's subset exploits: every clock
        # edge wakes every register process.
        ops = list(range(1, 17))
        model = chain_rt_model(ops)
        rt = model.elaborate().run()
        ck = elaborate_clocked(translate(model)).run()
        assert ck.stats.process_resumes > 0
        assert ck.sim.now.time > 0  # physical time was needed
        assert rt.sim.now.time == 0  # the subset needs none


class TestEquivalence:
    def test_fig1_equivalent(self):
        report = check_equivalence(fig1_model())
        assert report.equivalent
        assert "equivalent" in str(report)

    @pytest.mark.parametrize("n", [2, 7, 20])
    def test_chains_equivalent(self, n):
        report = check_equivalence(chain_rt_model(list(range(1, n + 1))))
        assert report.equivalent

    def test_iks_chip_equivalent(self):
        from repro.iks.flow import build_ik_model

        model, _ = build_ik_model(1.0, 2.0)
        report = check_equivalence(model)
        assert report.equivalent, str(report)

    def test_mismatch_detection(self):
        # Corrupt the translation deliberately: write from the wrong
        # module latency by patching the decode table.
        m = fig1_model()
        tr = translate(m)
        from repro.clocked.translate import RegWrite

        tr.writes["R1"][6] = RegWrite(step=6, register="R1", module="ADD")
        tr.issues["ADD"][5] = tr.issues["ADD"][5].__class__(
            step=5, op="ADD", left="R2", right="R2"
        )
        report = check_equivalence(m, translation=tr)
        assert not report.equivalent
        assert report.mismatches[0].register == "R1"

    def test_step_trace_extraction(self):
        m = fig1_model()
        sim = m.elaborate(trace=True).run()
        trace = clockfree_step_trace(sim)
        assert trace["R1"][5] == 2
        assert trace["R1"][6] == 5
        assert trace["R1"][7] == 5

    def test_step_trace_requires_tracing(self):
        sim = fig1_model().elaborate().run()
        with pytest.raises(ValueError, match="trace=True"):
            clockfree_step_trace(sim)


class TestVhdlEmission:
    def test_emitted_text_is_structurally_plausible(self):
        text = emit_clocked_vhdl(translate(fig1_model()))
        assert "entity example_clocked is" in text
        assert "rising_edge(clk)" in text
        assert "when 5 => add_y <= r1_q + r2_q;" in text
        assert text.count("end process;") >= 3

    def test_shift_add_operations_emitted(self):
        m = RTModel("shifty", cs_max=3)
        m.register("A", init=8)
        m.register("B", init=4)
        m.register("S")
        m.bus("B1")
        m.bus("B2")
        m.module("SH", ops=["ADD", "ARSHIFT"], latency=0)
        m.compute("SH", dest="S", step=1, src1="A", bus1="B1", src2="B", bus2="B2", op="ARSHIFT")
        text = emit_clocked_vhdl(translate(m))
        assert "arshift(" in text or "shift_right" in text

    def test_balanced_case_statements(self):
        text = emit_clocked_vhdl(translate(chain_rt_model([1, 2, 3, 4])))
        assert text.count("case state is") == text.count("end case;")
