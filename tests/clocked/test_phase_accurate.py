"""Tests for the phase-accurate (six cycles per step) clocked mapping."""

import pytest

from repro.clocked import TranslationError
from repro.clocked.phase_accurate import (
    check_phase_accurate_equivalence,
    simulate_phase_accurate,
)
from repro.core import ModuleSpec, RTModel
from repro.handshake import chain_expected, chain_rt_model


def fig1_model():
    m = RTModel("example", cs_max=7)
    m.register("R1", init=2)
    m.register("R2", init=3)
    m.bus("B1")
    m.bus("B2")
    m.module(ModuleSpec("ADD", latency=1))
    m.add_transfer("(R1,B1,R2,B2,5,ADD,6,B1,R1)")
    return m


class TestPhaseAccurateSimulation:
    def test_fig1_result(self):
        run = simulate_phase_accurate(fig1_model())
        assert run.registers["R1"] == 5
        assert run.registers["R2"] == 3

    def test_six_cycles_per_step(self):
        run = simulate_phase_accurate(fig1_model())
        assert run.clock_cycles == 7 * 6

    def test_per_step_trace(self):
        run = simulate_phase_accurate(fig1_model())
        assert run.after_step("R1", 5) == 2
        assert run.after_step("R1", 6) == 5

    def test_register_overrides(self):
        run = simulate_phase_accurate(
            fig1_model(), register_values={"R1": 10, "R2": 30}
        )
        assert run.registers["R1"] == 40

    def test_chain_matches_fold(self):
        ops = list(range(2, 10))
        run = simulate_phase_accurate(chain_rt_model(ops))
        assert run.registers["ACC"] == chain_expected(ops)

    def test_multi_op_and_copy_paths(self):
        m = RTModel("ops", cs_max=6)
        m.register("A", init=10)
        m.register("B", init=4)
        m.register("S")
        m.bus("X1")
        m.bus("X2")
        m.module("ALU", ops=["ADD", "SUB"], latency=0)
        m.compute("ALU", dest="S", step=1, src1="A", bus1="X1",
                  src2="B", bus2="X2", op="SUB")
        m.copy_transfer("S", "A", step=3)
        run = simulate_phase_accurate(m)
        native = m.elaborate().run().registers
        assert run.registers == native

    def test_conflicting_schedule_rejected(self):
        m = fig1_model()
        m.register("R3", init=9)
        m.add_transfer("(R3,B1,-,-,5,ADD,-,-,-)")
        with pytest.raises(TranslationError, match="conflicting"):
            simulate_phase_accurate(m)


class TestPhaseAccurateEquivalence:
    @pytest.mark.parametrize(
        "factory",
        [fig1_model, lambda: chain_rt_model(list(range(1, 13)))],
        ids=["fig1", "chain12"],
    )
    def test_equivalent_to_clock_free(self, factory):
        report = check_phase_accurate_equivalence(factory())
        assert report.equivalent, str(report)

    def test_iks_chip_equivalent(self):
        from repro.iks.flow import build_ik_model

        model, _ = build_ik_model(2.5, 1.0)
        report = check_phase_accurate_equivalence(model)
        assert report.equivalent, str(report)

    def test_cycle_count_tradeoff(self):
        # The two mappings bracket the design space: dense = cs_max
        # cycles, phase-accurate = cs_max * 6.
        from repro.clocked import translate

        model = fig1_model()
        dense = translate(model)
        run = simulate_phase_accurate(model)
        assert run.clock_cycles == dense.cycles * 6
