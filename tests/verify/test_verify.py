"""Tests for symbolic execution, equivalence checking, and the
tuple <-> TRANS round-trip proofs (paper's 'automatic proving
procedure')."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import ModuleSpec, RTModel, RegisterTransfer
from repro.hls import parse_program, synthesize
from repro.verify import (
    SymOp,
    SymVar,
    SymbolicError,
    all_equivalent,
    canonical_tuples,
    check_model_roundtrip,
    check_program_vs_model,
    normalize,
    program_symbolic_env,
    sym_vars,
    symbolic_run,
)


def fig1_model():
    m = RTModel("example", cs_max=7)
    m.register("R1")
    m.register("R2")
    m.bus("B1")
    m.bus("B2")
    m.module(ModuleSpec("ADD", latency=1))
    m.add_transfer("(R1,B1,R2,B2,5,ADD,6,B1,R1)")
    return m


class TestSymbolicRun:
    def test_fig1_expression(self):
        run = symbolic_run(fig1_model(), symbolic_registers=["R1", "R2"])
        assert str(run.expr("R1")) == "ADD(R1, R2)"
        assert str(run.expr("R2")) == "R2"

    def test_constant_folding(self):
        m = RTModel("const", cs_max=3)
        m.register("A", init=4)
        m.register("B", init=5)
        m.register("S")
        m.bus("B1")
        m.bus("B2")
        m.module(ModuleSpec("ADD", latency=1))
        m.add_transfer("(A,B1,B,B2,1,ADD,2,B1,S)")
        run = symbolic_run(m)
        assert str(run.expr("S")) == "9"

    def test_concrete_evaluation(self):
        run = symbolic_run(fig1_model(), symbolic_registers=["R1", "R2"])
        assert run.concrete("R1", {"R1": 20, "R2": 22}) == 42

    def test_free_variables(self):
        run = symbolic_run(fig1_model(), symbolic_registers=["R1", "R2"])
        assert sym_vars(run.expr("R1")) == {"R1", "R2"}

    def test_unwritten_register_raises(self):
        m = fig1_model()
        m.register("R9")  # never written, never read
        run = symbolic_run(m, symbolic_registers=["R1", "R2"])
        with pytest.raises(SymbolicError, match="no value"):
            run.expr("R9")

    def test_reading_empty_register_raises(self):
        m = fig1_model()  # R1/R2 start DISC and are not symbolic
        with pytest.raises(SymbolicError, match="holds no value"):
            symbolic_run(m)

    def test_unknown_symbolic_register(self):
        with pytest.raises(SymbolicError, match="unknown"):
            symbolic_run(fig1_model(), symbolic_registers=["R9"])

    def test_conflicting_model_rejected(self):
        m = fig1_model()
        m.register("R3", init=1)
        m.add_transfer("(R3,B1,-,-,5,ADD,-,-,-)")
        with pytest.raises(SymbolicError, match="conflicting"):
            symbolic_run(m, symbolic_registers=["R1", "R2"])

    def test_pipelined_latency_respected(self):
        m = RTModel("mul", cs_max=5)
        m.register("A")
        m.register("B")
        m.register("P")
        m.bus("B1")
        m.bus("B2")
        m.module(
            ModuleSpec(
                "MUL",
                operations={"MULT": ModuleSpec("x").operations["ADD"]},
                latency=2,
            )
        )
        m.add_transfer("(A,B1,B,B2,1,MUL,3,B1,P)")
        run = symbolic_run(m, symbolic_registers=["A", "B"])
        assert str(run.expr("P")) == "MULT(A, B)"


class TestNormalization:
    def ops(self):
        from repro.core import standard_operation

        return {
            name: standard_operation(name)
            for name in ("ADD", "SUB", "MULT")
        }

    def test_commutativity(self):
        a, b = SymVar("a"), SymVar("b")
        left = SymOp("ADD", (a, b))
        right = SymOp("ADD", (b, a))
        ops = self.ops()
        assert normalize(left, 32, ops) == normalize(right, 32, ops)

    def test_associativity(self):
        a, b, c = SymVar("a"), SymVar("b"), SymVar("c")
        left = SymOp("ADD", (SymOp("ADD", (a, b)), c))
        right = SymOp("ADD", (a, SymOp("ADD", (b, c))))
        ops = self.ops()
        assert normalize(left, 32, ops) == normalize(right, 32, ops)

    def test_constant_folding_inside_ac(self):
        from repro.verify import SymConst

        a = SymVar("a")
        expr = SymOp("ADD", (SymConst(2), SymOp("ADD", (a, SymConst(3)))))
        ops = self.ops()
        normalized = normalize(expr, 32, ops)
        assert normalized == SymOp("ADD", (a, SymConst(5)))

    def test_non_ac_ops_keep_order(self):
        a, b = SymVar("a"), SymVar("b")
        ops = self.ops()
        assert normalize(SymOp("SUB", (a, b)), 32, ops) != normalize(
            SymOp("SUB", (b, a)), 32, ops
        )


class TestProgramEquivalence:
    def test_hls_output_verifies(self):
        res = synthesize("t = (a + b) * (c - d)\nout = t + t\n")
        results = check_program_vs_model(
            res.program, res.model, res.output_regs
        )
        assert all_equivalent(results)
        assert all(r.method == "normal-form" for r in results)

    def test_reassociated_program_still_verifies(self):
        # The RT schedule computes (a+b)+c in some association; a
        # differently associated source is still equivalent.
        res = synthesize("s = a + (b + c)\n")
        program2 = parse_program("s = (a + b) + c\n")
        results = check_program_vs_model(
            program2, res.model, res.output_regs
        )
        assert all_equivalent(results)

    def test_wrong_model_is_refuted(self):
        res = synthesize("s = a + b\n")
        wrong = parse_program("s = a - b\n")
        results = check_program_vs_model(wrong, res.model, res.output_regs)
        assert not all_equivalent(results)
        assert results[0].method == "counterexample"
        assert results[0].counterexample is not None

    def test_program_symbolic_env_chains_assignments(self):
        env = program_symbolic_env(parse_program("x = a + 1\ny = x * x\n"))
        assert sym_vars(env["y"]) == {"a"}


class TestRoundtrip:
    def test_fig1_roundtrip(self):
        report = check_model_roundtrip(fig1_model())
        assert report.ok, str(report)

    def test_iks_roundtrip(self):
        from repro.iks.flow import build_ik_model

        model, _ = build_ik_model(1.5, 0.5)
        report = check_model_roundtrip(model)
        assert report.ok, str(report)

    def test_hls_roundtrip(self):
        res = synthesize("t = (a + b) * (c - d)\nout = t + t\n")
        report = check_model_roundtrip(res.model)
        assert report.ok, str(report)

    def test_canonical_merges_split_reads(self):
        t1 = RegisterTransfer(
            src1="A", bus1="B1", read_step=1, module="ADD"
        )
        t2 = RegisterTransfer(
            src2="B", bus2="B2", read_step=1, module="ADD"
        )
        merged = canonical_tuples([t1, t2])
        assert len(merged) == 1
        assert merged[0].src1 == "A" and merged[0].src2 == "B"

    @settings(max_examples=30, deadline=None)
    @given(
        st.lists(
            st.tuples(
                st.integers(min_value=1, max_value=6),  # read step
                st.sampled_from(["ADD1", "ADD2"]),
                st.sampled_from([("A", "B"), ("C", "D"), ("A", "C")]),
            ),
            min_size=1,
            max_size=5,
        )
    )
    def test_random_schedules_roundtrip(self, issues):
        """Random (conflict-free by construction) schedules survive the
        tuple->process->tuple round trip."""
        m = RTModel("rand", cs_max=14)
        for reg in ("A", "B", "C", "D"):
            m.register(reg, init=1)
        m.register("OUT1")
        m.register("OUT2")
        m.module(ModuleSpec("ADD1", latency=1))
        m.module(ModuleSpec("ADD2", latency=1))
        seen = set()
        bus_id = 0
        for step, module, (s1, s2) in issues:
            if (step, module) in seen:
                continue  # one issue per module per step
            seen.add((step, module))
            bus1 = m.bus(f"BR{bus_id}")
            bus2 = m.bus(f"BR{bus_id + 1}")
            bus3 = m.bus(f"BW{bus_id}")
            bus_id += 2
            dest = "OUT1" if module == "ADD1" else "OUT2"
            m.add_transfer(
                RegisterTransfer(
                    src1=s1, bus1=bus1, src2=s2, bus2=bus2,
                    read_step=step, module=module,
                    write_step=step + 1, write_bus=bus3, dest=dest,
                )
            )
        report = check_model_roundtrip(m)
        assert report.ok, str(report)


class TestMonitorOracle:
    """``check_program_vs_model(properties=...)``: the runtime monitors
    as an extra oracle over the same trial vectors."""

    def _properties(self, model):
        from repro.observe import default_properties

        return default_properties(model)

    def test_clean_synthesis_passes_the_monitor_oracle(self):
        res = synthesize("s = a + b\nt = s * a\n")
        results = check_program_vs_model(
            res.program, res.model, res.output_regs, trials=6,
            properties=self._properties(res.model),
        )
        assert all_equivalent(results)
        monitor_results = [r for r in results if r.method == "monitor"]
        assert [r.variable for r in monitor_results] == [
            "never_illegal", "no_conflicts",
        ]

    def test_scalar_backend_sweep_agrees(self):
        res = synthesize("s = a + b\n")
        batched = check_program_vs_model(
            res.program, res.model, res.output_regs, trials=4,
            properties=self._properties(res.model),
        )
        scalar = check_program_vs_model(
            res.program, res.model, res.output_regs, trials=4,
            backend="compiled",
            properties=self._properties(res.model),
        )
        assert [(r.variable, r.equivalent) for r in batched] \
            == [(r.variable, r.equivalent) for r in scalar]

    def test_temporal_property_failure_is_a_monitor_result(self):
        # Functional equivalence holds, but a temporal property the
        # schedule breaks (the output register is latched mid-run, so
        # it is NOT stable over the whole run) fails with the first
        # offending trial vector as counterexample -- something the
        # expression-level check cannot express at all.
        from repro.observe import stable_between

        res = synthesize("t = a + b\ns = t * a\n")
        out_reg = res.output_regs["t"]  # latched mid-run (cs2.ra)
        results = check_program_vs_model(
            res.program, res.model, res.output_regs, trials=4,
            properties=[
                stable_between(out_reg, 1, res.model.cs_max),
            ],
        )
        functional = [r for r in results if r.method != "monitor"]
        assert all_equivalent(functional)
        monitor_results = [r for r in results if r.method == "monitor"]
        assert len(monitor_results) == 1
        failing = monitor_results[0]
        assert not failing.equivalent
        assert failing.register == out_reg
        assert failing.counterexample is not None
        assert set(failing.counterexample) == set(res.program.inputs)


class TestCoverageOracle:
    """``check_program_vs_model(coverage_db=...)``: the equivalence
    sweep's trial vectors double as coverage stimulus, accumulated
    into the persistent database."""

    def test_scalar_sweep_accumulates_coverage(self, tmp_path):
        from repro.engine.plan import lower
        from repro.observe import CoverageDB

        res = synthesize("s = a + b\n")
        results = check_program_vs_model(
            res.program, res.model, res.output_regs, trials=4,
            backend="compiled", coverage_db=tmp_path,
        )
        assert all_equivalent(results)
        report = CoverageDB(tmp_path).get(lower(res.model).digest)
        assert report is not None
        assert report.hit_count > 0
        assert report.fractions()["transfers"] > 0.0

    def test_second_sweep_only_grows_the_db(self, tmp_path):
        from repro.engine.plan import lower
        from repro.observe import CoverageDB

        res = synthesize("s = a + b\n")
        digest = lower(res.model).digest
        db = CoverageDB(tmp_path)
        check_program_vs_model(
            res.program, res.model, res.output_regs, trials=2,
            backend="compiled", coverage_db=tmp_path,
        )
        first = db.get(digest)
        check_program_vs_model(
            res.program, res.model, res.output_regs, trials=2,
            backend="compiled", coverage_db=tmp_path,
        )
        second = db.get(digest)
        assert second.hit_count >= first.hit_count
        assert second.merge(first) == second  # first is absorbed

    def test_symbolic_oracle_rejects_coverage_db(self, tmp_path):
        res = synthesize("s = a + b\n")
        with pytest.raises(ValueError, match="backend"):
            check_program_vs_model(
                res.program, res.model, res.output_regs,
                coverage_db=tmp_path,
            )
