"""Tests for the ROBDD package and bit-level operation equivalence."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import standard_operation
from repro.core.modules_lib import Operation
from repro.verify.bdd import (
    Bdd,
    check_operation_equivalence,
    word_add,
    word_const,
    word_equal,
    word_inputs,
    word_shift_right_const,
    word_sub,
)


class TestBddBasics:
    def test_canonicity_of_commutativity(self):
        b = Bdd()
        x, y = b.var(0), b.var(1)
        assert b.and_(x, y) == b.and_(y, x)
        assert b.or_(x, y) == b.or_(y, x)
        assert b.xor(x, y) == b.xor(y, x)

    def test_de_morgan(self):
        b = Bdd()
        x, y = b.var(0), b.var(1)
        assert b.not_(b.and_(x, y)) == b.or_(b.not_(x), b.not_(y))

    def test_double_negation(self):
        b = Bdd()
        x = b.var(3)
        assert b.not_(b.not_(x)) == x

    def test_constants(self):
        b = Bdd()
        x = b.var(0)
        assert b.and_(x, b.TRUE) == x
        assert b.and_(x, b.FALSE) == b.FALSE
        assert b.or_(x, b.FALSE) == x
        assert b.xor(x, x) == b.FALSE

    def test_evaluate(self):
        b = Bdd()
        x, y = b.var(0), b.var(1)
        f = b.and_(x, b.not_(y))
        assert b.evaluate(f, [True, False])
        assert not b.evaluate(f, [True, True])
        assert not b.evaluate(f, [False, False])

    def test_sat_count(self):
        b = Bdd()
        x, y = b.var(0), b.var(1)
        assert b.sat_count(b.xor(x, y), 2) == 2
        assert b.sat_count(b.and_(x, y), 2) == 1
        assert b.sat_count(b.TRUE, 3) == 8
        assert b.sat_count(b.FALSE, 3) == 0
        # With a free third variable every count doubles.
        assert b.sat_count(b.or_(x, y), 3) == 6

    def test_any_sat(self):
        b = Bdd()
        x, y = b.var(0), b.var(1)
        f = b.and_(b.not_(x), y)
        assignment = b.any_sat(f, 2)
        assert assignment == [False, True]
        assert b.any_sat(b.FALSE, 2) is None

    def test_ite_is_shannon_expansion(self):
        b = Bdd()
        x, y, z = b.var(0), b.var(1), b.var(2)
        f = b.ite(x, y, z)
        assert b.evaluate(f, [True, True, False])
        assert not b.evaluate(f, [True, False, True])
        assert b.evaluate(f, [False, False, True])

    @given(st.integers(min_value=0, max_value=255))
    def test_hash_consing_makes_equal_functions_identical(self, seed):
        # Build the same 3-var function two structurally different ways.
        b = Bdd()
        bits = [(seed >> i) & 1 for i in range(8)]
        x = [b.var(i) for i in range(3)]

        def build(order):
            f = b.FALSE
            for index in order:
                if bits[index]:
                    term = b.TRUE
                    for i in range(3):
                        v = x[i] if (index >> i) & 1 else b.not_(x[i])
                        term = b.and_(term, v)
                    f = b.or_(f, term)
            return f

        assert build(range(8)) == build(reversed(range(8)))


class TestWordLevel:
    WIDTH = 6

    def test_word_add_matches_integer_addition(self):
        b = Bdd()
        a, c = word_inputs(b, self.WIDTH, 2)
        total = word_add(b, a, c)
        for av, bv in [(0, 0), (1, 1), (63, 1), (37, 45)]:
            assignment = [False] * (2 * self.WIDTH)
            for i in range(self.WIDTH):
                assignment[2 * i] = bool((av >> i) & 1)
                assignment[2 * i + 1] = bool((bv >> i) & 1)
            value = sum(
                (1 << i)
                for i in range(self.WIDTH)
                if b.evaluate(total.bits[i], assignment)
            )
            assert value == (av + bv) % (1 << self.WIDTH)

    def test_sub_is_add_of_negation(self):
        b = Bdd()
        a, c = word_inputs(b, 4, 2)
        direct = word_sub(b, a, c)
        # a - c == a + (~c + 1): canonical identity via node equality.
        assert word_equal(b, direct, word_sub(b, a, c)) == b.TRUE

    def test_constant_words(self):
        b = Bdd()
        k = word_const(b, 0b1010, 4)
        assert [bit == b.TRUE for bit in k.bits] == [False, True, False, True]

    def test_shift_right_logical_and_arithmetic(self):
        b = Bdd()
        (a,) = word_inputs(b, 4, 1)
        logical = word_shift_right_const(b, a, 1, arithmetic=False)
        arithmetic = word_shift_right_const(b, a, 1, arithmetic=True)
        assert logical.bits[3] == b.FALSE
        assert arithmetic.bits[3] == a.bits[3]  # sign extension


class TestOperationEquivalence:
    @pytest.mark.parametrize("name", ["ADD", "SUB", "AND", "OR", "XOR"])
    def test_standard_ops_match_word_semantics(self, name):
        result = check_operation_equivalence(
            standard_operation(name), name, width=4
        )
        assert result.equivalent, str(result)

    def test_wrong_op_is_refuted_with_counterexample(self):
        result = check_operation_equivalence(
            standard_operation("ADD"), "SUB", width=4
        )
        assert not result.equivalent
        av, bv = result.counterexample
        assert (av + bv) % 16 != (av - bv) % 16

    def test_iks_fused_shift_add_equals_composition(self):
        # The chip's ADD_SHR<k> (built-in input shifter) is proven
        # equal to explicit arshift-then-saturating-add.
        from repro.iks.chip import adder_operations
        from repro.iks.fixedpoint import FxFormat

        fmt = FxFormat(width=5, frac=2)
        ops = adder_operations(fmt)
        composed = Operation(
            "COMPOSED", 2, lambda a, b: fmt.add(a, fmt.arshift(b, 2))
        )
        result = check_operation_equivalence(ops["ADD_SHR2"], composed, 5)
        assert result.equivalent, str(result)

    def test_saturating_vs_modular_add_differ(self):
        # The checker distinguishes the IKS's saturating fixed-point
        # adder from the modular word adder -- with a witness at the
        # saturation boundary.
        from repro.iks.chip import adder_operations
        from repro.iks.fixedpoint import FxFormat

        fmt = FxFormat(width=5, frac=2)
        result = check_operation_equivalence(
            adder_operations(fmt)["ADD"], "ADD", width=5
        )
        assert not result.equivalent
        av, bv = result.counterexample
        assert fmt.add(av, bv) != (av + bv) % 32

    def test_fused_name_builder(self):
        # The word-level ADD_SHR builder exists for modular semantics.
        op = Operation(
            "ADD_SHR1",
            2,
            lambda a, b, : (a + _arshift4(b, 1)) % 16,
        )
        result = check_operation_equivalence(op, "ADD_SHR1", width=4)
        assert result.equivalent, str(result)


def _arshift4(value: int, amount: int) -> int:
    """Arithmetic right shift of a 4-bit two's-complement pattern."""
    if value & 0b1000:
        value -= 16
    return (value >> amount) & 0b1111
