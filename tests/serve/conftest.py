"""Shared fixtures for the simulation-service tests."""

import asyncio
import json
import socket

import pytest

from repro.core import ModuleSpec, RTModel
from repro.serve import serve_in_thread
from repro.serve.wsproto import encode_close, encode_text, read_frame, OP_TEXT


def fig1_model(cs_max=7, r1=2, r2=3):
    """The paper's Fig.-1 example (R1 <- R1 + R2)."""
    model = RTModel("example", cs_max=cs_max)
    model.register("R1", init=r1)
    model.register("R2", init=r2)
    model.bus("B1")
    model.bus("B2")
    model.module(ModuleSpec("ADD", latency=1))
    model.add_transfer("(R1,B1,R2,B2,5,ADD,6,B1,R1)")
    return model


def tiny_model(cs_max=2):
    """Minimal model whose schedule fits in two control steps."""
    model = RTModel("tiny", cs_max=cs_max)
    model.register("R1", init=2)
    model.register("R2", init=3)
    model.bus("B1")
    model.bus("B2")
    model.module(ModuleSpec("ADD", latency=1))
    model.add_transfer("(R1,B1,R2,B2,1,ADD,2,B1,R1)")
    return model


def conflict_model():
    """Two sources on B1 in step 2: a deliberate bus conflict."""
    model = RTModel("clash", cs_max=4)
    model.register("R1", init=1)
    model.register("R2", init=2)
    model.register("R3")
    model.bus("B1")
    model.bus("B2")
    model.module(ModuleSpec("ADD", latency=1))
    model.add_transfer("(R1,B1,R2,B2,2,ADD,3,B1,R3)")
    model.add_transfer("(R2,B1,R1,B2,2,ADD,3,B2,R3)")
    return model


@pytest.fixture
def server():
    """A default-configuration server on its own loop thread."""
    with serve_in_thread() as handle:
        yield handle


# ----------------------------------------------------------------------
# raw-socket helpers (pipelining, disconnect and WebSocket tests)
# ----------------------------------------------------------------------
def raw_socket(host, port):
    """A connected TCP socket with Nagle off (so tiny test requests
    are not batched by the kernel into misleading arrival patterns)."""
    sock = socket.create_connection((host, port), timeout=30.0)
    sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
    return sock


def http_request(path, payload, method="POST"):
    """One raw HTTP/1.1 request as bytes."""
    body = json.dumps(payload).encode() if payload is not None else b""
    return (
        f"{method} {path} HTTP/1.1\r\n"
        "Content-Type: application/json\r\n"
        f"Content-Length: {len(body)}\r\n"
        "\r\n"
    ).encode() + body


def read_http_response(sock):
    """Read one response off a raw socket; returns (status, records)."""
    buf = b""
    while b"\r\n\r\n" not in buf:
        chunk = sock.recv(8192)
        if not chunk:
            raise ConnectionError("server closed the connection")
        buf += chunk
    head, _, rest = buf.partition(b"\r\n\r\n")
    lines = head.decode("latin-1").split("\r\n")
    status = int(lines[0].split(" ")[1])
    length = 0
    for line in lines[1:]:
        name, _, value = line.partition(":")
        if name.strip().lower() == "content-length":
            length = int(value)
    while len(rest) < length:
        chunk = sock.recv(8192)
        if not chunk:
            raise ConnectionError("server closed mid-body")
        rest += chunk
    records = [
        json.loads(line)
        for line in rest[:length].split(b"\n")
        if line.strip()
    ]
    return status, records


class WsClient:
    """Minimal synchronous WebSocket test client (own event loop)."""

    def __init__(self, host, port):
        self._loop = asyncio.new_event_loop()
        self.reader, self.writer = self._loop.run_until_complete(
            self._connect(host, port)
        )

    async def _connect(self, host, port):
        reader, writer = await asyncio.open_connection(host, port)
        sock = writer.get_extra_info("socket")
        sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        writer.write((
            "GET /v1/ws HTTP/1.1\r\n"
            "Host: test\r\n"
            "Upgrade: websocket\r\n"
            "Connection: Upgrade\r\n"
            "Sec-WebSocket-Key: dGhlIHNhbXBsZSBub25jZQ==\r\n"
            "Sec-WebSocket-Version: 13\r\n"
            "\r\n"
        ).encode())
        await writer.drain()
        head = await reader.readuntil(b"\r\n\r\n")
        assert b" 101 " in head.split(b"\r\n")[0] + b" ", head
        return reader, writer

    def send(self, payload):
        self.writer.write(encode_text(json.dumps(payload), mask=True))
        self._loop.run_until_complete(self.writer.drain())

    def recv(self, timeout=30.0):
        """The next text frame, decoded."""
        op, data = self._loop.run_until_complete(
            asyncio.wait_for(read_frame(self.reader), timeout)
        )
        assert op == OP_TEXT, f"unexpected opcode {op}"
        return json.loads(data)

    def call(self, payload, terminal=("result", "error", "model", "pong",
                                      "health", "watching")):
        """Send one op and collect records up to the terminal one."""
        self.send(payload)
        records = []
        while True:
            record = self.recv()
            records.append(record)
            if record.get("event") in terminal:
                return records

    def close(self):
        try:
            self.writer.write(encode_close(mask=True))
            self._loop.run_until_complete(self.writer.drain())
        except (ConnectionError, OSError):
            pass
        self.writer.close()
        self._loop.close()
