"""End-to-end service tests over real sockets: HTTP routes, the
batching scheduler's failure modes (deadline, admission, disconnect,
drain), pipelining, and the WebSocket transport."""

import json
import threading
import time
from concurrent.futures import ThreadPoolExecutor

import pytest

from repro.core.serialize import model_to_dict
from repro.serve import ServeClient, ServeClientError, serve_in_thread
from repro.serve.protocol import decode_registers

from .conftest import (
    WsClient,
    conflict_model,
    fig1_model,
    http_request,
    raw_socket,
    read_http_response,
    tiny_model,
)


# ----------------------------------------------------------------------
# HTTP basics
# ----------------------------------------------------------------------
class TestHttpRoutes:
    def test_health(self, server):
        with ServeClient(*server.address) as client:
            health = client.health()
        assert health["event"] == "health"
        assert health["status"] == "ok"
        assert health["models"] == 0
        assert health["backend"] == "adaptive"

    def test_submit_then_simulate_by_digest(self, server):
        model = fig1_model()
        expected = model.elaborate(
            register_values={"R1": 9, "R2": 4}, backend="compiled"
        ).run()
        with ServeClient(*server.address) as client:
            record = client.submit(model)
            assert record["event"] == "model"
            assert record["cached"] is False
            assert client.submit(model)["cached"] is True
            records = client.simulate(
                record["digest"], register_values={"R1": 9, "R2": 4}, id="q"
            )
        result = records[-1]
        assert result["event"] == "result"
        assert result["id"] == "q"
        assert decode_registers(result["registers"]) == expected.registers
        assert result["clean"] == expected.clean
        assert result["batch"] >= 1

    def test_simulate_with_inline_document(self, server):
        model = tiny_model()
        expected = model.elaborate(backend="compiled").run()
        with ServeClient(*server.address) as client:
            result = client.simulate(model)[-1]
        assert decode_registers(result["registers"]) == expected.registers

    def test_verify_reports_conflicts(self, server):
        model = conflict_model()
        with ServeClient(*server.address) as client:
            records = client.verify(model)
        result = records[-1]
        assert result["event"] == "result"
        assert result["clean"] is False
        assert result["ok"] is False
        events = {r["event"] for r in records}
        assert "conflict" in events

    def test_models_listing(self, server):
        with ServeClient(*server.address) as client:
            assert client.models() == []
            digest = client.submit(fig1_model())["digest"]
            rows = client.models()
        assert [row["digest"] for row in rows] == [digest]

    def test_metrics_exposition(self, server):
        with ServeClient(*server.address) as client:
            client.submit(fig1_model())
            text = client.metrics()
        assert "repro_serve_requests_total" in text
        assert "repro_serve_models_total" in text

    def test_unknown_digest_is_404(self, server):
        with ServeClient(*server.address) as client:
            with pytest.raises(ServeClientError) as exc:
                client.simulate("0" * 16)
        assert exc.value.code == "not_found"
        assert exc.value.status == 404

    def test_unknown_register_is_400(self, server):
        with ServeClient(*server.address) as client:
            digest = client.submit(tiny_model())["digest"]
            with pytest.raises(ServeClientError) as exc:
                client.simulate(digest, register_values={"NOPE": 1})
        assert exc.value.code == "bad_request"

    def test_unknown_route_and_method(self, server):
        with ServeClient(*server.address) as client:
            status, _ = client._request("GET", "/v1/bogus")
            assert status == 404
            status, _ = client._request("DELETE", "/v1/models")
            assert status == 405

    def test_pipelined_requests_share_a_connection(self, server):
        model = tiny_model()
        with ServeClient(*server.address) as client:
            digest = client.submit(model)["digest"]
        sock = raw_socket(*server.address)
        try:
            # Two requests in one write: both must be answered in order.
            sock.sendall(
                http_request("/v1/simulate", {"model": digest, "id": 1})
                + http_request("/v1/simulate", {"model": digest, "id": 2})
            )
            ids = []
            for _ in range(2):
                status, records = read_http_response(sock)
                assert status == 200
                ids.append(records[-1]["id"])
        finally:
            sock.close()
        assert ids == [1, 2]


# ----------------------------------------------------------------------
# scheduler failure modes (the ISSUE's named scenarios)
# ----------------------------------------------------------------------
class TestDeadlines:
    def test_deadline_expires_in_queue(self):
        # A 300ms gathering window guarantees a 20ms deadline dies
        # while queued; the error is the wire-stable 504 record.
        with serve_in_thread(batch_window_ms=300.0) as handle:
            with ServeClient(*handle.address) as client:
                digest = client.submit(tiny_model())["digest"]
                with pytest.raises(ServeClientError) as exc:
                    client.simulate(digest, deadline_ms=20)
            assert exc.value.code == "deadline"
            assert exc.value.status == 504
            stats = handle.server.engine.stats()
        assert stats["expired"] >= 1

    def test_generous_deadline_succeeds(self, server):
        with ServeClient(*server.address) as client:
            digest = client.submit(tiny_model())["digest"]
            result = client.simulate(digest, deadline_ms=30_000)[-1]
        assert result["event"] == "result"


class TestAdmission:
    def test_queue_full_rejects_with_503(self):
        # One admission slot and a long window: concurrent requests
        # beyond the slot are rejected immediately, not queued.
        with serve_in_thread(max_pending=1, batch_window_ms=400.0) as handle:
            with ServeClient(*handle.address) as client:
                digest = client.submit(tiny_model())["digest"]

            def one(i):
                with ServeClient(*handle.address) as c:
                    try:
                        c.simulate(digest, id=i)
                        return "ok"
                    except ServeClientError as exc:
                        return exc.code

            with ThreadPoolExecutor(max_workers=4) as pool:
                outcomes = list(pool.map(one, range(4)))
            stats = handle.server.engine.stats()
        assert "queue_full" in outcomes
        assert "ok" in outcomes
        assert set(outcomes) <= {"ok", "queue_full"}
        assert stats["rejected"] >= 1

    def test_rejection_does_not_poison_the_lane(self):
        with serve_in_thread(max_pending=1, batch_window_ms=100.0) as handle:
            with ServeClient(*handle.address) as client:
                digest = client.submit(tiny_model())["digest"]
                client.simulate(digest)
                # After the burst settles, the lane still serves.
                result = client.simulate(digest)[-1]
            assert result["event"] == "result"


class TestDisconnect:
    def test_mid_sweep_disconnect_discards_the_lane(self):
        with serve_in_thread(batch_window_ms=300.0) as handle:
            with ServeClient(*handle.address) as client:
                digest = client.submit(tiny_model())["digest"]
            sock = raw_socket(*handle.address)
            sock.sendall(http_request("/v1/simulate", {"model": digest}))
            time.sleep(0.05)  # let the request enter the queue
            sock.close()      # client gone while the window gathers
            deadline = time.time() + 10.0
            while time.time() < deadline:
                if handle.server.engine.stats()["discarded"] >= 1:
                    break
                time.sleep(0.02)
            stats = handle.server.engine.stats()
            # The server survives and still answers.
            with ServeClient(*handle.address) as client:
                assert client.health()["status"] == "ok"
        assert stats["discarded"] >= 1


class TestGracefulShutdown:
    def test_close_drains_in_flight_requests(self):
        handle = serve_in_thread(batch_window_ms=200.0)
        with ServeClient(*handle.address) as client:
            digest = client.submit(tiny_model())["digest"]
        outcome = {}

        def request():
            with ServeClient(*handle.address) as c:
                try:
                    outcome["result"] = c.simulate(digest)[-1]
                except ServeClientError as exc:
                    outcome["error"] = exc.code

        thread = threading.Thread(target=request)
        thread.start()
        time.sleep(0.08)  # request is queued inside the window
        drained = handle.close()
        thread.join(timeout=30.0)
        assert drained is True
        assert outcome.get("result", {}).get("event") == "result"

    def test_draining_server_rejects_new_requests(self):
        with serve_in_thread() as handle:
            with ServeClient(*handle.address) as client:
                digest = client.submit(tiny_model())["digest"]
                handle.run(handle.server.engine.drain(timeout=1.0))
                with pytest.raises(ServeClientError) as exc:
                    client.simulate(digest)
            assert exc.value.code == "closing"
            assert exc.value.status == 503


# ----------------------------------------------------------------------
# WebSocket transport
# ----------------------------------------------------------------------
class TestWebSocket:
    def test_ops_roundtrip(self, server):
        model = fig1_model()
        expected = model.elaborate(
            register_values={"R1": 5, "R2": 6}, backend="compiled"
        ).run()
        ws = WsClient(*server.address)
        try:
            assert ws.call({"op": "ping", "id": 1})[-1]["event"] == "pong"
            record = ws.call(
                {"op": "submit", "model": model_to_dict(model), "id": 2}
            )[-1]
            assert record["event"] == "model"
            result = ws.call({
                "op": "simulate", "model": record["digest"],
                "register_values": {"R1": 5, "R2": 6}, "id": 3,
            })[-1]
            assert result["id"] == 3
            assert decode_registers(result["registers"]) == expected.registers
            bad = ws.call({"op": "teleport", "id": 4})[-1]
            assert bad["event"] == "error"
            assert bad["code"] == "bad_request"
        finally:
            ws.close()

    def test_verify_and_watch_fanout(self, server):
        clash = conflict_model()
        watcher = WsClient(*server.address)
        actor = WsClient(*server.address)
        try:
            assert watcher.call({"op": "watch"})[-1]["event"] == "watching"
            records = actor.call(
                {"op": "verify", "model": model_to_dict(clash), "id": "v"}
            )
            result = records[-1]
            assert result["ok"] is False
            assert any(r["event"] == "conflict" for r in records)
            # The watcher sees the sweep's conflict records fan out.
            seen = watcher.recv(timeout=30.0)
            assert seen["event"] in ("conflict", "violation")
            stats = watcher.call({"op": "stats", "id": "s"})
            watch = None
            for record in stats:
                watch = record.get("watch") or watch
            assert watch is not None and watch["sent"] >= 1
        finally:
            actor.close()
            watcher.close()

    def test_bad_frame_is_an_error_record(self, server):
        ws = WsClient(*server.address)
        try:
            from repro.serve.wsproto import encode_frame, OP_TEXT
            ws.writer.write(encode_frame(b"{broken", OP_TEXT, mask=True))
            ws._loop.run_until_complete(ws.writer.drain())
            record = ws.recv()
            assert record["event"] == "error"
            assert record["code"] == "bad_request"
        finally:
            ws.close()


# ----------------------------------------------------------------------
# cache ablation mode (what `repro bench --serve` compares against)
# ----------------------------------------------------------------------
class TestStatelessCache:
    def test_max_models_zero_retains_nothing(self):
        model = tiny_model()
        expected = model.elaborate(backend="compiled").run()
        with serve_in_thread(
            max_models=0, max_batch=1, reuse_sims=False, backend="compiled"
        ) as handle:
            with ServeClient(*handle.address) as client:
                record = client.submit(model)
                assert record["cached"] is False
                # Nothing was retained: the digest is unknown...
                with pytest.raises(ServeClientError) as exc:
                    client.simulate(record["digest"])
                assert exc.value.code == "not_found"
                # ...but inline documents still simulate correctly.
                result = client.simulate(model)[-1]
                assert (
                    decode_registers(result["registers"])
                    == expected.registers
                )
                assert client.models() == []


def test_serve_backend_validation():
    from repro.serve.batcher import SERVE_BACKENDS, resolve_serve_backend

    assert resolve_serve_backend("auto") == "adaptive"
    assert resolve_serve_backend("compiled") == "compiled"
    with pytest.raises(ValueError):
        resolve_serve_backend("quantum")
    assert "adaptive" in SERVE_BACKENDS


def test_json_errors_over_http(server):
    sock = raw_socket(*server.address)
    try:
        body = b"this is not json"
        sock.sendall((
            "POST /v1/simulate HTTP/1.1\r\n"
            f"Content-Length: {len(body)}\r\n\r\n"
        ).encode() + body)
        status, records = read_http_response(sock)
    finally:
        sock.close()
    assert status == 400
    assert records[0]["code"] == "bad_request"
    assert json.dumps(records[0])  # wire-serializable
