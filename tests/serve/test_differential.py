"""Differential suite: served results must be bit-identical to
sequential ``compiled`` runs -- registers, conflict records, monitor
violations and clean flags -- at every batch shape (K in {1, 2, 7})
and under every sweep backend the service can pick."""

import random
from concurrent.futures import ThreadPoolExecutor

import pytest

from repro.core.values import DISC
from repro.core.values_np import have_numpy
from repro.observe import recorder
from repro.observe.monitor import (
    default_properties,
    evaluate_trace,
    monitored_watch_list,
)
from repro.serve import ServeClient, serve_in_thread
from repro.serve.protocol import decode_registers

from .conftest import conflict_model, fig1_model

BATCH_SHAPES = (1, 2, 7)
MODELS = {"fig1": fig1_model, "conflict": conflict_model}


def _vectors(model, count, seed):
    rng = random.Random(seed)
    return [
        {name: rng.randrange(0, 1 << model.width) for name in model.registers}
        for _ in range(count)
    ]


def _expected_simulate(model, vector):
    sim = model.elaborate(register_values=vector, backend="compiled").run()
    return {
        "registers": sim.registers,
        "clean": sim.clean,
        "conflicts": [recorder.conflict_event(e) for e in sim.conflicts],
    }


def _expected_verify(model, vector):
    sim = model.elaborate(
        register_values=vector,
        backend="compiled",
        watch=monitored_watch_list(model),
    ).run()
    report = evaluate_trace(
        model, sim.tracer, default_properties(model), sim.conflicts
    )
    return {
        "registers": sim.registers,
        "clean": sim.clean and report.ok,
        "conflicts": [recorder.conflict_event(e) for e in sim.conflicts],
        "ok": report.ok,
        "violations": report.to_dict()["violations"],
    }


def _served(records):
    """Split one NDJSON response into comparable pieces (ids stripped:
    they are request echo, not verdict)."""
    conflicts, violations, result = [], [], None
    for record in records:
        record = {k: v for k, v in record.items() if k != "id"}
        if record["event"] == "conflict":
            conflicts.append(record)
        elif record["event"] == "violation":
            violations.append(record)
        elif record["event"] == "result":
            result = record
    assert result is not None, records
    return conflicts, violations, result


def _drive(handle, digest, vectors, verify=False):
    """Fire all vectors concurrently (one client each) so the window
    coalesces them into one sweep; returns responses in vector order."""

    def one(vector):
        with ServeClient(*handle.address) as client:
            if verify:
                return client.verify(digest, register_values=vector)
            return client.simulate(digest, register_values=vector)

    with ThreadPoolExecutor(max_workers=len(vectors)) as pool:
        return list(pool.map(one, vectors))


@pytest.mark.parametrize("model_name", sorted(MODELS))
@pytest.mark.parametrize("k", BATCH_SHAPES)
def test_simulate_identity(model_name, k):
    model = MODELS[model_name]()
    vectors = _vectors(model, k, seed=100 + k)
    with serve_in_thread(batch_window_ms=250.0) as handle:
        with ServeClient(*handle.address) as client:
            digest = client.submit(model)["digest"]
        responses = _drive(handle, digest, vectors)
        stats = handle.server.engine.stats()
    for vector, records in zip(vectors, responses):
        expected = _expected_simulate(model, vector)
        conflicts, violations, result = _served(records)
        assert decode_registers(result["registers"]) == expected["registers"]
        assert result["clean"] == expected["clean"]
        assert conflicts == expected["conflicts"]
        assert violations == []
        # Coalescing actually happened: K concurrent lanes, one sweep.
        assert result["batch"] == k
    assert stats["sweeps"] == 1
    assert stats["lanes_swept"] == k


@pytest.mark.parametrize("model_name", sorted(MODELS))
@pytest.mark.parametrize("k", BATCH_SHAPES)
def test_verify_identity(model_name, k):
    model = MODELS[model_name]()
    vectors = _vectors(model, k, seed=200 + k)
    with serve_in_thread(batch_window_ms=250.0) as handle:
        with ServeClient(*handle.address) as client:
            digest = client.submit(model)["digest"]
        responses = _drive(handle, digest, vectors, verify=True)
    for vector, records in zip(vectors, responses):
        expected = _expected_verify(model, vector)
        conflicts, violations, result = _served(records)
        assert decode_registers(result["registers"]) == expected["registers"]
        assert result["clean"] == expected["clean"]
        assert result["ok"] == expected["ok"]
        assert conflicts == expected["conflicts"]
        assert [
            {k_: v for k_, v in record.items() if k_ != "event"}
            for record in violations
        ] == expected["violations"]


EXPLICIT_BACKENDS = ["compiled", "compiled-py", "adaptive"] + (
    ["compiled-batched", "compiled-py-batched"] if have_numpy() else []
)


@pytest.mark.parametrize("backend", EXPLICIT_BACKENDS)
def test_backend_identity(backend):
    """Every sweep realization the service can pick is bit-identical."""
    model = fig1_model()
    vectors = _vectors(model, 5, seed=31)
    with serve_in_thread(
        backend=backend, batch_window_ms=200.0
    ) as handle:
        with ServeClient(*handle.address) as client:
            digest = client.submit(model)["digest"]
        responses = _drive(handle, digest, vectors)
    for vector, records in zip(vectors, responses):
        expected = _expected_simulate(model, vector)
        _conflicts, _violations, result = _served(records)
        assert decode_registers(result["registers"]) == expected["registers"]
        assert result["clean"] == expected["clean"]


def test_disconnected_register_values_travel_the_wire():
    model = fig1_model()
    expected = model.elaborate(
        register_values={"R1": DISC}, backend="compiled"
    ).run()
    with serve_in_thread() as handle:
        with ServeClient(*handle.address) as client:
            digest = client.submit(model)["digest"]
            result = client.simulate(
                digest, register_values={"R1": "z"}
            )[-1]
    assert decode_registers(result["registers"]) == expected.registers


def test_adaptive_crosses_over_to_the_batched_plane():
    """Above the crossover the adaptive policy sweeps the numpy plane;
    identity must hold there too."""
    if not have_numpy():
        pytest.skip("needs numpy (repro[fast])")
    from repro.serve.batcher import ADAPTIVE_CROSSOVER, run_sweep
    from repro.serve.cache import ModelCache
    from repro.core.serialize import model_to_dict

    model = fig1_model()
    entry, _ = ModelCache().submit(model_to_dict(model))
    k = ADAPTIVE_CROSSOVER + 8
    vectors = _vectors(model, k, seed=77)
    lanes = run_sweep(entry, vectors, None, "adaptive")
    assert len(lanes) == k
    for vector, lane in zip(vectors, lanes):
        expected = _expected_simulate(model, vector)
        assert lane["registers"] == expected["registers"]
        assert lane["clean"] == expected["clean"]
        assert lane["conflicts"] == expected["conflicts"]
