"""The service observability plane, end to end.

One server, three observers: request-scoped spans in the Chrome trace
export (accept -> parse -> queue -> coalesce -> sweep -> serialize,
joined by trace id and batch number), one wide JSON event per request
in the access log, and the always-on flight recorder that dumps the
recent-request ring on any 5xx (served back via ``/v1/debug/last``).
Plus the regressions the observability PR fixed: per-watcher drop
accounting for slow watch clients, and trace-id stability across a
503-then-retry.
"""

import glob
import http.client
import json
import os
import threading
import time

import pytest

from repro.observe import parse_access_log, parse_prometheus
from repro.serve import FlightRecorder, ServeClient, serve_in_thread

from .conftest import WsClient, fig1_model


def _http_get(host, port, path):
    """One raw GET; returns (status, content_type, body_bytes)."""
    conn = http.client.HTTPConnection(host, port, timeout=30.0)
    try:
        conn.request("GET", path)
        resp = conn.getresponse()
        return resp.status, resp.getheader("Content-Type"), resp.read()
    finally:
        conn.close()


class TestFlightRecorder:
    def test_ring_is_bounded(self):
        flight = FlightRecorder(capacity=8)
        for i in range(20):
            flight.record({"event": "access", "id": i})
        assert len(flight) == 8
        assert [e["id"] for e in flight.snapshot()] == list(range(12, 20))

    def test_dump_writes_ring_plus_extra(self, tmp_path):
        flight = FlightRecorder(capacity=4, directory=str(tmp_path))
        flight.record({"event": "access", "id": "a"})
        path = flight.dump("http-503", extra={"health": {"status": "ok"}})
        assert os.path.basename(path).startswith("flight-")
        assert path.endswith("-001-http-503.json")
        with open(path, "r", encoding="utf-8") as handle:
            payload = json.load(handle)
        assert payload["event"] == "flight_dump"
        assert payload["reason"] == "http-503"
        assert payload["records"] == [{"event": "access", "id": "a"}]
        assert payload["health"] == {"status": "ok"}

    def test_dumps_are_rate_limited_unless_forced(self, tmp_path):
        flight = FlightRecorder(directory=str(tmp_path), min_interval_s=60.0)
        assert flight.dump("http-503") is not None
        # An error storm must not produce a file per rejected request.
        assert flight.dump("http-503") is None
        assert flight.dump("sigusr1", force=True) is not None
        assert flight.dumps == 2

    def test_last_serves_live_ring_then_latest_dump(self, tmp_path):
        flight = FlightRecorder(directory=str(tmp_path))
        flight.record({"event": "access", "id": 1})
        live = flight.last()
        assert live["event"] == "flight"
        assert live["records"] == [{"event": "access", "id": 1}]
        path = flight.dump("sweep-failure")
        last = flight.last()
        assert last["event"] == "flight_dump"
        assert last["reason"] == "sweep-failure"
        assert last["path"] == path

    def test_no_directory_keeps_dumps_in_memory(self, tmp_path, monkeypatch):
        """Embedded servers must not litter the working directory: with
        no dump directory, ``dump`` captures in memory only."""
        monkeypatch.chdir(tmp_path)
        flight = FlightRecorder()
        flight.record({"event": "access", "id": 1})
        assert flight.dump("http-503") is None
        assert flight.dumps == 1
        assert os.listdir(str(tmp_path)) == []
        last = flight.last()
        assert last["event"] == "flight_dump"
        assert last["path"] is None

    def test_rejects_degenerate_capacity(self):
        with pytest.raises(ValueError):
            FlightRecorder(capacity=0)


class TestRequestTracing:
    """Accept -> queue -> sweep spans share one trace id per request,
    and coalesced requests point at the same batch span."""

    def test_coalesced_requests_share_the_batch_span(self, tmp_path):
        trace_path = str(tmp_path / "trace.json")
        log_path = str(tmp_path / "access.log")
        with serve_in_thread(
            batch_window_ms=100.0,
            trace_out=trace_path,
            access_log=log_path,
        ) as handle:
            host, port = handle.address
            with ServeClient(host, port) as client:
                digest = client.submit(fig1_model())["digest"]
            results = {}

            def fire(req_id):
                with ServeClient(host, port) as worker:
                    results[req_id] = worker.simulate(
                        digest, id=req_id, trace=f"trace-{req_id}"
                    )[-1]

            threads = [
                threading.Thread(target=fire, args=(name,))
                for name in ("a", "b")
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
        # Caller-supplied trace ids echo on the results.
        assert results["a"]["trace"] == "trace-a"
        assert results["b"]["trace"] == "trace-b"

        # close() wrote the trace: both requests joined one sweep.
        with open(trace_path, "r", encoding="utf-8") as handle:
            spans = [
                e for e in json.load(handle)["traceEvents"]
                if e.get("ph") == "X"
            ]
        by_name = {}
        for span in spans:
            by_name.setdefault(span["name"], []).append(span)
        coalesced = [
            s for s in by_name["sweep"]
            if set(s["args"]["traces"]) == {"trace-a", "trace-b"}
        ]
        assert coalesced, "the two requests never coalesced into one sweep"
        sweep = coalesced[0]
        assert sweep["args"]["lanes"] == 2
        assert sweep["args"]["digest"] == digest[:12]
        batch = sweep["args"]["batch"]
        for trace_id in ("trace-a", "trace-b"):
            stages = {
                s["name"] for s in spans
                if s.get("args", {}).get("trace") == trace_id
            }
            assert {"accept", "parse", "queue", "serialize"} <= stages
            (queue,) = [
                s for s in by_name["queue"]
                if s["args"]["trace"] == trace_id
            ]
            assert queue["args"]["batch"] == batch

        # ... and the access log carries the same story, one line each.
        events = {e["id"]: e for e in parse_access_log(log_path)}
        assert set(events) == {"a", "b"}
        for req_id in ("a", "b"):
            event = events[req_id]
            assert event["trace"] == f"trace-{req_id}"
            assert event["op"] == "simulate"
            assert event["status"] == 200
            assert "code" not in event
            assert event["batch"] == 2
            assert event["queue_ms"] >= 0.0
            assert event["sweep_ms"] >= 0.0
            assert event["ms"] > 0.0

    def test_disabled_tracing_serves_identically(self, server):
        """No trace/access flags: the request path must not grow spans,
        and results carry a server-minted trace id regardless (the
        flight ring is always on)."""
        host, port = server.address
        with ServeClient(host, port) as client:
            result = client.simulate(fig1_model())[-1]
        assert server.server.tracer is None
        assert server.server.access is None
        assert len(result["trace"]) == 16
        int(result["trace"], 16)
        # The always-on flight ring recorded the wide event.
        assert any(
            e.get("trace") == result["trace"]
            for e in server.server.flight.snapshot()
        )


class TestRetryTraceStability:
    def test_trace_survives_a_503_retry_and_the_503_dumps_flight(
        self, tmp_path
    ):
        """A queue-full 503 and its retried 200 share one trace id in
        the access log; the 5xx dumps the flight ring to disk and
        ``/v1/debug/last`` serves that dump."""
        log_path = str(tmp_path / "access.log")
        flight_dir = str(tmp_path / "flight")
        with serve_in_thread(
            max_pending=1,
            batch_window_ms=300.0,
            access_log=log_path,
            flight_dir=flight_dir,
        ) as handle:
            host, port = handle.address
            with ServeClient(host, port) as client:
                digest = client.submit(fig1_model())["digest"]

                # Park one request in the 300ms gathering window so the
                # single admission slot is occupied.
                parked = threading.Thread(
                    target=lambda: ServeClient(host, port).simulate(
                        digest, id="parked"
                    )
                )
                parked.start()
                for _ in range(3000):  # until the slot is actually taken
                    if handle.server.engine.queue_depth >= 1:
                        break
                    time.sleep(0.001)
                else:
                    pytest.fail("admission queue never filled")

                result = client.simulate(
                    digest, id="retried", trace="retry-1",
                    retries=6, retry_backoff=0.1,
                )[-1]
                assert result["trace"] == "retry-1"
                parked.join()

                # The 503 dumped the ring (rate-limited, so >= 1 file).
                dumps = glob.glob(
                    os.path.join(flight_dir, "flight-*-http-503.json")
                )
                assert dumps
                status, _, body = _http_get(host, port, "/v1/debug/last")
                assert status == 200
                last = json.loads(body.splitlines()[0])
                assert last["event"] == "flight_dump"
                assert last["reason"] == "http-503"
                assert last["health"]["status"] == "ok"

        events = parse_access_log(log_path)
        retried = [e for e in events if e.get("trace") == "retry-1"]
        statuses = [e["status"] for e in retried]
        assert statuses.count(200) == 1
        assert all(s in (200, 503) for s in statuses)
        assert any(
            e["status"] == 503 and e["code"] == "queue_full"
            for e in retried
        ), f"no 503 logged under the retried trace: {retried}"

    def test_debug_last_serves_the_live_ring_before_any_dump(self, server):
        host, port = server.address
        with ServeClient(host, port) as client:
            client.simulate(fig1_model(), id="ring-1")
        status, _, body = _http_get(host, port, "/v1/debug/last")
        assert status == 200
        last = json.loads(body.splitlines()[0])
        assert last["event"] == "flight"
        assert last["dumps"] == 0
        assert any(e.get("id") == "ring-1" for e in last["records"])


class TestMetricsEndpoint:
    def test_prometheus_content_type_and_round_trip(self, server):
        host, port = server.address
        with ServeClient(host, port) as client:
            client.simulate(fig1_model(), deadline_ms=30000.0, id="m-1")
        status, content_type, body = _http_get(host, port, "/v1/metrics")
        assert status == 200
        assert content_type == "text/plain; version=0.0.4"
        parsed = parse_prometheus(body.decode("utf-8"))
        # Per-stage latency families, labelled by stage.
        stages = {
            s["labels"]["stage"]
            for s in parsed["repro_serve_stage_ms_count"]["samples"]
        }
        assert {"queue", "coalesce", "serialize"} <= stages
        # The deadline carried a budget: the SLO histogram observed it.
        budget = parsed["repro_serve_deadline_budget_consumed_count"]
        assert budget["samples"][0]["value"] >= 1.0
        # HELP/TYPE exactly once per family, no matter the label sets.
        text = body.decode("utf-8")
        for family in ("repro_serve_stage_ms", "repro_serve_requests_total"):
            assert text.count(f"# HELP {family} ") == 1
            assert text.count(f"# TYPE {family} ") == 1


class TestSlowWatcherAccounting:
    def test_slow_watcher_drops_are_per_client_and_do_not_stall_others(
        self,
    ):
        """Each watch client owns a bounded queue: a client that never
        reads drops on *its* counter while a reading client keeps
        receiving promptly."""
        with serve_in_thread(watch_queue=4) as handle:
            server = handle.server
            reader = WsClient(*handle.address)
            stalled = WsClient(*handle.address)
            try:
                assert reader.call(
                    {"op": "watch"}
                )[-1]["event"] == "watching"
                assert stalled.call(
                    {"op": "watch"}
                )[-1]["event"] == "watching"

                async def poke(count):
                    server._fanout("feed", [
                        {"event": "result", "id": i} for i in range(count)
                    ])

                # 50 offers against capacity-4 queues, all enqueued on
                # the loop thread before any drainer runs: exactly 4
                # accepted and 46 dropped per watcher, deterministically.
                handle.run(poke(50))
                got = [reader.recv(timeout=30.0)["id"] for _ in range(4)]
                assert got == [0, 1, 2, 3]

                # A second round while `stalled` still hasn't read a
                # byte: the reading client is not held back.
                handle.run(poke(50))
                assert [
                    reader.recv(timeout=30.0)["id"] for _ in range(4)
                ] == [0, 1, 2, 3]

                counters = {
                    (w.queue.accepted, w.queue.dropped)
                    for w in server._watchers
                }
                assert counters == {(8, 92)}

                stats = reader.call({"op": "stats", "id": "s"})
                watch = next(
                    r["watch"] for r in stats if "watch" in r
                )
                assert watch == {"sent": 8, "accepted": 8, "dropped": 92}
            finally:
                reader.close()
                stalled.close()


class TestTopCommand:
    def test_top_renders_one_frame_from_a_live_scrape(self, server, capsys):
        from repro.cli import main

        host, port = server.address
        with ServeClient(host, port) as client:
            for i in range(3):
                client.simulate(fig1_model(), id=f"top-{i}")
        rc = main([
            "top", "--host", host, "--port", str(port),
            "--iterations", "1", "--no-clear",
        ])
        out = capsys.readouterr().out
        assert rc == 0
        assert f"repro top -- http://{host}:{port}" in out
        assert "RPS" in out and "P99 MS" in out
        assert "simulate" in out
        assert "cache hit" in out and "queue depth" in out

    def test_top_reports_scrape_failure(self, capsys):
        from repro.cli import main

        rc = main([
            "top", "--host", "127.0.0.1", "--port", "1",
            "--iterations", "1", "--no-clear",
        ])
        assert rc == 1
        assert "cannot scrape" in capsys.readouterr().err
