"""Wire-schema unit tests: request parsing, NDJSON, value encoding."""

import pytest

from repro.core.values import DISC
from repro.serve.protocol import (
    ERROR_STATUS,
    ServeError,
    decode_ndjson,
    decode_registers,
    dump_record,
    encode_ndjson,
    encode_registers,
    error_record,
    parse_sim_request,
    result_record,
)


class TestParseSimRequest:
    def test_digest_request(self):
        request = parse_sim_request({"model": "abc123", "id": 7})
        assert request.model == "abc123"
        assert request.id == 7
        assert request.register_values == {}
        assert request.deadline_ms is None
        assert not request.verify
        assert request.prop_key() is None

    def test_inline_document(self):
        document = {"name": "m", "cs_max": 2}
        request = parse_sim_request({"model": document})
        assert request.model == document

    def test_register_values_decode(self):
        request = parse_sim_request({
            "model": "d", "register_values": {"R1": 9, "R2": "z"},
        })
        assert request.register_values == {"R1": 9, "R2": DISC}

    def test_deadline(self):
        request = parse_sim_request({"model": "d", "deadline_ms": 250})
        assert request.deadline_ms == 250.0

    def test_verify_defaults_properties(self):
        request = parse_sim_request({"model": "d"}, verify=True)
        assert request.verify
        assert request.properties == "default"
        assert request.prop_key() is not None

    def test_prop_key_is_canonical(self):
        a = parse_sim_request(
            {"model": "d", "properties": [{"a": 1, "b": 2}]}, verify=True
        )
        b = parse_sim_request(
            {"model": "d", "properties": [{"b": 2, "a": 1}]}, verify=True
        )
        assert a.prop_key() == b.prop_key()

    @pytest.mark.parametrize("payload", [
        "not an object",
        {"model": ""},
        {"model": "   "},
        {"model": 42},
        {"model": None},
        {"model": "d", "deadline_ms": 0},
        {"model": "d", "deadline_ms": -1},
        {"model": "d", "deadline_ms": True},
        {"model": "d", "deadline_ms": "fast"},
        {"model": "d", "register_values": "R1=2"},
        {"model": "d", "register_values": {"R1": True}},
        {"model": "d", "register_values": {"R1": "bogus"}},
        {"model": "d", "register_values": {"R1": 1.5}},
    ])
    def test_bad_requests(self, payload):
        with pytest.raises(ServeError) as exc:
            parse_sim_request(payload)
        assert exc.value.code == "bad_request"


class TestNdjson:
    def test_roundtrip(self):
        records = [{"event": "result", "id": 1}, {"event": "error"}]
        assert decode_ndjson(encode_ndjson(records)) == records

    def test_blank_lines_skipped(self):
        assert decode_ndjson(b'\n{"a":1}\n\n') == [{"a": 1}]

    def test_garbage_raises(self):
        with pytest.raises(ServeError):
            decode_ndjson(b"{nope}\n")

    def test_dump_record_compact(self):
        assert dump_record({"a": 1, "b": 2}) == '{"a":1,"b":2}'


class TestValues:
    def test_register_roundtrip_with_disconnect(self):
        values = {"R1": 7, "R2": DISC}
        wire = encode_registers(values)
        assert wire["R2"] == "z"
        assert decode_registers(wire) == values


class TestErrors:
    def test_every_code_has_a_status(self):
        for code, (status, _reason) in ERROR_STATUS.items():
            assert ServeError(code, "x").status == status

    def test_unknown_code_rejected(self):
        with pytest.raises(ValueError):
            ServeError("teapot", "x")

    def test_record_shape(self):
        record = error_record("deadline", "too slow", id=3)
        assert record == {
            "event": "error", "code": "deadline",
            "message": "too slow", "id": 3,
        }
        assert "id" not in error_record("deadline", "too slow")


class TestResultRecord:
    def test_simulate_shape(self):
        record = result_record(5, "dig", {"R1": 1}, True, 4, 0.5, 1.25)
        assert record["event"] == "result"
        assert record["id"] == 5
        assert record["digest"] == "dig"
        assert record["registers"] == {"R1": 1}
        assert record["clean"] is True
        assert record["batch"] == 4
        assert "ok" not in record

    def test_verify_shape_carries_report(self):
        report = {"ok": False, "cycles": 3, "properties": 2}
        record = result_record(
            None, "dig", {}, False, 1, 0.0, 0.1, report=report
        )
        assert record["ok"] is False
        assert record["cycles"] == 3
        assert record["properties"] == 2
        assert "id" not in record
