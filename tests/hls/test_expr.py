"""Tests for the algorithmic-level language."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.hls import ExprError, evaluate, parse_expression, parse_program
from repro.hls.expr import BinOp, Const, Var


class TestParsing:
    def test_precedence_mul_over_add(self):
        expr = parse_expression("a + b * c")
        assert isinstance(expr, BinOp) and expr.op == "+"
        assert isinstance(expr.right, BinOp) and expr.right.op == "*"

    def test_shift_binds_looser_than_add(self):
        expr = parse_expression("a >> 2 + 1")
        # '>>' level is looser than '+': a >> (2 + 1)
        assert expr.op == ">>"
        assert isinstance(expr.right, BinOp)

    def test_parentheses(self):
        expr = parse_expression("(a + b) * c")
        assert expr.op == "*"

    def test_left_associativity(self):
        expr = parse_expression("a - b - c")
        assert expr.op == "-"
        assert isinstance(expr.left, BinOp)

    def test_program_inputs_and_outputs(self):
        program = parse_program("t = a + b\nu = t * c\n")
        assert program.inputs == ["a", "b", "c"]
        assert program.outputs == ["t", "u"]

    def test_reassignment_reads_previous_value(self):
        program = parse_program("x = a + 1\nx = x * 2\n")
        env = evaluate(program, {"a": 5})
        assert env["x"] == 12

    def test_comments_and_blank_lines(self):
        program = parse_program("# header\n\nx = a + 1  # trailing\n")
        assert len(program.statements) == 1

    def test_bad_target_rejected(self):
        with pytest.raises(ExprError, match="bad target"):
            parse_program("2x = a\n")

    def test_missing_equals_rejected(self):
        with pytest.raises(ExprError, match="target = expr"):
            parse_program("a + b\n")

    def test_empty_program_rejected(self):
        with pytest.raises(ExprError, match="empty"):
            parse_program("# nothing\n")

    def test_bad_character_rejected(self):
        with pytest.raises(ExprError, match="bad character"):
            parse_expression("a ? b")

    def test_unbalanced_parens_rejected(self):
        with pytest.raises(ExprError):
            parse_expression("(a + b")


class TestEvaluation:
    def test_all_operators(self):
        program = parse_program(
            "s = a + b\nd = a - b\np = a * b\nc = a & b\no = a | b\n"
            "x = a ^ b\nr = a >> 2\nl = a << 2\n"
        )
        env = evaluate(program, {"a": 12, "b": 5}, width=16)
        assert env["s"] == 17
        assert env["d"] == 7
        assert env["p"] == 60
        assert env["c"] == 12 & 5
        assert env["o"] == 12 | 5
        assert env["x"] == 12 ^ 5
        assert env["r"] == 3
        assert env["l"] == 48

    def test_subtraction_wraps(self):
        env = evaluate(parse_program("d = a - b\n"), {"a": 1, "b": 2}, width=8)
        assert env["d"] == 255

    def test_missing_input_reported(self):
        with pytest.raises(ExprError, match="missing input"):
            evaluate(parse_program("x = a + 1\n"), {})

    @given(
        st.integers(min_value=0, max_value=2**16 - 1),
        st.integers(min_value=0, max_value=2**16 - 1),
    )
    def test_evaluation_is_masked(self, a, b):
        env = evaluate(
            parse_program("p = a * b\n"), {"a": a, "b": b}, width=16
        )
        assert 0 <= env["p"] < 2**16
        assert env["p"] == (a * b) % 2**16
