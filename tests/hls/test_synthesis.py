"""Tests for DFG construction, scheduling, allocation and RT emission."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import analyze
from repro.hls import (
    ScheduleError,
    alap_schedule,
    asap_schedule,
    build_dataflow,
    list_schedule,
    parse_program,
    synthesize,
)
from repro.hls.allocation import allocate
from repro.hls.scheduling import class_latency


PROGRAM = parse_program(
    "t = (a + b) * (c - d)\n"
    "u = t + (a >> 2)\n"
    "out = u * u\n"
)


class TestDataflow:
    def test_node_counts(self):
        dfg = build_dataflow(PROGRAM)
        assert len(dfg.op_nodes) == 6  # +, -, *, >>, +, *
        assert set(dfg.inputs) == {"a", "b", "c", "d"}

    def test_same_operand_twice(self):
        dfg = build_dataflow(parse_program("s = a * a\n"))
        node = dfg.op_nodes[0]
        left, right = dfg.preds(node)
        assert left is right

    def test_constants_are_shared(self):
        dfg = build_dataflow(parse_program("x = a + 3\ny = b + 3\n"))
        consts = [n for n in dfg.nodes.values() if n.kind == "const"]
        assert len(consts) == 1

    def test_outputs_track_latest_definition(self):
        dfg = build_dataflow(parse_program("x = a + 1\nx = x + 2\n"))
        producer = dfg.nodes[dfg.outputs["x"]]
        # The second addition is the output.
        assert producer.kind == "op"
        assert len(dfg.op_nodes) == 2

    def test_common_subexpressions_are_shared(self):
        # "a + b" appears three times but is computed once.
        dfg = build_dataflow(
            parse_program("x = (a + b) * c\ny = (a + b) * d\nz = a + b\n")
        )
        adds = [n for n in dfg.op_nodes if n.op == "+"]
        assert len(adds) == 1

    def test_cse_respects_reassignment(self):
        # After x is redefined, "x + 1" means something new.
        dfg = build_dataflow(
            parse_program("y = x + 1\nx = x + 1\nz = x + 1\n")
        )
        adds = [n for n in dfg.op_nodes if n.op == "+"]
        # y and the first x-update share; z's is distinct.
        assert len(adds) == 2

    def test_cse_can_be_disabled(self):
        program = parse_program("x = a + b\ny = a + b\n")
        assert len(build_dataflow(program, cse=False).op_nodes) == 2
        assert len(build_dataflow(program, cse=True).op_nodes) == 1

    def test_cse_preserves_semantics(self):
        source = "x = (a + b) * (a + b)\ny = (a + b) + c\n"
        res = synthesize(source)
        inputs = {"a": 7, "b": 8, "c": 9}
        assert res.simulate(inputs) == res.reference(inputs)

    def test_critical_path(self):
        dfg = build_dataflow(PROGRAM)
        length = dfg.critical_path_length(class_latency)
        # + (ALU,0) -> * (MUL,2) -> + (ALU,0) -> * (MUL,2):
        # 1, then 2, result 4, readable 5, then 5, readable 6, then 6.
        assert length == 6


class TestSchedulers:
    def test_asap_respects_dependences(self):
        dfg = build_dataflow(PROGRAM)
        asap = asap_schedule(dfg)
        for node in dfg.op_nodes:
            for pred_id in dfg.graph.predecessors(node.ident):
                pred = dfg.nodes[pred_id]
                if pred.kind == "op":
                    ready = asap[pred_id] + class_latency(pred.unit_class) + 1
                    assert asap[node.ident] >= ready

    def test_alap_never_earlier_than_asap(self):
        dfg = build_dataflow(PROGRAM)
        asap = asap_schedule(dfg)
        alap = alap_schedule(dfg)
        for ident in asap:
            assert alap[ident] >= asap[ident]

    def test_alap_infeasible_horizon(self):
        dfg = build_dataflow(PROGRAM)
        with pytest.raises(ScheduleError, match="infeasible"):
            alap_schedule(dfg, horizon=2)

    def test_list_schedule_respects_resources(self):
        program = parse_program(
            "\n".join(f"v{i} = a{i} + b{i}" for i in range(6))
        )
        dfg = build_dataflow(program)
        schedule = list_schedule(dfg, {"ALU": 2})
        per_step = {}
        for ident, step in schedule.steps.items():
            per_step.setdefault(step, []).append(ident)
        assert all(len(ids) <= 2 for ids in per_step.values())

    def test_more_resources_shorten_schedule(self):
        program = parse_program(
            "\n".join(f"v{i} = a{i} * b{i}" for i in range(8))
        )
        dfg = build_dataflow(program)
        narrow = list_schedule(dfg, {"MUL": 1}).makespan
        wide = list_schedule(dfg, {"MUL": 4}).makespan
        assert wide < narrow

    def test_unknown_class_rejected(self):
        dfg = build_dataflow(PROGRAM)
        with pytest.raises(ScheduleError, match="unknown unit class"):
            list_schedule(dfg, {"FPU": 1})

    def test_zero_instances_rejected(self):
        dfg = build_dataflow(PROGRAM)
        with pytest.raises(ScheduleError, match="at least one"):
            list_schedule(dfg, {"ALU": 0})


class TestAllocation:
    def test_registers_are_reused(self):
        # Re-assignments kill the previous value of x: the ten
        # intermediate values have disjoint lifetimes and share
        # registers (only the final one is an output).
        program = parse_program(
            "x = a + 1\n" + "\n".join("x = x + 1" for _ in range(9))
        )
        dfg = build_dataflow(program)
        schedule = list_schedule(dfg, {"ALU": 1})
        alloc = allocate(dfg, schedule)
        assert alloc.temp_count <= 2

    def test_reuse_preserves_semantics(self):
        source = "x = a + 1\n" + "\n".join("x = x * 2" for _ in range(6))
        res = synthesize(source, resources={"ALU": 1, "MUL": 1})
        inputs = {"a": 11}
        assert res.simulate(inputs) == res.reference(inputs)

    def test_output_lifetimes_pinned(self):
        res = synthesize("x = a + b\ny = a - b\n")
        # Both outputs live to the end: they must not share a register.
        assert res.output_regs["x"] != res.output_regs["y"]

    def test_bus_count_covers_widest_step(self):
        program = parse_program("x = a + b\ny = c - d\n")
        dfg = build_dataflow(program)
        schedule = list_schedule(dfg, {"ALU": 2})
        alloc = allocate(dfg, schedule)
        assert alloc.bus_count >= 4  # two concurrent 2-operand reads


class TestEndToEnd:
    INPUTS = {"a": 20, "b": 5, "c": 9, "d": 3}

    def test_simulation_matches_reference(self):
        res = synthesize(PROGRAM)
        assert res.simulate(self.INPUTS) == res.reference(self.INPUTS)

    def test_emitted_model_is_statically_clean(self):
        res = synthesize(PROGRAM)
        report = analyze(res.model)
        assert report.clean, str(report)

    def test_resource_constrained_variants_agree(self):
        rich = synthesize(PROGRAM, resources={"ALU": 4, "MUL": 4, "SHIFT": 2})
        poor = synthesize(PROGRAM, resources={"ALU": 1, "MUL": 1, "SHIFT": 1})
        assert rich.simulate(self.INPUTS) == poor.simulate(self.INPUTS)
        assert rich.schedule.makespan <= poor.schedule.makespan

    def test_output_aliased_to_input(self):
        res = synthesize("x = a\ny = x + b\n")
        outs = res.simulate({"a": 3, "b": 4})
        assert outs == {"x": 3, "y": 7}

    @settings(max_examples=20, deadline=None)
    @given(st.integers(min_value=0, max_value=10**6),
           st.integers(min_value=0, max_value=10**6))
    def test_property_random_inputs(self, a, b):
        res = synthesize("p = (a + b) * (a - b)\nq = p ^ a\n")
        inputs = {"a": a, "b": b}
        assert res.simulate(inputs) == res.reference(inputs)

    def test_random_programs_synthesize_correctly(self):
        rng = random.Random(7)
        operators = ["+", "-", "*", "&", "|", "^"]
        for trial in range(5):
            names = ["i0", "i1", "i2"]
            lines = []
            for i in range(rng.randrange(3, 12)):
                a, b = rng.choice(names), rng.choice(names)
                lines.append(f"v{i} = {a} {rng.choice(operators)} ({b} + {i + 1})")
                names.append(f"v{i}")
            res = synthesize(
                "\n".join(lines),
                resources={"ALU": 2, "MUL": 1, "LOGIC": 1},
            )
            inputs = {f"i{k}": rng.randrange(0, 10**6) for k in range(3)}
            assert res.simulate(inputs) == res.reference(inputs), lines
