"""Tests for the CORDIC core."""

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.iks.cordic import (
    CordicSpec,
    atan2,
    cos,
    magnitude,
    sin,
    sin_cos,
    vector,
)
from repro.iks.fixedpoint import DEFAULT_FORMAT, FxFormat

FMT = DEFAULT_FORMAT
SPEC = CordicSpec(FMT)
TOL = 2e-3  # CORDIC converges to ~frac bits; allow a few ulps of slack

angles = st.floats(min_value=-math.pi, max_value=math.pi, allow_nan=False)
coords = st.floats(min_value=-100.0, max_value=100.0, allow_nan=False)


class TestSpec:
    def test_default_iterations_track_format(self):
        assert CordicSpec(FMT).iterations == FMT.frac + 2

    def test_explicit_iterations(self):
        assert CordicSpec(FMT, iterations=8).iterations == 8

    def test_invalid_iterations(self):
        with pytest.raises(ValueError):
            CordicSpec(FMT, iterations=-3)


class TestAtan2:
    @pytest.mark.parametrize(
        "y,x",
        [(1, 1), (1, -1), (-1, -1), (-1, 1), (0.5, 2), (3, -0.2), (0, 1), (2, 0)],
    )
    def test_known_quadrants(self, y, x):
        got = FMT.decode(atan2(SPEC, FMT.encode(y), FMT.encode(x)))
        assert abs(got - math.atan2(y, x)) < TOL

    def test_origin_returns_zero(self):
        assert atan2(SPEC, FMT.encode(0.0), FMT.encode(0.0)) == 0

    @given(coords, coords)
    def test_matches_math_atan2(self, y, x):
        if abs(y) < 0.01 and abs(x) < 0.01:
            return  # quantization dominates near the origin
        got = FMT.decode(atan2(SPEC, FMT.encode(y), FMT.encode(x)))
        expected = math.atan2(y, x)
        # Results near the +/-pi branch cut may land on either side.
        delta = abs(got - expected)
        delta = min(delta, abs(delta - 2 * math.pi))
        assert delta < 5e-3

    @given(coords, coords)
    def test_antisymmetric_in_y(self, y, x):
        if abs(x) < 0.01:
            return
        if x <= 0:
            return  # antisymmetry holds off the branch cut only
        plus = FMT.decode(atan2(SPEC, FMT.encode(y), FMT.encode(x)))
        minus = FMT.decode(atan2(SPEC, FMT.encode(-y), FMT.encode(x)))
        assert abs(plus + minus) < 2 * TOL


class TestMagnitude:
    @pytest.mark.parametrize("x,y", [(3, 4), (1, 0), (0, 2), (-3, 4), (6, -8)])
    def test_known_triangles(self, x, y):
        got = FMT.decode(magnitude(SPEC, FMT.encode(x), FMT.encode(y)))
        assert abs(got - math.hypot(x, y)) < TOL * max(1.0, math.hypot(x, y))

    @given(
        st.floats(min_value=-50, max_value=50, allow_nan=False),
        st.floats(min_value=-50, max_value=50, allow_nan=False),
    )
    def test_matches_hypot(self, x, y):
        got = FMT.decode(magnitude(SPEC, FMT.encode(x), FMT.encode(y)))
        assert abs(got - math.hypot(x, y)) < 0.02 * max(1.0, math.hypot(x, y))


class TestSinCos:
    @given(angles)
    def test_matches_math(self, angle):
        s, c = sin_cos(SPEC, FMT.encode(angle))
        assert abs(FMT.decode(s) - math.sin(angle)) < TOL
        assert abs(FMT.decode(c) - math.cos(angle)) < TOL

    @given(angles)
    def test_pythagorean_identity(self, angle):
        s, c = sin_cos(SPEC, FMT.encode(angle))
        norm = FMT.decode(s) ** 2 + FMT.decode(c) ** 2
        assert abs(norm - 1.0) < 4 * TOL

    @given(st.floats(min_value=-10.0, max_value=10.0, allow_nan=False))
    def test_angle_folding_beyond_pi(self, angle):
        s = FMT.decode(sin(SPEC, FMT.encode(angle)))
        c = FMT.decode(cos(SPEC, FMT.encode(angle)))
        assert abs(s - math.sin(angle)) < 4 * TOL
        assert abs(c - math.cos(angle)) < 4 * TOL


class TestVectoring:
    def test_vector_drives_y_to_zero(self):
        x, z = vector(SPEC, FMT.encode(3.0), FMT.encode(4.0))
        # The residual angle accumulator equals atan2(4, 3).
        assert abs(FMT.decode(z) - math.atan2(4, 3)) < TOL

    def test_determinism(self):
        a = vector(SPEC, FMT.encode(1.25), FMT.encode(-0.5))
        b = vector(SPEC, FMT.encode(1.25), FMT.encode(-0.5))
        assert a == b

    def test_different_formats_are_independent(self):
        small = CordicSpec(FxFormat(width=16, frac=8))
        got = small.fmt.decode(
            atan2(small, small.fmt.encode(1.0), small.fmt.encode(1.0))
        )
        assert abs(got - math.pi / 4) < 0.02
