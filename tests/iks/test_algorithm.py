"""Tests for the algorithmic-level IK reference."""

import math

import pytest
from hypothesis import assume, given
from hypothesis import strategies as st

from repro.iks.algorithm import (
    ArmGeometry,
    forward_kinematics,
    reference_ik_float,
    solve_ik,
)

GEO = ArmGeometry(2.0, 1.5)


def _angle_delta(a: float, b: float) -> float:
    """Distance between two angles on the circle."""
    d = (a - b) % (2 * math.pi)
    return min(d, 2 * math.pi - d)

# Targets comfortably inside the annular workspace.
radii = st.floats(min_value=0.7, max_value=3.3, allow_nan=False)
angles = st.floats(min_value=-math.pi, max_value=math.pi, allow_nan=False)


class TestGeometry:
    def test_reachability(self):
        assert GEO.reachable(3.4, 0.0)
        assert not GEO.reachable(4.0, 0.0)
        assert not GEO.reachable(0.1, 0.0)

    def test_rom_constants_cover_layout(self):
        from repro.iks.chip import ROM_LAYOUT
        from repro.iks.fixedpoint import DEFAULT_FORMAT

        rom = GEO.rom_constants(DEFAULT_FORMAT)
        assert set(rom) == set(ROM_LAYOUT)

    def test_invalid_lengths_rejected(self):
        with pytest.raises(ValueError):
            ArmGeometry(0.0, 1.0)


class TestSolveIK:
    @given(radii, angles)
    def test_forward_kinematics_recovers_target(self, r, phi):
        px, py = r * math.cos(phi), r * math.sin(phi)
        assume(GEO.reachable(px, py))
        sol = solve_ik(px, py, GEO)
        fx, fy = forward_kinematics(sol.theta1_rad, sol.theta2_rad, GEO)
        assert math.hypot(fx - px, fy - py) < 0.02

    @given(radii, angles)
    def test_matches_float_reference(self, r, phi):
        px, py = r * math.cos(phi), r * math.sin(phi)
        assume(GEO.reachable(px, py))
        sol = solve_ik(px, py, GEO)
        t1, t2 = reference_ik_float(px, py, GEO)
        # Angles are equal modulo 2*pi (atan2 branch-cut results may
        # land on either side of +/-pi).
        assert _angle_delta(sol.theta1_rad, t1) < 0.02
        assert _angle_delta(sol.theta2_rad, t2) < 0.02

    def test_deterministic(self):
        a = solve_ik(2.5, 1.0, GEO)
        b = solve_ik(2.5, 1.0, GEO)
        assert (a.theta1, a.theta2) == (b.theta1, b.theta2)

    def test_elbow_down_branch(self):
        # theta2 = atan2(s2, c2) with s2 >= 0: always in [0, pi].
        for px, py in [(2.5, 1.0), (1.0, 2.0), (-1.5, 2.0), (0.8, -1.2)]:
            sol = solve_ik(px, py, GEO)
            assert -1e-9 <= sol.theta2_rad <= math.pi + 1e-9

    def test_fully_stretched_arm(self):
        sol = solve_ik(3.5, 0.0, GEO)
        assert abs(sol.theta2_rad) < 0.02
        assert abs(sol.theta1_rad) < 0.02
