"""Tests for the on-chip forward-kinematics microprogram and the
FK(IK(p)) consistency loop (extension of the §3 case study)."""

import math

import pytest
from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.core import analyze
from repro.iks import (
    ArmGeometry,
    IKSConfig,
    build_chip,
    fk_microprogram,
    fk_of_ik,
    forward_kinematics,
    run_fk_chip,
)
from repro.iks.chip import ACCUMULATORS
from repro.microcode import MicrocodeTranslator

GEO = ArmGeometry()  # L1 = 2.0, L2 = 1.5

ANGLES = [(-0.5, 1.0), (0.5, 1.5), (1.2, 0.3), (-1.0, 2.0), (0.0, 0.0)]


class TestFkProgram:
    def test_schedule_is_statically_clean(self):
        model = build_chip(IKSConfig(cs_max=31), j_values={2: 0.5, 3: 1.0})
        table, maps = fk_microprogram()
        MicrocodeTranslator(model, ACCUMULATORS).translate(table, maps)
        report = analyze(model)
        assert report.clean, str(report)

    @pytest.mark.parametrize("t1,t2", ANGLES)
    def test_matches_floating_point_fk(self, t1, t2):
        run = run_fk_chip(t1, t2)
        assert run.clean
        ex, ey = forward_kinematics(t1, t2, GEO)
        assert abs(run.x_real - ex) < 5e-3
        assert abs(run.y_real - ey) < 5e-3

    def test_uses_the_idle_units(self):
        # FK exercises X_ADD/Y_ADD and the CORDIC SIN/COS ops that the
        # IK program leaves unused.
        model = build_chip(IKSConfig(cs_max=31), j_values={2: 0.5, 3: 1.0})
        table, maps = fk_microprogram()
        result = MicrocodeTranslator(model, ACCUMULATORS).translate(table, maps)
        units = {a.transfer.module for a in result.by_kind("unit_op")}
        assert {"X_ADD", "Y_ADD", "Z_ADD", "MULT", "CORDIC"} <= units
        ops = {a.transfer.op for a in result.by_kind("unit_op")
               if a.transfer.module == "CORDIC"}
        assert ops == {"SIN", "COS"}

    def test_no_conflicts_at_runtime(self):
        run = run_fk_chip(0.7, -0.9)
        assert run.simulation.conflicts == []


class TestFkOfIk:
    @pytest.mark.parametrize("px,py", [(2.5, 1.0), (1.0, 2.0), (0.8, -1.2)])
    def test_loop_closes_on_the_target(self, px, py):
        ik, fk = fk_of_ik(px, py)
        assert ik.clean and fk.clean
        assert math.hypot(fk.x_real - px, fk.y_real - py) < 0.02

    @settings(max_examples=10, deadline=None)
    @given(
        st.floats(min_value=0.8, max_value=3.2, allow_nan=False),
        st.floats(min_value=-math.pi, max_value=math.pi, allow_nan=False),
    )
    def test_loop_property(self, r, phi):
        px, py = r * math.cos(phi), r * math.sin(phi)
        assume(GEO.reachable(px, py))
        ik, fk = fk_of_ik(px, py)
        assert math.hypot(fk.x_real - px, fk.y_real - py) < 0.05
