"""Tests for the fixed-point encoding layer."""

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.iks.fixedpoint import DEFAULT_FORMAT, FxFormat, _isqrt

FMT = DEFAULT_FORMAT

reals = st.floats(
    min_value=-1000.0, max_value=1000.0, allow_nan=False, allow_infinity=False
)
patterns = st.integers(min_value=0, max_value=FMT.mask)


class TestFormat:
    def test_validation(self):
        with pytest.raises(ValueError):
            FxFormat(width=1)
        with pytest.raises(ValueError):
            FxFormat(width=8, frac=8)

    def test_scale_and_bounds(self):
        fmt = FxFormat(width=16, frac=8)
        assert fmt.scale == 256
        assert fmt.min_signed == -(1 << 15)
        assert fmt.max_signed == (1 << 15) - 1


class TestEncodeDecode:
    @given(reals)
    def test_roundtrip_within_half_ulp(self, value):
        pattern = FMT.encode(value)
        assert 0 <= pattern <= FMT.mask
        assert abs(FMT.decode(pattern) - value) <= 1.0 / FMT.scale

    def test_negative_values_use_twos_complement(self):
        pattern = FMT.encode(-1.0)
        assert pattern == (1 << FMT.width) - FMT.scale

    def test_saturation_at_bounds(self):
        huge = FMT.encode(1e9)
        assert FMT.to_signed(huge) == FMT.max_signed
        tiny = FMT.encode(-1e9)
        assert FMT.to_signed(tiny) == FMT.min_signed

    @given(patterns)
    def test_to_signed_from_signed_roundtrip(self, pattern):
        assert FMT.from_signed(FMT.to_signed(pattern)) == pattern


class TestArithmetic:
    @given(reals, reals)
    def test_add_matches_real_addition(self, a, b):
        result = FMT.decode(FMT.add(FMT.encode(a), FMT.encode(b)))
        expected = max(-130000, min(130000, a + b))
        assert abs(result - expected) <= 3.0 / FMT.scale

    @given(reals, reals)
    def test_sub_is_add_of_negation(self, a, b):
        ea, eb = FMT.encode(a), FMT.encode(b)
        assert FMT.sub(ea, eb) == FMT.add(ea, FMT.neg(eb))

    @given(
        st.floats(min_value=-100.0, max_value=100.0, allow_nan=False),
        st.floats(min_value=-100.0, max_value=100.0, allow_nan=False),
    )
    def test_mul_matches_real_multiplication(self, a, b):
        result = FMT.decode(FMT.mul(FMT.encode(a), FMT.encode(b)))
        assert abs(result - a * b) < 0.02  # quantization of both inputs

    def test_mul_rounds_to_nearest(self):
        fmt = FxFormat(width=16, frac=4)
        # 0.5 * 0.5 = 0.25 -> raw 4 exactly.
        assert fmt.mul(fmt.encode(0.5), fmt.encode(0.5)) == fmt.encode(0.25)

    @given(st.floats(min_value=0.0, max_value=1000.0, allow_nan=False))
    def test_sqrt_matches_math_sqrt(self, a):
        result = FMT.decode(FMT.sqrt(FMT.encode(a)))
        assert abs(result - math.sqrt(a)) < 0.01

    def test_sqrt_of_negative_clamps_to_zero(self):
        assert FMT.sqrt(FMT.encode(-2.0)) == 0

    @given(st.floats(min_value=-500.0, max_value=500.0, allow_nan=False),
           st.integers(min_value=0, max_value=10))
    def test_arshift_halves(self, a, k):
        result = FMT.to_signed(FMT.arshift(FMT.encode(a), k))
        expected = FMT.to_signed(FMT.encode(a)) >> k
        assert result == expected

    @given(reals, reals)
    def test_compare_consistent_with_decode(self, a, b):
        ea, eb = FMT.encode(a), FMT.encode(b)
        cmp = FMT.compare(ea, eb)
        da, db = FMT.decode(ea), FMT.decode(eb)
        if cmp == 0:
            assert da == db
        elif cmp < 0:
            assert da < db
        else:
            assert da > db


class TestIsqrt:
    @given(st.integers(min_value=0, max_value=10**12))
    def test_isqrt_is_floor_sqrt(self, n):
        r = _isqrt(n)
        assert r * r <= n < (r + 1) * (r + 1)

    def test_isqrt_rejects_negative(self):
        with pytest.raises(ValueError):
            _isqrt(-1)
