"""Tests for the Fig.-3 chip model and the end-to-end microcoded flow
(the paper's §3 case study, experiment E6's correctness core)."""

import math

import pytest

from repro.core import DISC, analyze
from repro.iks import (
    ArmGeometry,
    IKSConfig,
    build_chip,
    crosscheck,
    ik_microprogram,
    run_ik_chip,
    solve_ik,
)
from repro.iks.chip import ACCUMULATORS, ROM_LAYOUT, adder_operations
from repro.iks.fixedpoint import DEFAULT_FORMAT as FMT
from repro.iks.flow import build_ik_model
from repro.microcode import MicrocodeTranslator

TARGETS = [(2.5, 1.0), (1.0, 2.0), (-1.5, 2.0), (3.0, 0.5), (0.8, -1.2)]


class TestChipStructure:
    def test_fig3_resources_present(self):
        model = build_chip()
        for reg in ("P", "X", "Y", "Z", "r", "zang", "F"):
            assert reg in model.registers
        for reg in ("x1", "x2", "y1", "y2", "z1", "z2"):
            assert reg in model.registers
        assert "BusA" in model.buses and "BusB" in model.buses
        for unit in ("MULT", "X_ADD", "Y_ADD", "Z_ADD", "CORDIC"):
            assert unit in model.modules

    def test_multiplier_is_two_stage_pipelined(self):
        model = build_chip()
        mult = model.modules["MULT"]
        assert mult.latency == 2
        assert mult.pipelined

    def test_adders_are_not_pipelined_multi_function(self):
        # "The adders are not pipelined" -- modeled as combinational
        # (latency 0) multi-operation units with op-select ports.
        model = build_chip()
        for adder in ("X_ADD", "Y_ADD", "Z_ADD"):
            spec = model.modules[adder]
            assert spec.latency == 0
            assert spec.multi_op
            assert "ADD" in spec.operations and "SUB" in spec.operations

    def test_adder_shift_variants(self):
        ops = adder_operations(FMT)
        a, b = FMT.encode(1.0), FMT.encode(8.0)
        assert ops["ADD_SHR3"].fn(a, b) == FMT.encode(2.0)

    def test_rom_holds_geometry_constants(self):
        geo = ArmGeometry(2.0, 1.5)
        model = build_chip(IKSConfig(geometry=geo))
        rom = geo.rom_constants(FMT)
        for i, key in enumerate(ROM_LAYOUT):
            assert model.registers[f"M{i}"].init == rom[key]

    def test_inputs_preloaded(self):
        model = build_chip(px=2.5, py=1.0)
        assert model.registers["J0"].init == FMT.encode(2.5)
        assert model.registers["J1"].init == FMT.encode(1.0)

    def test_accumulator_map_is_consistent(self):
        model = build_chip()
        for unit, acc in ACCUMULATORS.items():
            assert unit in model.modules
            assert acc in model.registers


class TestMicroprogram:
    def test_program_fits_cs_max(self):
        table, _ = ik_microprogram()
        assert table.total_cycles() <= IKSConfig().cs_max

    def test_static_analysis_is_clean(self):
        model, _ = build_ik_model(2.5, 1.0)
        report = analyze(model)
        assert report.clean, str(report)

    def test_codes_are_shared_between_instructions(self):
        table, maps = ik_microprogram()
        opc2s = [i.opc2 for i in table]
        # The MULT-only pattern is used by several instructions.
        assert len(opc2s) > len(set(opc2s))

    def test_nop_uses_code_zero(self):
        table, maps = ik_microprogram()
        nops = [i for i in table if i.opc1 == 0 and i.opc2 == 0]
        assert nops  # latency padding exists
        assert maps.routing[0].routes == ()


class TestEndToEnd:
    """The paper's bottom-up verification: RT model vs algorithmic level."""

    @pytest.mark.parametrize("px,py", TARGETS)
    def test_bit_exact_against_algorithm(self, px, py):
        run, ref = crosscheck(px, py)
        assert run.clean
        assert run.theta1 == ref.theta1
        assert run.theta2 == ref.theta2

    @pytest.mark.parametrize("px,py", TARGETS)
    def test_angles_solve_the_kinematics(self, px, py):
        from repro.iks import forward_kinematics

        run = run_ik_chip(px, py)
        fx, fy = forward_kinematics(run.theta1_rad, run.theta2_rad)
        assert math.hypot(fx - px, fy - py) < 0.02

    def test_no_conflicts_during_program(self):
        run = run_ik_chip(2.5, 1.0)
        assert run.simulation.conflicts == []

    def test_delta_cycle_budget(self):
        # CS_MAX * 6 delta cycles, the paper's cost model.
        cfg = IKSConfig()
        run = run_ik_chip(2.5, 1.0, cfg)
        assert run.simulation.stats.delta_cycles == cfg.cs_max * 6

    def test_intermediate_s2_parked_in_r_file(self):
        run = run_ik_chip(2.5, 1.0)
        ref = solve_ik(2.5, 1.0)
        # R2 holds sin(theta2) (saved for the theta1 computation).
        s2 = run.simulation["R2"]
        assert abs(FMT.decode(s2) - math.sin(ref.theta2_rad)) < 5e-3

    def test_different_geometry(self):
        geo = ArmGeometry(1.0, 1.0)
        cfg = IKSConfig(geometry=geo)
        run, ref = crosscheck(1.2, 0.7, cfg)
        assert run.clean
        assert run.theta1 == ref.theta1
        assert run.theta2 == ref.theta2

    def test_translation_inventory(self):
        _, translation = build_ik_model(2.5, 1.0)
        kinds = {a.kind for a in translation.actions}
        assert kinds == {"route", "direct", "unit_op"}
        # Six multiplications, three Z_ADD combines + one k1 add +
        # one theta1 subtract, four CORDIC invocations.
        unit_ops = translation.by_kind("unit_op")
        by_module = {}
        for action in unit_ops:
            by_module.setdefault(action.transfer.module, []).append(action)
        assert len(by_module["MULT"]) == 6
        assert len(by_module["CORDIC"]) == 4
        assert len(by_module["Z_ADD"]) == 5
