"""Tests for the three-DOF solution (position + tool orientation):
microprogram composition (prologue + shared IK body + epilogue)."""

import math

import pytest
from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.core import analyze, reschedule
from repro.iks import (
    ArmGeometry,
    IK3_TOTAL_STEPS,
    IKSConfig,
    build_ik3_model,
    forward_kinematics3,
    run_ik3_chip,
    solve_ik3,
)

GEO = ArmGeometry()  # L1=2.0 L2=1.5 L3=0.5

TARGETS = [
    (2.8, 1.2, 0.6),
    (1.5, 2.0, 1.2),
    (2.0, -1.0, -0.4),
    (-1.2, 2.2, 2.0),
]


def wrist_reachable(px, py, phi, geo=GEO):
    xw = px - geo.l3 * math.cos(phi)
    yw = py - geo.l3 * math.sin(phi)
    r = math.hypot(xw, yw)
    # Keep comfortably inside the annulus (fixed point near the edges
    # amplifies the acos slope).
    return abs(geo.l1 - geo.l2) + 0.3 <= r <= (geo.l1 + geo.l2) - 0.3


class TestAlgorithmicIk3:
    @pytest.mark.parametrize("px,py,phi", TARGETS)
    def test_forward_kinematics_recovers_pose(self, px, py, phi):
        sol = solve_ik3(px, py, phi, GEO)
        fx, fy, fphi = forward_kinematics3(
            sol.theta1_rad, sol.theta2_rad, sol.theta3_rad, GEO
        )
        assert math.hypot(fx - px, fy - py) < 0.02
        assert abs(_wrap(fphi - phi)) < 0.02

    @settings(max_examples=25, deadline=None)
    @given(
        st.floats(min_value=0.8, max_value=3.0, allow_nan=False),
        st.floats(min_value=-math.pi, max_value=math.pi, allow_nan=False),
        st.floats(min_value=-math.pi, max_value=math.pi, allow_nan=False),
    )
    def test_pose_property(self, r, direction, phi):
        px, py = r * math.cos(direction), r * math.sin(direction)
        assume(wrist_reachable(px, py, phi))
        sol = solve_ik3(px, py, phi, GEO)
        fx, fy, fphi = forward_kinematics3(
            sol.theta1_rad, sol.theta2_rad, sol.theta3_rad, GEO
        )
        assert math.hypot(fx - px, fy - py) < 0.05
        assert abs(_wrap(fphi - phi)) < 0.05


class TestChipIk3:
    def test_composed_program_is_statically_clean(self):
        model = build_ik3_model(2.8, 1.2, 0.6)
        report = analyze(model)
        assert report.clean, str(report)

    @pytest.mark.parametrize("px,py,phi", TARGETS)
    def test_bit_exact_against_algorithm(self, px, py, phi):
        run = run_ik3_chip(px, py, phi)
        ref = solve_ik3(px, py, phi, GEO)
        assert run.clean
        assert (run.theta1, run.theta2, run.theta3) == (
            ref.theta1, ref.theta2, ref.theta3,
        )

    def test_delta_budget(self):
        run = run_ik3_chip(2.8, 1.2, 0.6)
        assert (
            run.simulation.stats.delta_cycles
            == (IK3_TOTAL_STEPS + 1) * 6
        )

    def test_program_composition_lengths(self):
        from repro.iks import ik3_epilogue, ik3_prologue, ik_microprogram
        from repro.iks.microprogram import (
            IK3_BODY_STEPS,
            IK3_EPILOGUE_STEPS,
            IK3_PROLOGUE_STEPS,
        )

        assert ik3_prologue()[0].total_cycles() == IK3_PROLOGUE_STEPS
        assert ik_microprogram()[0].total_cycles() == IK3_BODY_STEPS
        assert ik3_epilogue()[0].total_cycles() == IK3_EPILOGUE_STEPS

    def test_reschedule_compacts_the_composition(self):
        model = build_ik3_model(2.8, 1.2, 0.6)
        result = reschedule(model)
        assert result.new_cs_max < model.cs_max
        assert (
            result.model.elaborate().run().registers
            == model.elaborate().run().registers
        )


def _wrap(angle: float) -> float:
    while angle > math.pi:
        angle -= 2 * math.pi
    while angle < -math.pi:
        angle += 2 * math.pi
    return angle
