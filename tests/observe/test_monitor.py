"""The temporal assertion monitor: properties, reports, parsing, CLI glue."""

import json

import pytest

from repro.core import DISC, ILLEGAL
from repro.engine import run_metrics
from repro.observe import (
    AssertionMonitor,
    MonitorError,
    always_at,
    check_model,
    default_properties,
    implies_within,
    load_properties,
    monitored_watch_list,
    never_illegal,
    no_conflicts,
    parse_properties,
    stable_between,
    when,
)
from repro.observe.monitor import AssertionReport, Violation

from .conftest import conflict_model, fig1_model


def run_monitored(model, properties, backend="event", **kwargs):
    monitor = AssertionMonitor(properties)
    model.elaborate(backend=backend, observe=monitor, **kwargs).run()
    assert monitor.report is not None
    return monitor.report


class TestDefaultProperties:
    def test_clean_model_passes(self):
        report = run_monitored(fig1_model(), default_properties())
        assert report.ok
        assert report.properties == ["never_illegal", "no_conflicts"]
        assert report.cycles == 42
        assert report.conflicts == 0

    def test_conflict_model_fails_both(self):
        report = run_monitored(conflict_model(), default_properties())
        assert not report.ok
        by_prop = report.by_property()
        assert by_prop["never_illegal"]
        assert by_prop["no_conflicts"]

    def test_violations_carry_cs_ph_and_signal(self):
        report = run_monitored(conflict_model(), [no_conflicts()])
        first = report.violations[0]
        assert (first.at.step, first.at.phase.vhdl_name) == (2, "rb")
        assert first.signal == "B1"
        assert "drivers" in first.message

    def test_violations_sorted_by_time(self):
        report = run_monitored(conflict_model(), default_properties())
        keys = [v.sort_key() for v in report.violations]
        assert keys == sorted(keys)


class TestScopedProperties:
    def test_never_illegal_scoped_to_signal(self):
        report = run_monitored(conflict_model(), [never_illegal("B2")])
        assert {v.signal for v in report.violations} == {"B2"}

    def test_no_conflicts_scoped(self):
        report = run_monitored(conflict_model(), [no_conflicts("R3_in")])
        assert [v.signal for v in report.violations] == ["R3_in"]
        assert report.conflicts == 7  # all conflicts counted, one matched

    def test_always_at_passes_on_clean_model(self):
        prop = always_at(
            "cr", lambda state: state.get("R1", DISC) != ILLEGAL,
            signal="R1",
        )
        assert run_monitored(fig1_model(), [prop]).ok

    def test_always_at_catches_illegal_register(self):
        prop = always_at(
            "ra", lambda state: state.get("R3", DISC) != ILLEGAL,
            signal="R3",
        )
        report = run_monitored(conflict_model(), [prop])
        assert not report.ok
        v = report.violations[0]
        assert (v.at.step, v.signal, v.observed) == (4, "R3", ILLEGAL)


class TestImpliesWithin:
    def test_response_in_time_passes(self):
        # Fig. 1 drives B1 from step 5 on; R1 latches 5 at cs7.ra --
        # two control steps after the first trigger.
        prop = implies_within(
            when("B1", op="ne", value=DISC),
            when("R1", op="eq", value=5, changed_only=True),
            k_steps=2,
        )
        assert run_monitored(fig1_model(), [prop]).ok

    def test_missing_response_is_reported_with_trigger_time(self):
        prop = implies_within(
            when("B1", op="ne", value=DISC),
            when("R2", op="eq", value=999),
            k_steps=1,
        )
        report = run_monitored(fig1_model(), [prop])
        assert not report.ok
        assert report.violations[0].at.step == 5

    def test_obligation_open_at_run_end_is_strong(self):
        # Trigger in the final step: the window never elapses inside
        # the run, but strong semantics flag it at end of run.
        model = fig1_model()
        prop = implies_within(
            when("R1", op="eq", value=5, changed_only=True),
            when("R2", op="eq", value=999),
            k_steps=5,
        )
        report = run_monitored(model, [prop])
        assert len(report.violations) == 1

    def test_negative_window_rejected(self):
        with pytest.raises(MonitorError):
            implies_within(when("B1"), when("B1"), k_steps=-1)


class TestStableBetween:
    def test_untouched_register_is_stable(self):
        assert run_monitored(
            fig1_model(), [stable_between("R2", 1, 7)]
        ).ok

    def test_latch_inside_window_violates(self):
        report = run_monitored(fig1_model(), [stable_between("R1", 1, 7)])
        assert not report.ok
        v = report.violations[0]
        assert (v.signal, v.observed, v.expected) == ("R1", 5, 2)
        assert v.at.step == 7  # value driven in 6 is latched at cs7.ra

    def test_window_after_latch_is_stable(self):
        assert run_monitored(
            fig1_model(), [stable_between("R1", 1, 6)]
        ).ok

    def test_empty_window_rejected(self):
        with pytest.raises(MonitorError):
            stable_between("R1", 5, 4)


class TestAssertionReport:
    def test_render_marks_pass_and_fail(self):
        report = run_monitored(conflict_model(), default_properties())
        text = report.render()
        assert "assertion report:" in text
        assert "FAIL never_illegal" in text
        assert "FAIL no_conflicts" in text
        assert "cs2.rb" in text

    def test_to_dict_round_trips_through_json(self):
        report = run_monitored(conflict_model(), default_properties())
        decoded = json.loads(report.to_json())
        assert decoded["ok"] is False
        assert decoded["violations"][0]["cs"] == 2
        assert decoded["violations"][0]["ph"] == "rb"
        # ILLEGAL encodes as "x" on the wire.
        assert "x" in json.dumps(decoded)

    def test_end_of_run_violation_encodes_null_time(self):
        v = Violation(
            prop="p", at=None, signal=None, observed=None,
            expected="response", message="m",
        )
        assert v.to_dict()["cs"] is None
        assert v.sort_key() > Violation(
            prop="p", at=None, signal=None, observed=None,
            expected="", message="",
        ).sort_key() or True  # sort_key is total even without time

    def test_empty_report_is_ok(self):
        assert AssertionReport().ok


class TestRunMetricsMonitor:
    def test_violations_column(self):
        monitor = AssertionMonitor(default_properties())
        sim = conflict_model().elaborate(observe=monitor).run()
        row = run_metrics(sim, monitor=monitor)
        assert row["violations"] == len(monitor.report.violations)
        assert row["violations"] > 0

    def test_report_accepted_directly(self):
        monitor = AssertionMonitor(default_properties())
        sim = fig1_model().elaborate(observe=monitor).run()
        row = run_metrics(sim, monitor=monitor.report)
        assert row["violations"] == 0

    def test_no_monitor_no_column(self):
        sim = fig1_model().elaborate().run()
        assert "violations" not in run_metrics(sim)


class TestCheckModel:
    def test_scalar_backend(self):
        report = check_model(conflict_model(), default_properties())
        assert not report.ok

    def test_batched_single_mapping_returns_single_report(self):
        pytest.importorskip("numpy")
        report = check_model(
            fig1_model(), default_properties(),
            backend="compiled-batched",
            register_values={"R1": 7, "R2": 1},
        )
        assert report.ok

    def test_batched_sequence_returns_per_lane(self):
        pytest.importorskip("numpy")
        reports = check_model(
            fig1_model(), default_properties(),
            backend="compiled-batched",
            register_values=[{"R1": 1}, {"R1": 2}, {"R1": 3}],
        )
        assert len(reports) == 3
        assert all(r.ok for r in reports)

    def test_sequence_on_scalar_backend_rejected(self):
        with pytest.raises(MonitorError):
            check_model(
                fig1_model(), default_properties(),
                backend="compiled", register_values=[{"R1": 1}],
            )

    def test_monitored_watch_list_covers_buses_and_reg_outs(self):
        model = fig1_model()
        watch = monitored_watch_list(model)
        assert set(watch) == {"B1", "B2", "R1_out", "R2_out"}


class TestParseProperties:
    def test_never_default_is_illegal(self):
        props = parse_properties('[{"type": "never", "signal": "B1"}]')
        report = run_monitored(conflict_model(), props)
        assert {v.signal for v in report.violations} == {"B1"}

    def test_never_with_op_and_value(self):
        props = parse_properties(
            '[{"type": "never", "signal": "R1", "op": "gt", "value": 4}]'
        )
        report = run_monitored(fig1_model(), props)
        assert not report.ok  # R1 latches 5

    def test_value_accepts_z_and_x(self):
        props = parse_properties(
            '[{"type": "never", "signal": "B1", "value": "x"}]'
        )
        assert not run_monitored(conflict_model(), props).ok

    def test_properties_wrapper_object(self):
        props = parse_properties(
            '{"properties": [{"type": "no_conflicts"}]}'
        )
        assert props[0].label == "no_conflicts"

    def test_full_catalogue_parses(self):
        source = json.dumps([
            {"type": "never"},
            {"type": "no_conflicts", "signals": ["B1"]},
            {"type": "always_at", "phase": "cr", "signal": "R1",
             "op": "ne", "value": "x"},
            {"type": "implies_within",
             "trigger": {"signal": "B1", "op": "ne", "value": "z"},
             "response": {"signal": "R1", "value": 5, "changed": True},
             "steps": 2},
            {"type": "stable_between", "register": "R2",
             "from": 1, "to": 7, "label": "r2-frozen"},
        ])
        props = parse_properties(source)
        assert len(props) == 5
        assert props[4].label == "r2-frozen"
        assert run_monitored(fig1_model(), props).ok

    @pytest.mark.parametrize("bad", [
        "not json",
        "{}",
        "[]",
        '[{"type": "nope"}]',
        '[{"type": "never", "op": "spaceship"}]',
        '[{"type": "never", "value": 1.5}]',
        '[{"type": "always_at", "signal": "R1"}]',
        '[{"type": "always_at", "phase": "xx", "signal": "R1"}]',
        '[{"type": "implies_within", "trigger": {"signal": "B1"}}]',
        '[{"type": "implies_within", "trigger": {"signal": "B1"},'
        ' "response": {"signal": "B1"}, "steps": -1}]',
        '[{"type": "implies_within", "trigger": {},'
        ' "response": {"signal": "B1"}, "steps": 1}]',
        '[{"type": "stable_between", "register": "R1"}]',
        '[{"type": "no_conflicts", "signals": "B1"}]',
        '["just a string"]',
    ])
    def test_malformed_specs_rejected(self, bad):
        with pytest.raises(MonitorError):
            parse_properties(bad)

    def test_error_names_the_property_index(self):
        with pytest.raises(MonitorError, match="property #2"):
            parse_properties(
                '[{"type": "never"}, {"type": "bogus"}]'
            )

    def test_load_properties_missing_file(self):
        with pytest.raises(MonitorError):
            load_properties("/nonexistent/assert.json")

    def test_load_properties_reads_file(self, tmp_path):
        path = tmp_path / "props.json"
        path.write_text('[{"type": "no_conflicts"}]')
        props = load_properties(str(path))
        assert run_monitored(conflict_model(), props).conflicts == 7


class TestMonitorReuse:
    def test_one_monitor_across_runs_resets(self):
        monitor = AssertionMonitor(default_properties())
        conflict_model().elaborate(observe=monitor).run()
        assert not monitor.report.ok
        fig1_model().elaborate(observe=monitor).run()
        assert monitor.report.ok  # fresh evaluation per run

    def test_listener_sees_every_violation_live(self):
        seen = []
        monitor = AssertionMonitor(
            default_properties(), listener=seen.append
        )
        conflict_model().elaborate(observe=monitor).run()
        # The listener sees detection order; the report is re-sorted
        # by (CS, PH) -- same set either way.
        assert sorted(seen, key=lambda v: v.sort_key()) \
            == monitor.report.violations
