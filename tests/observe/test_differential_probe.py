"""Cross-backend probe parity: the event kernel and the compiled
executor must drive the same probe with *identical ordered* event
sequences -- the acceptance criterion that makes one observability
surface trustworthy over both engines."""

import pytest

from repro.core import ModuleSpec, RTModel

from .conftest import CollectingProbe, conflict_model, fig1_model


def probe_stream(model, backend):
    probe = CollectingProbe()
    sim = model.elaborate(backend=backend, observe=probe).run()
    return probe, sim


class TestDifferentialOrdering:
    @pytest.mark.parametrize("builder", [fig1_model, conflict_model])
    def test_identical_ordered_sequences(self, builder):
        ev_probe, ev_sim = probe_stream(builder(), "event")
        co_probe, co_sim = probe_stream(builder(), "compiled")
        assert ev_probe.body() == co_probe.body()
        assert ev_sim.registers == co_sim.registers

    def test_conflicting_model_actually_conflicts(self):
        ev_probe, ev_sim = probe_stream(conflict_model(), "event")
        co_probe, _ = probe_stream(conflict_model(), "compiled")
        conflicts = [e for e in ev_probe.body() if e[0] == "conflict"]
        assert conflicts, "the fixture must exercise the conflict path"
        assert conflicts == [e for e in co_probe.body() if e[0] == "conflict"]
        # Probe conflicts mirror the backend's own conflict log.
        assert len(conflicts) == len(ev_sim.conflicts)

    def test_conflicts_precede_their_phase_record(self):
        """Canonical per-cycle order: conflict events for (CS, PH) are
        emitted before that cycle's phase record on both backends."""
        for backend in ("event", "compiled"):
            probe, _ = probe_stream(conflict_model(), backend)
            body = probe.body()
            for i, event in enumerate(body):
                if event[0] != "conflict":
                    continue
                where = event[1]
                phase_index = body.index(("phase", where[0], where[1]))
                assert i < phase_index, (
                    f"{backend}: conflict at {where} reported after its "
                    f"phase record"
                )

    def test_multi_register_multi_bus_parity(self):
        """A wider model: several concurrent transfers per step."""

        def builder():
            model = RTModel("wide", cs_max=6)
            model.register("A", init=1)
            model.register("B", init=2)
            model.register("C", init=3)
            model.bus("B1")
            model.bus("B2")
            model.bus("B3")
            model.module(ModuleSpec("ADD", latency=1))
            model.module(ModuleSpec("SUB", latency=0))
            model.add_transfer("(A,B1,B,B2,1,ADD,2,B3,C)")
            model.add_transfer("(C,B1,A,B2,3,SUB,3,B3,B)")
            model.add_transfer("(B,B1,C,B2,4,ADD,5,B3,A)")
            return model

        ev_probe, ev_sim = probe_stream(builder(), "event")
        co_probe, co_sim = probe_stream(builder(), "compiled")
        assert ev_probe.body() == co_probe.body()
        assert ev_sim.registers == co_sim.registers

    def test_unobserved_results_unchanged_by_probing(self):
        plain = conflict_model().elaborate(backend="compiled").run()
        _, probed = probe_stream(conflict_model(), "compiled")
        assert plain.registers == probed.registers
        assert len(plain.conflicts) == len(probed.conflicts)
        assert plain.stats.delta_cycles == probed.stats.delta_cycles
