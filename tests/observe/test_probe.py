"""The Probe protocol, fan-out, and the observe= attachment seam."""

from repro.core.phases import Phase, StepPhase
from repro.observe import Probe, ProbeSet, combine_probes

from .conftest import CollectingProbe, fig1_model, tiny_model


class TestProbeBase:
    def test_base_probe_is_a_no_op(self):
        sim = fig1_model().elaborate(observe=Probe()).run()
        assert sim.registers == {"R1": 5, "R2": 3}

    def test_default_elaboration_installs_nothing(self):
        sim = fig1_model().elaborate()
        assert sim._probe is None

    def test_probe_receives_run_bracket(self, collector):
        fig1_model().elaborate(observe=collector).run()
        assert collector.run_started == 1
        assert collector.run_ended == 1
        assert collector.wall > 0.0
        assert collector.events[0] == ("run_start", "event")
        assert collector.events[-1] == ("run_end", "event")

    def test_step_and_phase_cadence(self, collector):
        tiny_model(cs_max=3).elaborate(observe=collector).run()
        steps = [e[1] for e in collector.events if e[0] == "step"]
        assert steps == [1, 2, 3]
        phases = [e for e in collector.events if e[0] == "phase"]
        assert len(phases) == 3 * 6
        # Six phases per step, in schedule order.
        assert [p[2] for p in phases[:6]] == [
            int(ph) for ph in Phase
        ]

    def test_latch_reported_one_cycle_after_cr(self, collector):
        # The CR latch of step 6 is driven during the CR cycle and
        # becomes effective one delta cycle later (VHDL transaction
        # semantics) -- the probe reports the effective change.
        fig1_model().elaborate(observe=collector).run()
        latches = [e for e in collector.events if e[0] == "latch"]
        assert latches == [("latch", (7, int(Phase.RA)), "R1", 5)]

    def test_bus_drives_carry_location_and_value(self, collector):
        fig1_model().elaborate(observe=collector).run()
        drives = [e for e in collector.events if e[0] == "bus"]
        # The step-5 reads assert R1 onto B1 and R2 onto B2; both
        # become effective in the RB cycle and release to DISC after.
        assert ("bus", (5, int(Phase.RB)), "B1", 2) in drives
        assert ("bus", (5, int(Phase.RB)), "B2", 3) in drives
        assert ("bus", (5, int(Phase.CM)), "B1", -1) in drives


class TestProbeSet:
    def test_fans_out_in_order(self):
        seen = []

        class Tagged(Probe):
            def __init__(self, tag):
                self.tag = tag

            def on_step(self, step):
                seen.append((self.tag, step))

        tiny_model(cs_max=2).elaborate(
            observe=ProbeSet(Tagged("a"), Tagged("b"))
        ).run()
        assert seen == [("a", 1), ("b", 1), ("a", 2), ("b", 2)]

    def test_fans_out_every_callback(self):
        a, b = CollectingProbe(), CollectingProbe()
        fig1_model().elaborate(observe=ProbeSet(a, b)).run()
        assert a.events == b.events
        assert a.run_started == b.run_started == 1

    def test_combine_probes(self):
        assert combine_probes([]) is None
        only = CollectingProbe()
        assert combine_probes([only]) is only
        combined = combine_probes([CollectingProbe(), CollectingProbe()])
        assert isinstance(combined, ProbeSet)


class TestStepPhaseIdentity:
    def test_locations_are_stepphase_values(self):
        locations = []

        class AtProbe(Probe):
            def on_phase(self, at):
                locations.append(at)

        tiny_model(cs_max=2).elaborate(observe=AtProbe()).run()
        assert locations[0] == StepPhase(1, Phase.RA)
        assert locations[5] == StepPhase(1, Phase.CR)
        assert locations[-1] == StepPhase(2, Phase.CR)
