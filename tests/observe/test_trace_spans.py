"""The hierarchical span tracer and its Chrome trace-event export.

Spans are cut at the same probe boundaries as the Profiler's phase
walls (shared ``perf_counter`` clock), so the two observers reconcile;
the export is the Chrome trace-event format Perfetto loads directly.
"""

import json
import time

from repro.observe import (
    Profiler,
    ProbeSet,
    RequestContext,
    SpanTracer,
    new_trace_id,
)

from .conftest import fig1_model


def _traced(backend="compiled", **kwargs):
    tracer = SpanTracer()
    with tracer.span("elaborate"):
        sim = fig1_model().elaborate(
            backend=backend, observe=tracer, **kwargs
        )
    sim.run()
    tracer.annotate_backend(sim)
    return tracer, sim


def _by_name(tracer):
    names = {}
    for span in tracer.spans:
        names.setdefault(span["name"], []).append(span)
    return names


class TestSpanHierarchy:
    def test_run_wraps_steps_wraps_phases(self):
        tracer, _ = _traced()
        names = _by_name(tracer)
        assert len(names["run"]) == 1
        # One step span per control step, six phase spans per step.
        step_spans = [s for s in tracer.spans if s["cat"] == "step"]
        phase_spans = [s for s in tracer.spans if s["cat"] == "phase"]
        assert len(step_spans) == 7
        assert len(phase_spans) == 42
        run = names["run"][0]
        run_end = run["ts"] + run["dur"]
        for span in step_spans + phase_spans:
            assert span["ts"] >= run["ts"] - 1e-6
            assert span["ts"] + span["dur"] <= run_end + 1e-6

    def test_phase_spans_carry_their_step(self):
        tracer, _ = _traced()
        phase_spans = [s for s in tracer.spans if s["cat"] == "phase"]
        assert {s["args"]["cs"] for s in phase_spans} == set(range(1, 8))
        assert {s["name"] for s in phase_spans} == {
            "ra", "rb", "cm", "wa", "wb", "cr",
        }

    def test_elaborate_span_precedes_the_run(self):
        tracer, _ = _traced()
        names = _by_name(tracer)
        elaborate = names["elaborate"][0]
        run = names["run"][0]
        assert elaborate["ts"] <= run["ts"]

    def test_plan_span_synthesized_from_the_backend(self, tmp_path):
        tracer, _ = _traced(plan_cache=tmp_path)
        names = _by_name(tracer)
        (plan_span,) = names["plan:miss"]
        assert plan_span["cat"] == "plan"
        assert plan_span["dur"] > 0.0
        assert len(plan_span["args"]["digest"]) == 16

    def test_shard_worker_spans_on_their_own_tracks(self):
        tracer, sim = _traced(backend="sharded", shards=2)
        names = _by_name(tracer)
        shard_spans = [s for s in tracer.spans if s["cat"] == "shard"]
        assert {s["name"] for s in shard_spans} == {
            "shard0:execute", "shard1:execute",
        }
        assert {s["tid"] for s in shard_spans} == {1, 2}
        for span in shard_spans:
            assert span["args"]["syncs"] == sim.model.cs_max
        assert names["run"][0]["tid"] == 0


class TestProfilerReconciliation:
    def test_phase_walls_agree(self):
        tracer = SpanTracer()
        profiler = Profiler()
        sim = fig1_model().elaborate(
            backend="compiled", observe=ProbeSet(tracer, profiler)
        )
        sim.run()
        span_walls = tracer.phase_wall()
        assert set(span_walls) == set(profiler.phase_wall)
        # Same clock, same boundaries: sums agree to within the cost
        # of the neighbouring probe callbacks themselves.
        for phase, seconds in profiler.phase_wall.items():
            assert abs(span_walls[phase] - seconds) < 0.05
        assert abs(tracer.run_wall() - profiler.wall) < 0.05

    def test_phase_walls_agree_with_a_sampling_profiler(self):
        """A ``sample_every=N`` Profiler on the *same* run profiles only
        every Nth step; the tracer still spans every step, so the
        reconciliation restricts its span sum to the sampled steps."""
        tracer = SpanTracer()
        profiler = Profiler(sample_every=3)
        sim = fig1_model().elaborate(
            backend="compiled", observe=ProbeSet(tracer, profiler)
        )
        sim.run()
        # fig1 has 7 steps; steps 1, 4, 7 are sampled.
        sampled = {1, 4, 7}
        assert profiler.sampled_steps == len(sampled)
        span_walls: dict = {}
        for span in tracer.spans:
            if span.get("cat") == "phase" and span["args"]["cs"] in sampled:
                span_walls[span["name"]] = (
                    span_walls.get(span["name"], 0.0) + span["dur"] / 1e6
                )
        assert set(span_walls) == set(profiler.phase_wall)
        for phase, seconds in profiler.phase_wall.items():
            assert abs(span_walls[phase] - seconds) < 0.05


class TestChromeExport:
    def test_export_shape(self, tmp_path):
        tracer, _ = _traced(backend="sharded", shards=2)
        payload = json.loads(tracer.to_json())
        assert set(payload) == {"traceEvents", "displayTimeUnit"}
        events = payload["traceEvents"]
        # Metadata names the process and each track.
        kinds = {e["ph"] for e in events}
        assert kinds == {"M", "X"}
        names = {
            e["args"]["name"] for e in events if e["name"] == "thread_name"
        }
        assert names == {"main", "shard 0 worker", "shard 1 worker"}
        for event in events:
            if event["ph"] == "X":
                assert event["ts"] >= 0.0
                assert event["dur"] >= 0.0
        out = tmp_path / "trace.json"
        tracer.write(str(out))
        assert json.loads(out.read_text())["traceEvents"]

    def test_events_sorted_per_track(self):
        tracer, _ = _traced()
        events = [
            e for e in tracer.to_chrome()["traceEvents"] if e["ph"] == "X"
        ]
        keys = [(e["tid"], e["ts"]) for e in events]
        assert keys == sorted(keys)


class TestRequestContext:
    def test_trace_ids_are_distinct_hex(self):
        ids = {new_trace_id() for _ in range(64)}
        assert len(ids) == 64
        for trace_id in ids:
            assert len(trace_id) == 16
            int(trace_id, 16)

    def test_spans_carry_trace_op_and_track(self):
        tracer = SpanTracer()
        tid = tracer.alloc_track("conn test")
        ctx = RequestContext("abc123", tracer, tid=tid, op="simulate")
        t0 = time.perf_counter()
        ctx.add_span("queue", t0, t0 + 0.001, args={"batch": 7})
        with ctx.span("serialize", bytes_out=42):
            pass
        queue, serialize = tracer.spans
        assert queue["args"] == {
            "trace": "abc123", "op": "simulate", "batch": 7,
        }
        assert queue["tid"] == tid
        assert queue["cat"] == "serve"
        assert serialize["args"]["bytes_out"] == 42
        assert serialize["args"]["trace"] == "abc123"

    def test_alloc_track_labels_the_export(self):
        tracer = SpanTracer()
        lane_tid = tracer.alloc_track("lane deadbeef")
        tracer.add_span("sweep", tracer.t0, tracer.t0 + 0.001, tid=lane_tid)
        labels = {
            e["tid"]: e["args"]["name"]
            for e in tracer.to_chrome()["traceEvents"]
            if e["name"] == "thread_name"
        }
        assert labels[lane_tid] == "lane deadbeef"

    def test_untraced_context_is_a_noop(self):
        ctx = RequestContext("abc123", tracer=None, op="simulate")
        assert ctx.add_span("queue", 0.0, 1.0) is None
        with ctx.span("serialize"):
            pass  # must not raise, must not record anything
