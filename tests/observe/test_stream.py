"""The NDJSON stream server, the watch client, and backpressure."""

import io
import json
import socket
import threading

from repro.engine import run_metrics
from repro.observe import (
    AssertionMonitor,
    ProbeSet,
    StreamServer,
    default_properties,
    format_event,
    parse_endpoint,
    watch_stream,
)

from .conftest import conflict_model, fig1_model


def drain(host, port, timeout=10.0):
    """Collect decoded records from a stream endpoint in a thread."""
    events = []

    def worker():
        watch_stream(
            host, port, out=io.StringIO(), timeout=timeout,
            on_event=events.append,
        )

    thread = threading.Thread(target=worker, daemon=True)
    thread.start()
    return events, thread


class TestStreamServer:
    def test_full_run_reaches_the_client(self):
        with StreamServer(wait_for_client=10.0) as server:
            host, port = server.address
            events, thread = drain(host, port)
            fig1_model().elaborate(observe=server).run()
        thread.join(timeout=10.0)
        assert events[0]["event"] == "run_start"
        assert events[-1]["event"] == "run_end"
        kinds = {e["event"] for e in events}
        assert {"step", "phase", "bus", "latch"} <= kinds
        assert server.events == len(events)
        assert server.dropped == 0

    def test_wire_schema_matches_the_recorder(self):
        from repro.observe import JsonlRecorder

        recorder = JsonlRecorder()
        with StreamServer(wait_for_client=10.0) as server:
            host, port = server.address
            events, thread = drain(host, port)
            fig1_model().elaborate(
                observe=ProbeSet(recorder, server)
            ).run()
        thread.join(timeout=10.0)
        streamed = [dict(e) for e in events]
        recorded = [dict(e) for e in recorder.events]
        # The phase record's wall-clock 't' is recorder-only detail;
        # everything else is byte-identical.
        for event in streamed + recorded:
            event.pop("t", None)
            event.pop("wall", None)
        assert streamed == recorded

    def test_violations_stream_live(self):
        with StreamServer(wait_for_client=10.0) as server:
            host, port = server.address
            events, thread = drain(host, port)
            monitor = AssertionMonitor(
                default_properties(),
                listener=server.emit_violation,
            )
            conflict_model().elaborate(
                observe=ProbeSet(monitor, server)
            ).run()
        thread.join(timeout=10.0)
        violations = [e for e in events if e["event"] == "violation"]
        assert len(violations) == len(monitor.report.violations)
        first = violations[0]
        assert first["cs"] == 2 and first["ph"] == "rb"
        assert first["property"] in ("never_illegal", "no_conflicts")

    def test_no_client_counts_but_never_blocks(self):
        with StreamServer() as server:
            fig1_model().elaborate(observe=server).run()
            assert server.events > 0

    def test_slow_client_drops_are_counted_per_client(self):
        """One stalled watcher loses events; a live one loses none --
        and the losses are attributed, not pooled."""
        with StreamServer(max_queue=64) as server:
            # Shrink the send buffer (accepted sockets inherit it) so
            # a non-reading client stalls its sender almost at once.
            server._sock.setsockopt(
                socket.SOL_SOCKET, socket.SO_SNDBUF, 4096
            )
            host, port = server.address
            # The slow client connects but never reads.
            slow = socket.create_connection((host, port))
            slow.setsockopt(socket.SOL_SOCKET, socket.SO_RCVBUF, 1)
            # The fast client drains everything.
            events, thread = drain(host, port)
            while server.clients_total < 2:
                pass
            total = 400
            padding = "x" * 1024
            for i in range(total):
                server.emit({"event": "step", "cs": i, "pad": padding})
                if i % 8 == 0:  # let the fast sender keep up
                    threading.Event().wait(0.001)
            # Wait until the fast client's queue is fully delivered.
            deadline = threading.Event()
            for _ in range(100):
                if len(events) >= total:
                    break
                deadline.wait(0.05)
            rows = {row["peer"]: row for row in server.client_drops()}
            assert len(rows) == 2
            dropped = sorted(row["dropped"] for row in rows.values())
            assert dropped[0] == 0, "the fast client lost events"
            assert dropped[1] > 0, "the slow client's losses went uncounted"
            assert server.dropped == dropped[1]
            assert server.events == total
            assert len(events) == total
            slow.close()
        thread.join(timeout=10.0)

    def test_record_queue_drops_when_full(self):
        from repro.observe.stream import RecordQueue

        q = RecordQueue(maxsize=2)
        assert q.offer(1) and q.offer(2)
        assert not q.offer(3)
        assert q.accepted == 2 and q.dropped == 1
        assert q.drain() == [1, 2]
        assert q.offer(4)
        assert q.get() == 4

    def test_departed_client_keeps_its_drop_row(self):
        with StreamServer(wait_for_client=10.0) as server:
            host, port = server.address
            events, thread = drain(host, port)
            fig1_model().elaborate(observe=server).run()
        thread.join(timeout=10.0)
        rows = server.client_drops()
        assert len(rows) == 1
        assert rows[0]["dropped"] == 0
        assert rows[0]["sent"] > 0

    def test_run_metrics_stream_columns(self):
        with StreamServer() as server:
            sim = fig1_model().elaborate(observe=server).run()
        row = run_metrics(sim, stream=server)
        assert row["stream_events"] == server.events
        assert row["stream_dropped"] == server.dropped
        assert row["stream_clients"] == 0

    def test_clients_total_counts_lifetime_connections(self):
        with StreamServer(wait_for_client=10.0) as server:
            host, port = server.address
            events, thread = drain(host, port)
            sim = fig1_model().elaborate(observe=server).run()
            assert server.clients_total == 1
            assert server.client_count == 1
        thread.join(timeout=10.0)
        # The lifetime count survives disconnects (and close()).
        assert server.clients_total == 1
        row = run_metrics(sim, stream=server)
        assert row["stream_clients"] == 1

    def test_no_stream_no_columns(self):
        sim = fig1_model().elaborate().run()
        row = run_metrics(sim)
        assert "stream_events" not in row

    def test_close_is_idempotent(self):
        server = StreamServer()
        server.close()
        server.close()


class TestWatchClient:
    def test_max_events_disconnects_early(self):
        with StreamServer(wait_for_client=10.0) as server:
            host, port = server.address
            out = io.StringIO()
            result = {}

            def worker():
                result["count"] = watch_stream(
                    host, port, out=out, max_events=3, timeout=10.0,
                )

            thread = threading.Thread(target=worker, daemon=True)
            thread.start()
            fig1_model().elaborate(observe=server).run()
            thread.join(timeout=10.0)
        assert result["count"] == 3
        assert len(out.getvalue().splitlines()) == 3

    def test_raw_mode_passes_ndjson_through(self):
        with StreamServer(wait_for_client=10.0) as server:
            host, port = server.address
            out = io.StringIO()

            def worker():
                watch_stream(
                    host, port, out=out, raw=True, max_events=1,
                    timeout=10.0,
                )

            thread = threading.Thread(target=worker, daemon=True)
            thread.start()
            fig1_model().elaborate(observe=server).run()
            thread.join(timeout=10.0)
        record = json.loads(out.getvalue().splitlines()[0])
        assert record["event"] == "run_start"

    def test_connection_refused_raises_oserror(self):
        sock = socket.socket()
        sock.bind(("127.0.0.1", 0))
        port = sock.getsockname()[1]
        sock.close()  # nothing listens here now
        try:
            watch_stream("127.0.0.1", port, out=io.StringIO(), timeout=0.5)
        except OSError:
            pass
        else:  # pragma: no cover
            raise AssertionError("expected a connection error")


class TestParseEndpoint:
    def test_host_and_port(self):
        assert parse_endpoint("0.0.0.0:9000") == ("0.0.0.0", 9000)

    def test_bare_port_defaults_to_localhost(self):
        assert parse_endpoint("9000") == ("127.0.0.1", 9000)

    def test_empty_host_defaults_to_localhost(self):
        assert parse_endpoint(":9000") == ("127.0.0.1", 9000)

    def test_bad_port_rejected(self):
        for bad in ("host:", "host:abc", "host:0", "host:70000"):
            try:
                parse_endpoint(bad)
            except ValueError:
                continue
            raise AssertionError(f"{bad!r} should be rejected")


class TestFormatEvent:
    def test_each_record_kind_renders(self):
        lines = [
            format_event({"event": "run_start", "model": "m",
                          "backend": "event", "cs_max": 7}),
            format_event({"event": "step", "cs": 2}),
            format_event({"event": "phase", "cs": 2, "ph": "rb"}),
            format_event({"event": "bus", "cs": 2, "ph": "rb",
                          "signal": "B1", "value": 7}),
            format_event({"event": "latch", "cs": 3, "ph": "ra",
                          "register": "R1", "value": 7}),
            format_event({"event": "conflict", "cs": 2, "ph": "rb",
                          "signal": "B1", "drivers": [["a", 1], ["b", 2]]}),
            format_event({"event": "violation", "cs": 2, "ph": "rb",
                          "property": "never_illegal", "signal": "B1",
                          "message": "observed ILLEGAL"}),
            format_event({"event": "run_end", "clean": True, "wall": 0.1}),
        ]
        assert "cs2.rb" in lines[2]
        assert "CONFLICT" in lines[5]
        assert "VIOLATION" in lines[6] and "never_illegal" in lines[6]
        assert all(line for line in lines)

    def test_unknown_kind_falls_back_to_json(self):
        assert "mystery" in format_event({"event": "mystery"})
