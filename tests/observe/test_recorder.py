"""The JSONL recorder: schema stability, value encoding, round-trip
through files, and RunReport aggregation."""

import json

import pytest

from repro.core.values import DISC, ILLEGAL
from repro.observe import (
    SCHEMA_VERSION,
    JsonlRecorder,
    RunReport,
    decode_value,
    encode_value,
    read_events,
)

from .conftest import conflict_model, fig1_model


class TestValueEncoding:
    def test_std_logic_analogues(self):
        assert encode_value(DISC) == "z"
        assert encode_value(ILLEGAL) == "x"
        assert encode_value(42) == 42

    @pytest.mark.parametrize("value", [DISC, ILLEGAL, 0, 1, 255])
    def test_round_trip(self, value):
        assert decode_value(encode_value(value)) == value


class TestJsonlRecorder:
    def test_in_memory_recording(self):
        recorder = JsonlRecorder()
        fig1_model().elaborate(observe=recorder).run()
        kinds = [e["event"] for e in recorder.events]
        assert kinds[0] == "run_start"
        assert kinds[-1] == "run_end"
        assert "phase" in kinds and "bus" in kinds and "latch" in kinds

    def test_schema_version_stamped(self):
        recorder = JsonlRecorder()
        fig1_model().elaborate(observe=recorder).run()
        start = recorder.events[0]
        assert start["schema"] == SCHEMA_VERSION
        assert start["model"] == "example"
        assert start["backend"] == "event"
        assert start["cs_max"] == 7

    def test_file_output_round_trips(self, tmp_path):
        path = tmp_path / "run.jsonl"
        recorder = JsonlRecorder(str(path), keep_events=True)
        fig1_model().elaborate(observe=recorder).run()
        reread = read_events(str(path))
        assert reread == recorder.events
        # Every line is standalone JSON.
        for line in path.read_text().splitlines():
            assert json.loads(line)["event"]

    def test_disc_encoded_as_z_in_stream(self):
        recorder = JsonlRecorder()
        fig1_model().elaborate(observe=recorder).run()
        releases = [
            e for e in recorder.events
            if e["event"] == "bus" and e["value"] == "z"
        ]
        assert releases, "bus releases must appear as std-logic 'z'"

    def test_conflict_records_location_and_drivers(self):
        recorder = JsonlRecorder()
        conflict_model().elaborate(observe=recorder).run()
        conflicts = [e for e in recorder.events if e["event"] == "conflict"]
        assert conflicts
        first = conflicts[0]
        assert first["signal"] == "B1"
        assert first["cs"] == 2
        assert len(first["drivers"]) == 2

    def test_run_end_carries_stats_and_registers(self):
        recorder = JsonlRecorder()
        fig1_model().elaborate(observe=recorder).run()
        end = recorder.events[-1]
        assert end["clean"] is True
        assert end["stats"]["delta_cycles"] == 42
        assert end["registers"] == {"R1": 5, "R2": 3}

    def test_read_events_rejects_garbage(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"event":"step"}\nnot json\n')
        with pytest.raises(ValueError, match="line 2"):
            read_events(str(path))
        path.write_text('{"no_event_key": 1}\n')
        with pytest.raises(ValueError, match="missing 'event'"):
            read_events(str(path))


class TestRunReport:
    def _recorded(self, model):
        recorder = JsonlRecorder()
        model.elaborate(observe=recorder).run()
        return RunReport.from_recorder(recorder)

    def test_aggregates_counts_and_registers(self):
        report = self._recorded(fig1_model())
        assert report.model == "example"
        assert report.backend == "event"
        assert report.clean is True
        assert report.counts["phase"] == 42
        assert report.registers == {"R1": 5, "R2": 3}
        assert report.bus_occupancy["B1"] == 4
        assert report.register_activity == {"R1": 1}

    def test_conflict_timeline_grouped_by_location(self):
        report = self._recorded(conflict_model())
        assert report.clean is False
        assert report.conflicts_by_location
        # Signals grouped under "cs<N>.<ph>" keys.
        for where, signals in report.conflicts_by_location.items():
            assert where.startswith("cs")
            assert "." in where
            assert signals

    def test_from_jsonl_file(self, tmp_path):
        path = tmp_path / "run.jsonl"
        fig1_model().elaborate(observe=JsonlRecorder(str(path))).run()
        report = RunReport.from_jsonl(str(path))
        assert report.registers == {"R1": 5, "R2": 3}
        assert report.wall is not None and report.wall > 0

    def test_to_json_stable_keys(self):
        report = self._recorded(fig1_model())
        decoded = json.loads(report.to_json())
        assert list(decoded) == [
            "model", "backend", "cs_max", "schema", "wall", "clean",
            "plan_cache", "plan_build_ms",
            "stats", "registers", "counts", "conflicts",
            "conflicts_by_location", "bus_occupancy",
            "register_activity", "phase_wall",
        ]

    def test_render_mentions_the_essentials(self):
        text = self._recorded(conflict_model()).render()
        assert "run report: clash [event]" in text
        assert "conflicts" in text
        assert "B1" in text

    def test_phase_wall_covers_all_six_phases(self):
        report = self._recorded(fig1_model())
        assert set(report.phase_wall) == {"ra", "rb", "cm", "wa", "wb", "cr"}

    def test_plan_cache_rows_survive_and_render(self, tmp_path):
        recorder = JsonlRecorder()
        fig1_model().elaborate(
            backend="compiled", plan_cache=tmp_path, observe=recorder
        ).run()
        report = RunReport.from_recorder(recorder)
        assert report.plan_cache == "miss"
        assert report.plan_build_ms is not None
        assert report.plan_build_ms >= 0.0
        text = report.render()
        assert "plan cache    : miss" in text
        assert "ms)" in text

    def test_event_backend_has_no_plan_rows(self):
        report = self._recorded(fig1_model())
        assert report.plan_cache is None
        assert "plan cache" not in report.render()


class TestTruncatedLogs:
    """`repro report` on a truncated/partial recording (a crashed or
    still-running simulation) must degrade gracefully, not crash."""

    def _recorded_lines(self, tmp_path):
        path = tmp_path / "run.jsonl"
        recorder = JsonlRecorder(str(path))
        fig1_model().elaborate(observe=recorder).run()
        return path, path.read_text().splitlines()

    def test_lenient_read_skips_truncated_tail(self, tmp_path):
        path, lines = self._recorded_lines(tmp_path)
        # Chop the final record mid-JSON, as a killed writer would.
        path.write_text("\n".join(lines[:-1]) + "\n" + lines[-1][:7])
        with pytest.warns(UserWarning, match="truncated"):
            events = read_events(str(path), strict=False)
        assert len(events) == len(lines) - 1

    def test_lenient_read_skips_malformed_tail(self, tmp_path):
        path, lines = self._recorded_lines(tmp_path)
        path.write_text("\n".join(lines) + '\n{"no_event_key": 1}\n')
        with pytest.warns(UserWarning, match="malformed"):
            events = read_events(str(path), strict=False)
        assert len(events) == len(lines)

    def test_strict_read_still_rejects_truncated_tail(self, tmp_path):
        path, lines = self._recorded_lines(tmp_path)
        path.write_text("\n".join(lines[:-1]) + "\n" + lines[-1][:7])
        with pytest.raises(ValueError):
            read_events(str(path))

    def test_lenient_read_still_rejects_mid_file_corruption(self, tmp_path):
        path, lines = self._recorded_lines(tmp_path)
        lines[3] = "garbage"
        path.write_text("\n".join(lines) + "\n")
        with pytest.raises(ValueError, match="line 4"):
            read_events(str(path), strict=False)

    def test_run_report_from_truncated_log(self, tmp_path):
        path, lines = self._recorded_lines(tmp_path)
        # Drop run_end entirely and truncate the new last line.
        path.write_text("\n".join(lines[:-2]) + "\n" + lines[-2][:5])
        with pytest.warns(UserWarning):
            report = RunReport.from_jsonl(str(path))
        assert report.model == "example"
        assert report.render()

    def test_empty_file_reports_cleanly(self, tmp_path):
        path = tmp_path / "empty.jsonl"
        path.write_text("")
        assert read_events(str(path), strict=False) == []
        report = RunReport.from_jsonl(str(path))
        assert report.render()
