"""Probe coverage of the clocked and handshake execution styles."""

from repro.clocked import elaborate_clocked, translate
from repro.core.phases import Phase
from repro.core.values import ILLEGAL
from repro.handshake import HandshakeNetwork
from repro.observe import JsonlRecorder, RunReport

from .conftest import CollectingProbe, fig1_model


class TestClockedProbe:
    def _run(self, probe):
        return elaborate_clocked(translate(fig1_model()), observe=probe).run()

    def test_run_bracket_and_backend_name(self, collector):
        self._run(collector)
        assert collector.events[0] == ("run_start", "clocked")
        assert collector.events[-1] == ("run_end", "clocked")

    def test_one_phase_per_clock_cycle_at_cr(self, collector):
        self._run(collector)
        phases = [e for e in collector.events if e[0] == "phase"]
        assert [p[1] for p in phases] == list(range(1, 8))
        assert all(p[2] == int(Phase.CR) for p in phases)

    def test_latch_observed(self, collector):
        self._run(collector)
        latches = [e for e in collector.events if e[0] == "latch"]
        assert ("latch", (6, int(Phase.CR)), "R1", 5) in latches

    def test_no_bus_events(self, collector):
        # The translation compiled all bus sharing into mux tables.
        self._run(collector)
        assert not [e for e in collector.events if e[0] == "bus"]

    def test_unobserved_run_unchanged(self):
        plain = elaborate_clocked(translate(fig1_model())).run()
        probed = self._run(CollectingProbe())
        assert plain.registers == probed.registers

    def test_recorder_report_works(self):
        recorder = JsonlRecorder()
        self._run(recorder)
        report = RunReport.from_recorder(recorder)
        assert report.backend == "clocked"
        assert report.registers["R1"] == 5


class TestHandshakeProbe:
    def _net(self):
        net = HandshakeNetwork()
        net.source("a", [3])
        net.source("b", [4])
        net.op("sum", lambda a, b: a + b, "a", "b")
        net.sink("out", "sum")
        return net

    def test_tokens_reported_without_location(self, collector):
        self._net().elaborate(observe=collector).run()
        assert collector.events[0] == ("run_start", "handshake")
        assert ("bus", None, "out", 7) in collector.events
        assert collector.events[-1] == ("run_end", "handshake")

    def test_illegal_token_streams_conflict(self, collector):
        net = HandshakeNetwork()
        net.source("a", [1])
        net.op("bad", lambda a: ILLEGAL, "a")
        net.sink("out", "bad")
        sim = net.elaborate(observe=collector).run()
        conflicts = [e for e in collector.events if e[0] == "conflict"]
        assert conflicts == [("conflict", None, "out", ())]
        assert not sim.clean

    def test_unobserved_run_unchanged(self):
        plain = self._net().elaborate().run()
        probed = self._net().elaborate(observe=CollectingProbe()).run()
        assert plain.registers == probed.registers == {"out": 7}
