"""VCD export round-trip: emitted waveforms parse back to the trace."""

import io

import pytest

from repro.core.phases import PHASES_PER_STEP, Phase
from repro.core.values import DISC, ILLEGAL
from repro.observe import (
    VCDError,
    export_vcd,
    parse_vcd,
    step_phase_tick,
)

from .conftest import conflict_model, fig1_model


def traced_run(model, backend="event"):
    return model.elaborate(trace=True, backend=backend).run()


class TestExport:
    def test_export_from_backend(self, tmp_path):
        sim = traced_run(fig1_model())
        path = tmp_path / "fig1.vcd"
        export_vcd(sim, str(path))
        text = path.read_text()
        assert "$timescale" in text
        assert "$enddefinitions" in text

    def test_export_uses_model_name(self, tmp_path):
        sim = traced_run(fig1_model())
        out = io.StringIO()
        export_vcd(sim, out)
        assert "example" in out.getvalue()

    def test_untraced_backend_raises(self):
        sim = fig1_model().elaborate().run()
        with pytest.raises(VCDError, match="trace=True"):
            export_vcd(sim, io.StringIO())

    def test_export_from_trace_log_directly(self):
        sim = traced_run(fig1_model())
        out = io.StringIO()
        export_vcd(sim.tracer, out)
        assert "$var" in out.getvalue()


class TestRoundTrip:
    def _wave(self, model, backend="event"):
        sim = traced_run(model, backend)
        out = io.StringIO()
        export_vcd(sim, out)
        return sim, parse_vcd(out.getvalue())

    def test_fig1_signals_declared(self):
        sim, wave = self._wave(fig1_model())
        assert set(wave.signals) == set(sim.tracer.watched_names)

    def test_change_lists_match_trace_history(self):
        sim, wave = self._wave(fig1_model())
        for name in ("B1", "R1_out"):
            expected = [
                (step_phase_tick(at.step, int(at.phase)), value)
                for at, value in sim.tracer.history(name)
            ]
            assert wave.history(name) == expected

    def test_value_at_final_tick(self):
        sim, wave = self._wave(fig1_model())
        last = step_phase_tick(7, int(Phase.CR))
        assert wave.value_at("R1_out", last) == 5
        assert wave.value_at("R2_out", last) == 3

    def test_disc_round_trips_as_z(self):
        _, wave = self._wave(fig1_model())
        # Buses start disconnected: first change (if any) is from DISC.
        assert wave.value_at("B1", 0) == DISC

    def test_illegal_round_trips_as_x(self):
        sim, wave = self._wave(conflict_model())
        assert any(
            value == ILLEGAL for _, value in wave.history("B1")
        ), "the conflict must appear as 'x' in the waveform"
        assert not sim.clean

    def test_compiled_backend_round_trips_identically(self):
        _, ev_wave = self._wave(fig1_model(), "event")
        _, co_wave = self._wave(fig1_model(), "compiled")
        assert ev_wave.changes == co_wave.changes

    def test_tick_layout(self):
        assert step_phase_tick(1, int(Phase.RA)) == 0
        assert step_phase_tick(1, int(Phase.CR)) == 5
        assert step_phase_tick(2, int(Phase.RA)) == PHASES_PER_STEP


class TestParserErrors:
    def test_malformed_var_line(self):
        with pytest.raises(VCDError, match="malformed"):
            parse_vcd("$var wire 8 ! $end\n$enddefinitions $end\n")

    def test_undeclared_ident(self):
        text = (
            "$enddefinitions $end\n"
            "#0\n"
            "b101 ?\n"
        )
        with pytest.raises(VCDError, match="undeclared"):
            parse_vcd(text)

    def test_bad_time_marker(self):
        text = "$enddefinitions $end\n#zap\n"
        with pytest.raises(VCDError, match="time marker"):
            parse_vcd(text)


class TestUninitializedVsDisc:
    """The x-vs-uninitialized pin: an explicit `z` dump and a wire the
    file never values must stay distinguishable through a round trip."""

    def _wave(self, model, backend="event"):
        sim = traced_run(model, backend)
        out = io.StringIO()
        export_vcd(sim, out)
        return sim, out.getvalue(), parse_vcd(out.getvalue())

    def test_exporter_opens_with_dumpvars(self):
        _, text, _ = self._wave(fig1_model())
        body = text.split("$enddefinitions $end", 1)[1]
        first_block = body.strip().splitlines()
        assert first_block[0] == "#0"
        assert first_block[1] == "$dumpvars"
        assert "$end" in first_block

    def test_dumpvars_covers_every_watched_signal(self):
        sim, _, wave = self._wave(fig1_model())
        assert wave.initialized == set(sim.tracer.watched_names)

    def test_disc_at_tick_zero_reads_z_not_x(self):
        # Buses are undriven at cs1.ra; the dump states that as 'z'.
        _, _, wave = self._wave(fig1_model())
        assert wave.value_at("B1", 0) == DISC

    def test_undumped_signal_reads_x_before_first_change(self):
        # Hand-written VCD with a declared-but-never-initialized wire:
        # VCD semantics leave it uninitialized (= x), not DISC.
        text = (
            "$timescale 1ns $end\n"
            "$scope module t $end\n"
            "$var integer 32 ! A $end\n"
            "$var integer 32 \" B $end\n"
            "$upscope $end\n$enddefinitions $end\n"
            "#0\n$dumpvars\nb10 !\n$end\n"
            "#5\nb11 \"\n"
        )
        wave = parse_vcd(text)
        assert wave.initialized == {"A"}
        assert wave.value_at("A", 0) == 2
        assert wave.value_at("B", 0) == ILLEGAL  # uninitialized, not z
        assert wave.value_at("B", 5) == 3

    def test_round_trip_preserves_the_distinction(self):
        sim, _, wave = self._wave(conflict_model())
        # Every watched signal was dumped, so nothing reads the
        # uninitialized-x fallback at tick 0 unless it truly was x.
        for name in sim.tracer.watched_names:
            expected = sim.tracer.samples[0].values[name]
            assert wave.value_at(name, 0) == expected

    def test_compiled_backend_dumps_identically(self):
        _, text_event, _ = self._wave(fig1_model())
        _, text_compiled, _ = self._wave(fig1_model(), backend="compiled")
        assert text_event == text_compiled
