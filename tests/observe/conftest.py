"""Shared fixtures for the observability tests."""

import pytest

from repro.core import ModuleSpec, RTModel
from repro.observe import Probe


def fig1_model(cs_max=7, r1=2, r2=3):
    """The paper's Fig.-1 example (R1 <- R1 + R2)."""
    model = RTModel("example", cs_max=cs_max)
    model.register("R1", init=r1)
    model.register("R2", init=r2)
    model.bus("B1")
    model.bus("B2")
    model.module(ModuleSpec("ADD", latency=1))
    model.add_transfer("(R1,B1,R2,B2,5,ADD,6,B1,R1)")
    return model


def tiny_model(cs_max=2):
    """Minimal model whose schedule fits in two control steps."""
    model = RTModel("tiny", cs_max=cs_max)
    model.register("R1", init=2)
    model.register("R2", init=3)
    model.bus("B1")
    model.bus("B2")
    model.module(ModuleSpec("ADD", latency=1))
    model.add_transfer("(R1,B1,R2,B2,1,ADD,2,B1,R1)")
    return model


def conflict_model():
    """Two sources on B1 in step 2: a deliberate bus conflict."""
    model = RTModel("clash", cs_max=4)
    model.register("R1", init=1)
    model.register("R2", init=2)
    model.register("R3")
    model.bus("B1")
    model.bus("B2")
    model.module(ModuleSpec("ADD", latency=1))
    model.add_transfer("(R1,B1,R2,B2,2,ADD,3,B1,R3)")
    model.add_transfer("(R2,B1,R1,B2,2,ADD,3,B2,R3)")
    return model


class CollectingProbe(Probe):
    """Records every callback as a comparable tuple."""

    def __init__(self):
        self.events = []
        self.run_started = 0
        self.run_ended = 0
        self.wall = None

    def on_run_start(self, backend):
        self.run_started += 1
        self.events.append(("run_start", backend.backend_name))

    def on_step(self, step):
        self.events.append(("step", step))

    def on_phase(self, at):
        self.events.append(("phase", at.step, int(at.phase)))

    def on_bus_drive(self, at, bus, value):
        where = (at.step, int(at.phase)) if at is not None else None
        self.events.append(("bus", where, bus, value))

    def on_register_latch(self, at, register, value):
        where = (at.step, int(at.phase)) if at is not None else None
        self.events.append(("latch", where, register, value))

    def on_conflict(self, event):
        where = (
            (event.at.step, int(event.at.phase))
            if event.at is not None
            else None
        )
        self.events.append(("conflict", where, event.signal, event.sources))

    def on_run_end(self, backend, wall):
        self.run_ended += 1
        self.wall = wall
        self.events.append(("run_end", backend.backend_name))

    def body(self):
        """The events between run_start and run_end (the run proper)."""
        return [
            e for e in self.events if e[0] not in ("run_start", "run_end")
        ]


@pytest.fixture
def collector():
    return CollectingProbe()
