"""The wide-event structured access log and its bounded async writer.

One request = one JSON line; the writer never blocks the request path
(drops are counted, not waited on), and ``parse_access_log`` is the
round-trip contract the CI smoke job validates against.
"""

import json

import pytest

from repro.observe import AccessLogWriter, parse_access_log, wide_event


class TestWideEvent:
    def test_shape_and_none_elision(self):
        event = wide_event(
            trace="abc", op="simulate", digest=None, status=200, code=None,
        )
        assert event["event"] == "access"
        assert event["ts"] > 0
        assert event["trace"] == "abc"
        assert event["status"] == 200
        # None-valued fields are elided, not serialized as null.
        assert "digest" not in event
        assert "code" not in event

    def test_json_serializable_one_line(self):
        line = json.dumps(wide_event(op="verify", queue_ms=1.25))
        assert "\n" not in line
        assert json.loads(line)["queue_ms"] == 1.25


class TestAccessLogWriter:
    def test_round_trip_through_a_file(self, tmp_path):
        path = str(tmp_path / "access.log")
        writer = AccessLogWriter(path)
        events = [
            wide_event(trace=f"t{i}", op="simulate", id=i, status=200)
            for i in range(32)
        ]
        for event in events:
            assert writer.write(event)
        writer.close()
        parsed = parse_access_log(path)
        assert [e["id"] for e in parsed] == list(range(32))
        assert writer.accepted == 32
        assert writer.dropped == 0

    def test_close_is_idempotent_and_flushes_queued_events(self, tmp_path):
        path = str(tmp_path / "access.log")
        writer = AccessLogWriter(path)
        for i in range(100):
            writer.write(wide_event(op="simulate", id=i))
        writer.close()
        writer.close()  # second close must be a no-op
        # close() flushes everything already accepted, in order.
        assert [e["id"] for e in parse_access_log(path)] == list(range(100))

    def test_write_after_close_is_a_counted_refusal(self, tmp_path):
        writer = AccessLogWriter(str(tmp_path / "a.log"))
        writer.close()
        assert writer.write(wide_event(op="simulate")) is False

    def test_appends_across_writers(self, tmp_path):
        path = str(tmp_path / "access.log")
        for batch in range(2):
            writer = AccessLogWriter(path)
            writer.write(wide_event(op="simulate", id=batch))
            writer.close()
        assert [e["id"] for e in parse_access_log(path)] == [0, 1]

    def test_stdout_path_does_not_close_stdout(self, capsys):
        writer = AccessLogWriter("-")
        writer.write(wide_event(op="simulate", id="out"))
        writer.close()
        assert '"id":"out"' in capsys.readouterr().out
        print("stdout still usable")  # would raise on a closed stream


class TestParseAccessLog:
    def test_rejects_malformed_json(self, tmp_path):
        path = tmp_path / "bad.log"
        path.write_text('{"event": "access"}\nnot json\n')
        with pytest.raises(ValueError, match="malformed"):
            parse_access_log(str(path))

    def test_rejects_foreign_records(self, tmp_path):
        path = tmp_path / "foreign.log"
        path.write_text('{"event": "result"}\n')
        with pytest.raises(ValueError, match="not a wide access event"):
            parse_access_log(str(path))

    def test_skips_blank_lines(self, tmp_path):
        path = tmp_path / "gaps.log"
        path.write_text('{"event": "access", "id": 1}\n\n')
        assert len(parse_access_log(str(path))) == 1
