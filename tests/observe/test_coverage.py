"""Unit tests for the structural coverage engine.

The universe is derived from the one lowered Plan (so it is identical
for every backend by construction); reports are canonical and closed
under merge; the on-disk DB accumulates with plan-cache semantics
(content-addressed, lenient reads, atomic writes).
"""

import json

import pytest

from repro.engine.plan import lower
from repro.observe import (
    CoverageDB,
    CoverageError,
    CoverageModel,
    CoverageProbe,
    CoverageReport,
    as_coverage_db,
    coverage_model_for,
    measure_coverage,
)

from .conftest import conflict_model, fig1_model, tiny_model


# ----------------------------------------------------------------------
# universe derivation
# ----------------------------------------------------------------------
class TestCoverageModel:
    def test_universe_from_fig1_plan(self):
        model = fig1_model()
        cov = CoverageModel.from_plan(lower(model))
        # One coverage point per TRANS spec row.
        assert len(cov.transfers) == 6
        # Fig. 1 asserts in (5, RA/RB/CM) and (6, CR).
        assert len(cov.cells) == 4
        assert all(isinstance(s, int) and isinstance(p, int)
                   for s, p in cov.cells)
        assert set(cov.buses) == {"B1", "B2"}
        assert set(cov.registers) == {"R1", "R2"}
        # Every observable port gets the three value classes.
        totals = cov.totals()
        assert totals["port_classes"] == 3 * len(cov.ports)
        # Fig. 1's B1 is driven by two transfers (R1 read, ADD write).
        assert len(cov.conflict_pairs) == 1

    def test_conflict_pairs_from_driver_order(self):
        cov = CoverageModel.from_plan(lower(conflict_model()))
        # B1, B2 carry two drivers each; the ADD inputs collide too.
        assert len(cov.conflict_pairs) >= 2
        for a, b in cov.conflict_pairs:
            # Unordered owner pairs, canonical in global driver order.
            assert cov.owner_index[a] < cov.owner_index[b]

    def test_coverage_model_for_any_backend(self):
        model = fig1_model()
        compiled = model.elaborate(backend="compiled")
        event = model.elaborate(backend="event")
        assert coverage_model_for(compiled) == coverage_model_for(event)

    def test_missed_lists_the_complement(self):
        model = fig1_model()
        report = measure_coverage(model, backend="compiled")
        cov = CoverageModel.from_plan(lower(model))
        missed = cov.missed(report)
        assert missed["transfers"] == []
        assert missed["cells"] == []
        # The clean run never provokes its potential conflict pair.
        assert len(missed["conflict_pairs"]) == 1


# ----------------------------------------------------------------------
# report algebra
# ----------------------------------------------------------------------
class TestCoverageReport:
    def _reports(self):
        model = conflict_model()
        a = measure_coverage(model, backend="compiled")
        b = measure_coverage(
            model, backend="compiled",
            register_values={"R1": 9, "R2": 9},
        )
        return a, b

    def test_merge_is_idempotent(self):
        a, _ = self._reports()
        assert a.merge(a) == a

    def test_merge_is_commutative_and_associative(self):
        a, b = self._reports()
        c = measure_coverage(
            conflict_model(), backend="compiled",
            register_values={"R1": 0, "R2": 0},
        )
        assert a.merge(b) == b.merge(a)
        assert a.merge(b).merge(c) == a.merge(b.merge(c))

    def test_merge_rejects_different_models(self):
        a = measure_coverage(fig1_model(), backend="compiled")
        b = measure_coverage(tiny_model(), backend="compiled")
        with pytest.raises(CoverageError):
            a.merge(b)

    def test_dict_round_trip(self):
        a, _ = self._reports()
        assert CoverageReport.from_dict(a.to_dict()) == a
        assert CoverageReport.from_dict(json.loads(a.to_json())) == a

    def test_render_names_every_dimension(self):
        a, _ = self._reports()
        text = a.render()
        for word in ("transfers", "cells", "port classes",
                     "conflict pairs", "overall"):
            assert word in text

    def test_conflict_run_covers_the_pair(self):
        model = conflict_model()
        report = measure_coverage(model, backend="compiled")
        assert len(report.conflict_pairs_hit) >= 1
        assert 0.0 < report.coverage <= 1.0

    def test_probe_report_exposed_after_run(self):
        probe = CoverageProbe()
        fig1_model().elaborate(backend="compiled", observe=probe).run()
        assert probe.report is not None
        assert probe.report.transfers_hit


# ----------------------------------------------------------------------
# the cumulative on-disk DB
# ----------------------------------------------------------------------
class TestCoverageDB:
    def test_update_accumulates(self, tmp_path):
        db = CoverageDB(tmp_path)
        model = conflict_model()
        a = measure_coverage(model, backend="compiled")
        b = measure_coverage(
            model, backend="compiled",
            register_values={"R1": 5, "R2": 5},
        )
        first = db.update(a)
        assert first == a
        merged = db.update(b)
        assert merged == a.merge(b)
        assert db.get(a.digest) == merged

    def test_update_is_idempotent_on_disk(self, tmp_path):
        db = CoverageDB(tmp_path)
        a = measure_coverage(fig1_model(), backend="compiled")
        db.update(a)
        again = db.update(a)
        assert again == a

    def test_get_missing_returns_none(self, tmp_path):
        assert CoverageDB(tmp_path).get("0" * 64) is None

    def test_corrupt_entry_is_discarded_with_warning(self, tmp_path):
        db = CoverageDB(tmp_path)
        a = measure_coverage(fig1_model(), backend="compiled")
        db.put(a)
        db.path_for(a.digest).write_text("{not json", encoding="utf-8")
        with pytest.warns(RuntimeWarning):
            assert db.get(a.digest) is None
        # The next update starts fresh instead of failing.
        with pytest.warns(RuntimeWarning):
            assert db.update(a) == a

    def test_foreign_payload_is_rejected(self, tmp_path):
        db = CoverageDB(tmp_path)
        a = measure_coverage(fig1_model(), backend="compiled")
        db.put(a)
        path = db.path_for(a.digest)
        payload = json.loads(path.read_text(encoding="utf-8"))
        payload["magic"] = "something-else"
        path.write_text(json.dumps(payload), encoding="utf-8")
        with pytest.warns(RuntimeWarning):
            assert db.get(a.digest) is None

    def test_as_coverage_db_shapes(self, tmp_path):
        assert as_coverage_db(None) is None
        assert as_coverage_db(False) is None
        db = as_coverage_db(tmp_path)
        assert isinstance(db, CoverageDB)
        assert as_coverage_db(db) is db


# ----------------------------------------------------------------------
# front-door errors
# ----------------------------------------------------------------------
class TestMeasureCoverage:
    def test_vector_sequence_needs_batched_backend(self):
        with pytest.raises(CoverageError):
            measure_coverage(
                fig1_model(), backend="compiled",
                register_values=[{"R1": 1}, {"R1": 2}],
            )
