"""Differential property: coverage is bit-identical on all backends.

The tentpole contract of the coverage engine: the same model yields
the *same* :class:`~repro.observe.CoverageReport` -- same universe
totals, same sorted hit tuples -- whether measured online (event /
compiled / sharded, and batched at N == 1) or by per-lane trace
replay (compiled-batched at N > 1).  Models are hypothesis-generated
over a deliberately tight bus pool so conflicts and ILLEGAL values
occur regularly (the same strategy as the monitor differential).
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings

from repro.core.values_np import have_numpy
from repro.observe import measure_coverage

from ..engine.test_differential import colliding_models
from .conftest import conflict_model

needs_numpy = pytest.mark.skipif(
    not have_numpy(),
    reason="the compiled-batched backend needs the repro[fast] extra",
)

SETTINGS = settings(max_examples=25, deadline=None)


@SETTINGS
@given(colliding_models())
def test_event_compiled_sharded_agree(model):
    reference = measure_coverage(model, backend="event").to_dict()
    assert measure_coverage(
        model, backend="compiled"
    ).to_dict() == reference
    assert measure_coverage(
        model, backend="sharded", shards=2
    ).to_dict() == reference


@needs_numpy
@SETTINGS
@given(colliding_models())
def test_batched_single_lane_matches_event(model):
    reference = measure_coverage(model, backend="event").to_dict()
    # N == 1: the online probe over the full canonical stream.
    assert measure_coverage(
        model, backend="compiled-batched", register_values={}
    ).to_dict() == reference


@needs_numpy
@SETTINGS
@given(colliding_models())
def test_batched_lane_replay_matches_scalar_runs(model):
    vectors = [
        {},
        {name: 7 for name in model.registers},
        dict(zip(model.registers, range(1, len(model.registers) + 1))),
        {name: 0 for name in model.registers},
        {name: 13 for name in model.registers},
        {name: 99 for name in model.registers},
        {next(iter(model.registers)): 42},
    ]  # N = 7
    lanes = measure_coverage(
        model, backend="compiled-batched", register_values=vectors,
        per_lane=True,
    )
    assert len(lanes) == 7
    for vector, lane in zip(vectors, lanes):
        scalar = measure_coverage(
            model, backend="compiled", register_values=vector or None
        )
        assert lane.to_dict() == scalar.to_dict()
    # And the merged sweep equals the fold of its lanes.
    merged = measure_coverage(
        model, backend="compiled-batched", register_values=vectors
    )
    folded = lanes[0]
    for lane in lanes[1:]:
        folded = folded.merge(lane)
    assert merged == folded


@needs_numpy
def test_seeded_conflict_covers_the_pair_identically_everywhere():
    """The acceptance scenario: a deliberate two-driver clash marks
    the exact same conflict pair on all four backends (batched both
    at N == 1 and as a lane of N == 7)."""
    model = conflict_model()
    reference = measure_coverage(model, backend="event")
    assert reference.conflict_pairs_hit, "the clash must be covered"
    for report in (
        measure_coverage(model, backend="compiled"),
        measure_coverage(model, backend="sharded", shards=2),
        measure_coverage(
            model, backend="compiled-batched", register_values={}
        ),
        measure_coverage(
            model, backend="compiled-batched",
            register_values=[{} for _ in range(7)],
            per_lane=True,
        )[3],
    ):
        assert report.to_dict() == reference.to_dict()
