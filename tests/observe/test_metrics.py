"""Unit tests for the typed process metrics registry.

Counters/gauges/histograms with Prometheus-style labels; the text
exposition round-trips through :func:`parse_prometheus` (the
acceptance criterion for `repro metrics`); the engine hooks record
once per run / plan resolution / stream shutdown into the
process-wide ``REGISTRY``.
"""

import pytest

from repro.observe import (
    REGISTRY,
    MetricsError,
    MetricsRegistry,
    histogram_quantile,
    parse_prometheus,
)

from .conftest import fig1_model


@pytest.fixture
def registry():
    return MetricsRegistry()


class TestFamilies:
    def test_counter_counts(self, registry):
        c = registry.counter("jobs_total", "Jobs.")
        c.inc()
        c.inc(3)
        assert c.value == 4

    def test_gauge_sets_and_moves(self, registry):
        g = registry.gauge("depth", "Queue depth.")
        g.set(5)
        g.dec(2)
        assert g.value == 3

    def test_histogram_buckets_are_cumulative(self, registry):
        h = registry.histogram("ms", "Latency.", buckets=(1.0, 5.0, 10.0))
        for value in (0.5, 0.7, 3.0, 99.0):
            h.observe(value)
        text = registry.to_prometheus()
        assert 'ms_bucket{le="1"} 2' in text
        assert 'ms_bucket{le="5"} 3' in text
        assert 'ms_bucket{le="10"} 3' in text
        assert 'ms_bucket{le="+Inf"} 4' in text
        assert "ms_count 4" in text

    def test_labels_create_children(self, registry):
        c = registry.counter("runs_total", "Runs.", labelnames=("backend",))
        c.labels(backend="event").inc()
        c.labels(backend="event").inc()
        c.labels(backend="compiled").inc()
        assert c.labels(backend="event").value == 2
        assert c.labels(backend="compiled").value == 1

    def test_redeclaration_returns_the_same_family(self, registry):
        a = registry.counter("x_total", "X.")
        b = registry.counter("x_total", "X.")
        assert a is b

    def test_kind_mismatch_raises(self, registry):
        registry.counter("x_total", "X.")
        with pytest.raises(MetricsError):
            registry.gauge("x_total", "X.")

    def test_label_mismatch_raises(self, registry):
        c = registry.counter("y_total", "Y.", labelnames=("backend",))
        with pytest.raises(MetricsError):
            c.labels(nope="event")
        with pytest.raises(MetricsError):
            c.inc()  # labelled family needs .labels(...)

    def test_invalid_names_rejected(self, registry):
        with pytest.raises(MetricsError):
            registry.counter("bad name", "nope")

    def test_reset_clears_everything(self, registry):
        registry.counter("x_total", "X.").inc()
        registry.reset()
        assert registry.to_prometheus() == ""


class TestExposition:
    def _populated(self):
        registry = MetricsRegistry()
        runs = registry.counter(
            "runs_total", "Completed runs.", labelnames=("backend",)
        )
        runs.labels(backend="event").inc(2)
        runs.labels(backend="compiled").inc()
        registry.gauge("shards", "Worker count.").set(4)
        h = registry.histogram("build_ms", "Build wall.", buckets=(1.0, 10.0))
        h.observe(0.5)
        h.observe(3.0)
        return registry

    def test_prometheus_text_round_trips(self):
        registry = self._populated()
        parsed = parse_prometheus(registry.to_prometheus())
        assert parsed["runs_total"]["type"] == "counter"
        samples = {
            s["labels"]["backend"]: s["value"]
            for s in parsed["runs_total"]["samples"]
        }
        assert samples == {"event": 2.0, "compiled": 1.0}
        assert parsed["shards"]["samples"][0]["value"] == 4.0
        buckets = {
            s["labels"]["le"]: s["value"]
            for s in parsed["build_ms_bucket"]["samples"]
        }
        assert buckets == {"1": 1.0, "10": 2.0, "+Inf": 2.0}
        assert parsed["build_ms_count"]["samples"][0]["value"] == 2.0

    def test_json_agrees_with_text(self):
        registry = self._populated()
        payload = registry.to_dict()
        assert payload["runs_total"]["type"] == "counter"
        by_backend = {
            s["labels"]["backend"]: s["value"]
            for s in payload["runs_total"]["samples"]
        }
        assert by_backend == {"event": 2.0, "compiled": 1.0}
        hist = payload["build_ms"]["samples"][0]
        assert hist["buckets"] == {"1": 1, "10": 2}
        assert hist["count"] == 2

    def test_parse_rejects_malformed_lines(self):
        with pytest.raises(MetricsError):
            parse_prometheus("this is not prometheus\n")

    def test_escaping_round_trips(self, registry):
        c = registry.counter(
            "esc_total", 'Help with "quotes" and \\slashes\\.',
            labelnames=("path",),
        )
        c.labels(path='a"b\\c\nd').inc()
        parsed = parse_prometheus(registry.to_prometheus())
        sample = parsed["esc_total"]["samples"][0]
        assert sample["labels"]["path"] == 'a"b\\c\nd'

    def test_help_and_type_once_per_family(self, registry):
        """Exposition hygiene: HELP/TYPE belong to the family, exactly
        once, no matter how many label sets the family has."""
        c = registry.counter(
            "multi_total", "Multi-series family.", labelnames=("op", "code"),
        )
        for op in ("simulate", "verify", "models"):
            for code in ("ok", "deadline", "queue_full"):
                c.labels(op=op, code=code).inc()
        text = registry.to_prometheus()
        assert text.count("# HELP multi_total ") == 1
        assert text.count("# TYPE multi_total ") == 1
        assert len(parse_prometheus(text)["multi_total"]["samples"]) == 9

    def test_parse_rejects_duplicate_help_and_type(self):
        dup_help = (
            "# HELP x_total X.\n# TYPE x_total counter\n"
            "x_total 1\n# HELP x_total X again.\n"
        )
        with pytest.raises(MetricsError, match="duplicate # HELP"):
            parse_prometheus(dup_help)
        dup_type = (
            "# HELP x_total X.\n# TYPE x_total counter\n"
            "x_total 1\n# TYPE x_total counter\n"
        )
        with pytest.raises(MetricsError, match="duplicate # TYPE"):
            parse_prometheus(dup_type)


class TestHistogramQuantile:
    BUCKETS = {1.0: 10.0, 5.0: 70.0, 10.0: 95.0, float("inf"): 100.0}

    def test_quantiles_pick_the_covering_bound(self):
        assert histogram_quantile(self.BUCKETS, 0.05) == 1.0
        assert histogram_quantile(self.BUCKETS, 0.50) == 5.0
        assert histogram_quantile(self.BUCKETS, 0.95) == 10.0

    def test_tail_in_the_inf_bucket_reports_largest_finite_bound(self):
        assert histogram_quantile(self.BUCKETS, 0.99) == 10.0

    def test_empty_and_zero_histograms(self):
        assert histogram_quantile({}, 0.5) == 0.0
        assert histogram_quantile({1.0: 0.0, float("inf"): 0.0}, 0.5) == 0.0

    def test_rejects_out_of_range_quantiles(self):
        with pytest.raises(MetricsError):
            histogram_quantile(self.BUCKETS, 1.5)

    def test_round_trips_from_a_scrape(self, registry):
        h = registry.histogram("ms", "Latency.", buckets=(1.0, 5.0, 10.0))
        for value in (0.5, 2.0, 3.0, 7.0):
            h.observe(value)
        parsed = parse_prometheus(registry.to_prometheus())
        buckets = {
            float(s["labels"]["le"]): s["value"]
            for s in parsed["ms_bucket"]["samples"]
        }
        assert histogram_quantile(buckets, 0.5) == 5.0
        assert histogram_quantile(buckets, 1.0) == 10.0


class TestEngineHooks:
    def test_runs_recorded_per_backend(self):
        REGISTRY.reset()
        model = fig1_model()
        model.elaborate(backend="event").run()
        model.elaborate(backend="compiled").run()
        model.elaborate(backend="compiled").run()
        parsed = parse_prometheus(REGISTRY.to_prometheus())
        runs = {
            s["labels"]["backend"]: s["value"]
            for s in parsed["repro_runs_total"]["samples"]
        }
        assert runs == {"event": 1.0, "compiled": 2.0}
        steps = {
            s["labels"]["backend"]: s["value"]
            for s in parsed["repro_steps_total"]["samples"]
        }
        assert steps["compiled"] == 2.0 * model.cs_max
        REGISTRY.reset()

    def test_plan_resolutions_recorded(self, tmp_path):
        REGISTRY.reset()
        model = fig1_model()
        model.elaborate(backend="compiled", plan_cache=tmp_path).run()
        model.elaborate(backend="compiled", plan_cache=tmp_path).run()
        parsed = parse_prometheus(REGISTRY.to_prometheus())
        sources = {
            s["labels"]["source"]: s["value"]
            for s in parsed["repro_plan_requests_total"]["samples"]
        }
        assert sources["miss"] == 1.0
        assert sources["hit"] == 1.0
        assert parsed["repro_plan_build_ms_count"]["samples"][0]["value"] == 2.0
        REGISTRY.reset()

    def test_stream_close_recorded(self):
        from repro.observe import StreamServer

        REGISTRY.reset()
        server = StreamServer()
        server.emit({"event": "x"})
        server.close()
        parsed = parse_prometheus(REGISTRY.to_prometheus())
        assert parsed["repro_stream_events_total"]["samples"][0]["value"] == 1.0
        assert parsed["repro_stream_dropped_total"]["samples"][0]["value"] == 0.0
        REGISTRY.reset()

    def test_sharded_run_records_sync_traffic(self):
        REGISTRY.reset()
        fig1_model().elaborate(backend="sharded", shards=2).run()
        parsed = parse_prometheus(REGISTRY.to_prometheus())
        assert parsed["repro_shards"]["samples"][0]["value"] == 2.0
        assert parsed["repro_shard_syncs_total"]["samples"][0]["value"] > 0
        assert (
            parsed["repro_shard_sync_bytes_total"]["samples"][0]["value"] > 0
        )
        REGISTRY.reset()
