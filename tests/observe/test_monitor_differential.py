"""Differential property: monitor verdicts agree on all four backends.

The tentpole contract of the assertion subsystem: the same property
set over the same model yields *bit-identical* verdicts -- every
violation at the same ``(CS, PH)`` with the same signal and values --
whether evaluated online (event / compiled / sharded, and batched at
N == 1) or by per-lane trace replay (compiled-batched at N > 1).

Models are hypothesis-generated over a deliberately tight bus pool so
conflicts and ILLEGAL values occur regularly (the same strategy as
``tests/engine/test_differential.py``).
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings

from repro.core import DISC
from repro.core.values_np import have_numpy
from repro.observe import (
    check_model,
    default_properties,
    implies_within,
    stable_between,
    when,
)

from ..engine.test_differential import colliding_models
from .conftest import conflict_model

needs_numpy = pytest.mark.skipif(
    not have_numpy(),
    reason="the compiled-batched backend needs the repro[fast] extra",
)

SETTINGS = settings(max_examples=25, deadline=None)


def property_set(model):
    """Defaults plus one of each stateful property, model-derived."""
    first_reg = next(iter(model.registers))
    return default_properties(model) + [
        stable_between(first_reg, 1, model.cs_max),
        implies_within(
            when("BA", op="ne", value=DISC),
            when("BA", op="eq", value=DISC),
            k_steps=2,
            label="bus-released",
        ),
    ]


def verdict(report):
    """The comparable essence of a report (order included)."""
    return (
        report.to_dict()["violations"],
        report.cycles,
        report.conflicts,
        list(report.properties),
    )


@needs_numpy
@SETTINGS
@given(colliding_models())
def test_all_backends_agree_on_verdicts(model):
    properties = property_set(model)
    reference = verdict(check_model(model, properties, backend="event"))
    assert verdict(
        check_model(model, properties, backend="compiled")
    ) == reference
    assert verdict(
        check_model(model, properties, backend="sharded", shards=2)
    ) == reference
    # Batched N == 1: the online monitor over the full canonical stream.
    assert verdict(
        check_model(
            model, properties, backend="compiled-batched",
            register_values={},
        )
    ) == reference


@needs_numpy
@SETTINGS
@given(colliding_models())
def test_batched_lane_replay_matches_scalar_runs(model):
    properties = property_set(model)
    vectors = [
        {},
        {name: 7 for name in model.registers},
        dict(zip(model.registers, range(1, len(model.registers) + 1))),
        {name: 0 for name in model.registers},
        {name: 13 for name in model.registers},
        {name: 99 for name in model.registers},
        {next(iter(model.registers)): 42},
    ]  # N = 7
    lane_reports = check_model(
        model, properties, backend="compiled-batched",
        register_values=vectors,
    )
    assert len(lane_reports) == 7
    for vector, lane_report in zip(vectors, lane_reports):
        scalar = check_model(
            model, properties, backend="compiled",
            register_values=vector,
        )
        assert verdict(lane_report) == verdict(scalar)


@needs_numpy
def test_seeded_conflict_localizes_identically_everywhere():
    """The acceptance scenario: a deliberate two-driver clash is
    reported at the exact same (CS, PH) and signal on all four
    backends (batched both at N == 1 and as a lane of N == 7)."""
    model = conflict_model()
    properties = default_properties(model)

    def locations(report):
        return [
            (v.prop, str(v.at), v.signal) for v in report.violations
        ]

    expected = [
        ("never_illegal", "cs2.rb", "B1"),
        ("never_illegal", "cs2.rb", "B2"),
        ("no_conflicts", "cs2.rb", "B1"),
        ("no_conflicts", "cs2.rb", "B2"),
        ("no_conflicts", "cs2.cm", "ADD_in1"),
        ("no_conflicts", "cs2.cm", "ADD_in2"),
        ("never_illegal", "cs3.wb", "B1"),
        ("never_illegal", "cs3.wb", "B2"),
        ("no_conflicts", "cs3.wb", "B1"),
        ("no_conflicts", "cs3.wb", "B2"),
        ("no_conflicts", "cs3.cr", "R3_in"),
        ("never_illegal", "cs4.ra", "R3"),
    ]
    assert locations(
        check_model(model, properties, backend="event")
    ) == expected
    assert locations(
        check_model(model, properties, backend="compiled")
    ) == expected
    assert locations(
        check_model(model, properties, backend="sharded", shards=2)
    ) == expected
    assert locations(
        check_model(
            model, properties, backend="compiled-batched",
            register_values={},
        )
    ) == expected
    lane_reports = check_model(
        model, properties, backend="compiled-batched",
        register_values=[{} for _ in range(7)],
    )
    for lane_report in lane_reports:
        assert locations(lane_report) == expected


@SETTINGS
@given(colliding_models())
def test_sharded_single_worker_agrees_too(model):
    properties = property_set(model)
    assert verdict(
        check_model(model, properties, backend="sharded", shards=1)
    ) == verdict(check_model(model, properties, backend="event"))
