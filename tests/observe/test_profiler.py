"""The per-phase profiler and its run_metrics() integration."""

import json

from repro.engine import run_metrics
from repro.observe import Profiler, ProbeSet, JsonlRecorder

from .conftest import fig1_model


class TestProfiler:
    def _profiled(self, backend="event"):
        profiler = Profiler()
        sim = fig1_model().elaborate(
            backend=backend, observe=profiler
        ).run()
        return profiler, sim

    def test_counts_steps_and_cycles(self):
        profiler, _ = self._profiled()
        assert profiler.steps == 7
        assert profiler.phase_cycles == {
            "ra": 7, "rb": 7, "cm": 7, "wa": 7, "wb": 7, "cr": 7,
        }

    def test_wall_accumulates(self):
        profiler, _ = self._profiled()
        assert profiler.wall > 0.0
        assert set(profiler.phase_wall) == {
            "ra", "rb", "cm", "wa", "wb", "cr",
        }
        assert all(secs >= 0.0 for secs in profiler.phase_wall.values())

    def test_works_on_compiled_backend(self):
        profiler, _ = self._profiled("compiled")
        assert profiler.steps == 7
        assert sum(profiler.phase_cycles.values()) == 42

    def test_summary_shape(self):
        profiler, _ = self._profiled()
        summary = profiler.summary()
        assert set(summary) == {"wall", "steps", "phases"}
        assert list(summary["phases"]) == ["ra", "rb", "cm", "wa", "wb", "cr"]
        for row in summary["phases"].values():
            assert set(row) == {"wall", "cycles"}

    def test_to_json_parses(self):
        profiler, _ = self._profiled()
        decoded = json.loads(profiler.to_json())
        assert decoded["steps"] == 7

    def test_report_is_readable(self):
        profiler, _ = self._profiled()
        text = profiler.report()
        assert "profile:" in text
        assert "ra:" in text and "cr:" in text

    def test_reusable_across_runs(self):
        profiler = Profiler()
        fig1_model().elaborate(observe=profiler).run()
        fig1_model().elaborate(observe=profiler).run()
        assert profiler.steps == 14
        assert profiler.phase_cycles["cr"] == 14

    def test_composes_with_recorder(self):
        profiler = Profiler()
        recorder = JsonlRecorder()
        fig1_model().elaborate(
            observe=ProbeSet(recorder, profiler)
        ).run()
        assert profiler.steps == 7
        assert recorder.events[0]["event"] == "run_start"


class TestRunMetricsProfile:
    def test_profile_merges_phase_walls(self):
        profiler = Profiler()
        sim = fig1_model().elaborate(observe=profiler).run()
        row = run_metrics(sim, wall=profiler.wall, profile=profiler)
        for phase in ("ra", "rb", "cm", "wa", "wb", "cr"):
            assert f"wall_{phase}" in row
        assert row["wall"] == profiler.wall

    def test_no_profile_no_phase_columns(self):
        sim = fig1_model().elaborate().run()
        row = run_metrics(sim)
        assert not any(key.startswith("wall_") for key in row)
