"""The per-phase profiler and its run_metrics() integration."""

import json

from repro.engine import run_metrics
from repro.observe import Profiler, ProbeSet, JsonlRecorder

from .conftest import fig1_model


class TestProfiler:
    def _profiled(self, backend="event"):
        profiler = Profiler()
        sim = fig1_model().elaborate(
            backend=backend, observe=profiler
        ).run()
        return profiler, sim

    def test_counts_steps_and_cycles(self):
        profiler, _ = self._profiled()
        assert profiler.steps == 7
        assert profiler.phase_cycles == {
            "ra": 7, "rb": 7, "cm": 7, "wa": 7, "wb": 7, "cr": 7,
        }

    def test_wall_accumulates(self):
        profiler, _ = self._profiled()
        assert profiler.wall > 0.0
        assert set(profiler.phase_wall) == {
            "ra", "rb", "cm", "wa", "wb", "cr",
        }
        assert all(secs >= 0.0 for secs in profiler.phase_wall.values())

    def test_works_on_compiled_backend(self):
        profiler, _ = self._profiled("compiled")
        assert profiler.steps == 7
        assert sum(profiler.phase_cycles.values()) == 42

    def test_summary_shape(self):
        profiler, _ = self._profiled()
        summary = profiler.summary()
        assert set(summary) == {
            "wall", "steps", "sample_every", "sampled_steps", "phases",
        }
        assert summary["sample_every"] == 1
        assert summary["sampled_steps"] == summary["steps"]
        assert list(summary["phases"]) == ["ra", "rb", "cm", "wa", "wb", "cr"]
        for row in summary["phases"].values():
            assert set(row) == {"wall", "cycles"}

    def test_to_json_parses(self):
        profiler, _ = self._profiled()
        decoded = json.loads(profiler.to_json())
        assert decoded["steps"] == 7

    def test_report_is_readable(self):
        profiler, _ = self._profiled()
        text = profiler.report()
        assert "profile:" in text
        assert "ra:" in text and "cr:" in text

    def test_reusable_across_runs(self):
        profiler = Profiler()
        fig1_model().elaborate(observe=profiler).run()
        fig1_model().elaborate(observe=profiler).run()
        assert profiler.steps == 14
        assert profiler.phase_cycles["cr"] == 14

    def test_composes_with_recorder(self):
        profiler = Profiler()
        recorder = JsonlRecorder()
        fig1_model().elaborate(
            observe=ProbeSet(recorder, profiler)
        ).run()
        assert profiler.steps == 7
        assert recorder.events[0]["event"] == "run_start"


class TestRunMetricsProfile:
    def test_profile_merges_phase_walls(self):
        profiler = Profiler()
        sim = fig1_model().elaborate(observe=profiler).run()
        row = run_metrics(sim, wall=profiler.wall, profile=profiler)
        for phase in ("ra", "rb", "cm", "wa", "wb", "cr"):
            assert f"wall_{phase}" in row
        assert row["wall"] == profiler.wall

    def test_no_profile_no_phase_columns(self):
        sim = fig1_model().elaborate().run()
        row = run_metrics(sim)
        assert not any(key.startswith("wall_") for key in row)


class TestSampling:
    def _sampled(self, every, cs_max=7):
        profiler = Profiler(sample_every=every)
        fig1_model(cs_max=cs_max).elaborate(observe=profiler).run()
        return profiler

    def test_sample_every_must_be_positive(self):
        import pytest

        with pytest.raises(ValueError):
            Profiler(sample_every=0)

    def test_every_one_profiles_everything(self):
        profiler = self._sampled(1)
        assert profiler.sampled_steps == 7
        assert sum(profiler.phase_cycles.values()) == 42

    def test_every_n_profiles_first_of_each_stride(self):
        profiler = self._sampled(3)
        # Steps 1, 4, 7 are sampled out of 7.
        assert profiler.steps == 7
        assert profiler.sampled_steps == 3
        assert sum(profiler.phase_cycles.values()) == 3 * 6
        assert all(n == 3 for n in profiler.phase_cycles.values())

    def test_stride_larger_than_run_keeps_first_step(self):
        profiler = self._sampled(100)
        assert profiler.sampled_steps == 1
        assert sum(profiler.phase_cycles.values()) == 6

    def test_wall_only_accumulates_sampled_steps(self):
        profiler = self._sampled(2)
        assert profiler.wall > 0.0
        assert all(s >= 0.0 for s in profiler.phase_wall.values())

    def test_summary_and_report_state_the_sampling(self):
        profiler = self._sampled(2)
        summary = profiler.summary()
        assert summary["sample_every"] == 2
        assert summary["sampled_steps"] == 4
        assert "every 2" in profiler.report()

    def test_sampling_identical_on_compiled_backend(self):
        event = Profiler(sample_every=3)
        fig1_model().elaborate(observe=event).run()
        compiled = Profiler(sample_every=3)
        fig1_model().elaborate(backend="compiled", observe=compiled).run()
        assert compiled.sampled_steps == event.sampled_steps
        assert compiled.phase_cycles == event.phase_cycles
