"""Tests for the asynchronous-handshake baseline."""

import pytest

from repro.handshake import (
    Channel,
    HandshakeNetwork,
    NetworkError,
    chain_expected,
    chain_fn,
    chain_network,
    chain_rt_model,
)
from repro.kernel import Simulator


class TestChannel:
    def test_single_transfer(self):
        sim = Simulator()
        ch = Channel(sim, "c")
        got = []

        def producer():
            yield from ch.put(42)

        def consumer():
            got.append((yield from ch.get()))

        sim.add_process("p", producer)
        sim.add_process("c", consumer)
        sim.run()
        assert got == [42]
        assert sim.quiescent

    def test_stream_preserves_order(self):
        sim = Simulator()
        ch = Channel(sim, "c")
        got = []

        def producer():
            for v in (1, 2, 3, 4, 5):
                yield from ch.put(v)

        def consumer():
            for _ in range(5):
                got.append((yield from ch.get()))

        sim.add_process("p", producer)
        sim.add_process("c", consumer)
        sim.run()
        assert got == [1, 2, 3, 4, 5]

    def test_consumer_first_does_not_deadlock(self):
        # Producer raises req before the consumer starts waiting; the
        # level-check idiom must prevent the classic wait-until deadlock.
        sim = Simulator()
        ch = Channel(sim, "c")
        got = []

        def producer():
            yield from ch.put(7)

        def late_consumer():
            # Burn a few deltas before listening.
            aux = sim.signal("aux", init=0)
            drv = sim.driver(aux, owner="late")
            for i in range(3):
                drv.set(i + 1)
                from repro.kernel import wait_on

                yield wait_on(aux)
            got.append((yield from ch.get()))

        sim.add_process("p", producer)
        sim.add_process("late", late_consumer)
        sim.run()
        assert got == [7]

    def test_four_phase_costs_at_least_four_deltas(self):
        sim = Simulator()
        ch = Channel(sim, "c")

        def producer():
            yield from ch.put(1)

        def consumer():
            yield from ch.get()

        sim.add_process("p", producer)
        sim.add_process("c", consumer)
        sim.run()
        assert sim.stats.delta_cycles >= 4


class TestNetwork:
    def test_binary_tree(self):
        net = HandshakeNetwork()
        net.source("a", [3])
        net.source("b", [4])
        net.source("c", [5])
        net.op("sum", lambda a, b: a + b, "a", "b")
        net.op("prod", lambda s, c: s * c, "sum", "c")
        net.sink("out", "prod")
        assert net.run()["out"] == [35]

    def test_fanout_duplicates_tokens(self):
        net = HandshakeNetwork()
        net.source("a", [10])
        net.op("twice", lambda v: v + v, "a")
        net.op("inc", lambda v: v + 1, "a")
        net.sink("o1", "twice")
        net.sink("o2", "inc")
        results = net.run()
        assert results["o1"] == [20]
        assert results["o2"] == [11]

    def test_streams_pipeline(self):
        net = HandshakeNetwork()
        net.source("a", [1, 2, 3])
        net.source("b", [10, 20, 30])
        net.op("add", lambda a, b: a + b, "a", "b")
        net.sink("out", "add")
        assert net.run()["out"] == [11, 22, 33]

    def test_duplicate_node_rejected(self):
        net = HandshakeNetwork()
        net.source("a", [1])
        with pytest.raises(NetworkError, match="duplicate"):
            net.source("a", [2])

    def test_unknown_input_rejected(self):
        net = HandshakeNetwork()
        net.op("op", lambda v: v, "ghost")
        net.sink("out", "op")
        with pytest.raises(NetworkError, match="unknown node"):
            net.run()

    def test_op_without_inputs_rejected(self):
        net = HandshakeNetwork()
        with pytest.raises(NetworkError, match="at least one input"):
            net.op("bad", lambda: 0)


class TestTwoPhaseChannel:
    def build_adder_net(self, cls):
        from repro.handshake import HandshakeNetwork

        net = HandshakeNetwork(channel_cls=cls)
        net.source("a", [1, 2, 3])
        net.source("b", [10, 20, 30])
        net.op("add", lambda a, b: a + b, "a", "b")
        net.sink("out", "add")
        return net

    def test_two_phase_delivers_tokens_in_order(self):
        from repro.handshake import TwoPhaseChannel

        results = self.build_adder_net(TwoPhaseChannel).run()
        assert results["out"] == [11, 22, 33]

    def test_two_phase_is_cheaper_than_four_phase(self):
        from repro.handshake import TwoPhaseChannel

        sims = {}
        for cls in (Channel, TwoPhaseChannel):
            sim = Simulator()
            self.build_adder_net(cls).build(sim)
            sim.run()
            sims[cls.__name__] = sim.stats
        assert sims["TwoPhaseChannel"].events < sims["Channel"].events
        assert (
            sims["TwoPhaseChannel"].delta_cycles
            < sims["Channel"].delta_cycles
        )

    def test_two_phase_single_transfer(self):
        from repro.handshake import TwoPhaseChannel

        sim = Simulator()
        ch = TwoPhaseChannel(sim, "c")
        got = []

        def producer():
            yield from ch.put(5)
            yield from ch.put(6)

        def consumer():
            got.append((yield from ch.get()))
            got.append((yield from ch.get()))

        sim.add_process("p", producer)
        sim.add_process("c", consumer)
        sim.run()
        assert got == [5, 6]
        assert sim.quiescent

    def test_no_duplicate_tokens_on_fast_consumer(self):
        # Regression: a consumer looping immediately must not re-read
        # the same token (the stale-parity bug).
        from repro.handshake import TwoPhaseChannel

        sim = Simulator()
        ch = TwoPhaseChannel(sim, "c")
        got = []

        def producer():
            for v in range(10):
                yield from ch.put(v)

        def consumer():
            while len(got) < 10:
                got.append((yield from ch.get()))

        sim.add_process("p", producer)
        sim.add_process("c", consumer)
        sim.run()
        assert got == list(range(10))


class TestChainWorkloads:
    @pytest.mark.parametrize("n", [2, 5, 16])
    def test_handshake_chain_result(self, n):
        ops = list(range(1, n + 1))
        results = chain_network(ops, chain_fn("ADD")).run()
        assert results["out"] == [chain_expected(ops)]

    @pytest.mark.parametrize("n", [2, 5, 16])
    def test_rt_chain_result(self, n):
        ops = list(range(1, n + 1))
        sim = chain_rt_model(ops).elaborate().run()
        assert sim["ACC"] == chain_expected(ops)
        assert sim.clean

    def test_chain_needs_two_operands(self):
        with pytest.raises(NetworkError):
            chain_network([1], chain_fn())
        with pytest.raises(ValueError):
            chain_rt_model([1])

    def test_both_styles_agree_on_other_ops(self):
        ops = [5, 3, 8, 2]
        hs = chain_network(ops, chain_fn("SUB")).run()["out"][0]
        rt = chain_rt_model(ops, "SUB").elaborate().run()["ACC"]
        assert hs == rt == chain_expected(ops, "SUB")
