"""Cross-cutting property tests over randomly generated RT models.

The strongest invariants of the reproduction, checked jointly on one
hypothesis-generated corpus:

* P1  a clean schedule simulates without conflicts, in exactly
      CS_MAX * 6 delta cycles, with zero physical time;
* P2  the tuple -> TRANS -> tuple round trip is the identity;
* P3  the clocked translation is per-step observationally equivalent;
* P4  the merged-phase ablation computes the same register values in
      exactly CS_MAX * 4 delta cycles;
* P5  JSON serialization round-trips and the reloaded model simulates
      identically;
* P6  VHDL emission round-trips (parse + conformance + interpreted
      simulation agree with the native elaboration);
* P7  symbolic execution, evaluated on the concrete inputs, matches
      the simulated register values.

The generator builds conflict-free schedules by construction:
dedicated buses per transfer slot, one unit issue per step, write
steps at the unit latency.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.clocked import check_equivalence
from repro.core import DISC, ModuleSpec, RTModel, RegisterTransfer
from repro.core.ablation import elaborate_merged
from repro.core.serialize import dumps, loads
from repro.core import analyze
from repro.verify import check_model_roundtrip, symbolic_run
from repro.vhdl import roundtrip_model


# ----------------------------------------------------------------------
# model generator
# ----------------------------------------------------------------------
UNIT_MENU = [
    ("ADD", ["ADD"], 1),
    ("ALU", ["ADD", "SUB"], 0),
    ("MUL", ["MULT"], 2),
]


@st.composite
def random_models(draw) -> RTModel:
    n_regs = draw(st.integers(min_value=2, max_value=5))
    n_ops = draw(st.integers(min_value=1, max_value=6))
    unit_picks = draw(
        st.lists(
            st.sampled_from(range(len(UNIT_MENU))),
            min_size=1,
            max_size=2,
            unique=True,
        )
    )
    # Each operation gets its own step window to stay conflict-free.
    max_latency = max(UNIT_MENU[i][2] for i in unit_picks)
    stride = max_latency + 1
    cs_max = n_ops * stride + 1
    model = RTModel(f"rand{n_regs}x{n_ops}", cs_max=cs_max, width=16)
    for r in range(n_regs):
        init = draw(st.integers(min_value=0, max_value=999))
        model.register(f"G{r}", init=init)
    units = []
    for index in unit_picks:
        name, ops, latency = UNIT_MENU[index]
        model.module(name, ops=ops, latency=latency)
        units.append((name, ops, latency))
    for op_index in range(n_ops):
        step = op_index * stride + 1
        name, ops, latency = draw(st.sampled_from(units))
        src1 = f"G{draw(st.integers(min_value=0, max_value=n_regs - 1))}"
        src2 = f"G{draw(st.integers(min_value=0, max_value=n_regs - 1))}"
        dest = f"G{draw(st.integers(min_value=0, max_value=n_regs - 1))}"
        op = draw(st.sampled_from(ops)) if len(ops) > 1 else None
        bus1 = model.bus(f"BA{op_index}")
        bus2 = model.bus(f"BB{op_index}")
        model.add_transfer(
            RegisterTransfer(
                src1=src1,
                bus1=bus1,
                src2=src2,
                bus2=bus2,
                read_step=step,
                module=name,
                write_step=step + latency,
                write_bus=bus1,
                dest=dest,
                op=op,
            )
        )
    return model


SETTINGS = settings(max_examples=25, deadline=None)


@SETTINGS
@given(random_models())
def test_p1_clean_schedules_simulate_cleanly(model):
    assert analyze(model).clean
    sim = model.elaborate().run()
    assert sim.clean
    assert sim.stats.delta_cycles == model.cs_max * 6
    assert sim.sim.now.time == 0


@SETTINGS
@given(random_models())
def test_p2_tuple_process_roundtrip(model):
    assert check_model_roundtrip(model).ok


@SETTINGS
@given(random_models())
def test_p3_clocked_equivalence(model):
    report = check_equivalence(model)
    assert report.equivalent, str(report)


@SETTINGS
@given(random_models())
def test_p4_merged_phase_agreement(model):
    six = model.elaborate().run()
    merged = elaborate_merged(model).run()
    assert six.registers == merged.registers
    assert merged.stats.delta_cycles == model.cs_max * 4


@SETTINGS
@given(random_models())
def test_p5_json_roundtrip(model):
    again = loads(dumps(model))
    assert again.elaborate().run().registers == model.elaborate().run().registers


@settings(max_examples=10, deadline=None)  # interpreter is slower
@given(random_models())
def test_p6_vhdl_roundtrip(model):
    assert roundtrip_model(model) == model.elaborate().run().registers


@SETTINGS
@given(random_models())
def test_p8_reschedule_preserves_results(model):
    from repro.core import reschedule

    result = reschedule(model)
    assert result.new_cs_max <= model.cs_max
    assert analyze(result.model).clean
    assert (
        result.model.elaborate().run().registers
        == model.elaborate().run().registers
    )


@SETTINGS
@given(random_models())
def test_p9_phase_accurate_equivalence(model):
    from repro.clocked import check_phase_accurate_equivalence

    report = check_phase_accurate_equivalence(model)
    assert report.equivalent, str(report)


@SETTINGS
@given(random_models())
def test_p7_symbolic_matches_concrete(model):
    inputs = {name: decl.init for name, decl in model.registers.items()}
    run = symbolic_run(model, symbolic_registers=list(model.registers))
    sim = model.elaborate().run()
    for register, value in sim.registers.items():
        if value == DISC:
            continue
        assert run.concrete(register, inputs) == value
