#!/usr/bin/env python3
"""Gate recorded benchmark speedups against the committed baseline.

Usage::

    python tools/check_bench_regression.py BASELINE.json NEW.json [--floor 0.5]

Both files are ``repro bench`` records of the same kind --
``batched-vs-sequential``, ``sharded-vs-compiled``, ``plan-cache``,
``codegen-vs-compiled`` or ``serve``.
The gate fails (exit 1) when the new speedup drops below ``floor``
times the committed baseline speedup.  A *relative* floor keeps the
gate robust to runner hardware: absolute walls vary wildly across CI
machines, but each record's speedup is a ratio measured on the same
machine in the same job, so a halving of that ratio is a genuine
regression, not noise.

``serve`` records additionally gate tail latency: the measured
``serve.p99_ms`` must stay below ``--p99-ceiling`` times the baseline
p99 (same relative-ratio rationale -- an absolute tail budget would
flake across runners, a 3x blow-up of the tail on the same machine is
a real scheduling regression).

A missing baseline file is not a failure: newly introduced benchmark
artifacts (e.g. ``BENCH_plan.json``) have no committed baseline on
older branches, so the gate prints a note and passes until one lands.

Exit codes: 0 pass (or no baseline yet), 1 regression, 2 unusable input.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

KNOWN_BENCHMARKS = (
    "batched-vs-sequential",
    "sharded-vs-compiled",
    "plan-cache",
    "codegen-vs-compiled",
    "serve",
)


def load_record(path: Path) -> tuple[str, float, dict]:
    """Return ``(benchmark_kind, speedup, record)`` for a bench record."""
    try:
        record = json.loads(path.read_text())
    except (OSError, ValueError) as exc:
        raise SystemExit(f"error: cannot read {path}: {exc}")
    kind = record.get("benchmark")
    if kind not in KNOWN_BENCHMARKS:
        raise SystemExit(
            f"error: {path} is a {kind!r} record, expected one of "
            f"{', '.join(KNOWN_BENCHMARKS)}"
        )
    speedup = record.get("speedup")
    if not isinstance(speedup, (int, float)) or speedup <= 0:
        raise SystemExit(f"error: {path} has no usable 'speedup' field")
    return kind, float(speedup), record


def serve_p99(record: dict, path: Path) -> float:
    p99 = (record.get("serve") or {}).get("p99_ms")
    if not isinstance(p99, (int, float)) or p99 <= 0:
        raise SystemExit(f"error: {path} has no usable 'serve.p99_ms' field")
    return float(p99)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("baseline", type=Path, help="committed bench record")
    parser.add_argument("new", type=Path, help="freshly measured bench record")
    parser.add_argument(
        "--floor",
        type=float,
        default=0.5,
        help="minimum allowed fraction of the baseline speedup "
        "(default: 0.5)",
    )
    parser.add_argument(
        "--p99-ceiling",
        type=float,
        default=3.0,
        help="serve records only: maximum allowed multiple of the "
        "baseline serve.p99_ms (default: 3.0)",
    )
    args = parser.parse_args(argv)

    new_kind, new, new_record = load_record(args.new)
    if not args.baseline.exists():
        print(
            f"no baseline at {args.baseline}; measured {new_kind} "
            f"speedup {new:.2f}x accepted (nothing to compare against)"
        )
        return 0
    base_kind, baseline, base_record = load_record(args.baseline)
    if base_kind != new_kind:
        raise SystemExit(
            f"error: benchmark kinds differ: baseline {args.baseline} is "
            f"{base_kind!r}, new {args.new} is {new_kind!r}"
        )
    threshold = args.floor * baseline
    ratio = new / baseline

    print(f"benchmark        : {new_kind}")
    print(f"baseline speedup : {baseline:8.2f}x  ({args.baseline})")
    print(f"measured speedup : {new:8.2f}x  ({args.new})")
    print(f"floor            : {threshold:8.2f}x  ({args.floor:.0%} of baseline)")
    failed = False
    if new < threshold:
        print(
            f"FAIL: {new_kind} speedup regressed to {ratio:.0%} of the "
            f"baseline (floor {args.floor:.0%})"
        )
        failed = True
    else:
        print(f"OK: measured speedup is {ratio:.0%} of the baseline")
    if new_kind == "serve":
        base_p99 = serve_p99(base_record, args.baseline)
        new_p99 = serve_p99(new_record, args.new)
        ceiling = args.p99_ceiling * base_p99
        print(f"baseline p99     : {base_p99:8.3f}ms")
        print(f"measured p99     : {new_p99:8.3f}ms")
        print(
            f"ceiling          : {ceiling:8.3f}ms  "
            f"({args.p99_ceiling:g}x baseline)"
        )
        if new_p99 > ceiling:
            print(
                f"FAIL: serve p99 blew up to {new_p99 / base_p99:.1f}x the "
                f"baseline (ceiling {args.p99_ceiling:g}x)"
            )
            failed = True
        else:
            print(f"OK: p99 is {new_p99 / base_p99:.1f}x the baseline")
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
