#!/usr/bin/env python3
"""Gate recorded benchmark speedups against the committed baseline.

Usage::

    python tools/check_bench_regression.py BASELINE.json NEW.json [--floor 0.5]

Both files are ``repro bench`` records of the same kind --
``batched-vs-sequential``, ``sharded-vs-compiled``, ``plan-cache`` or
``codegen-vs-compiled``.
The gate fails (exit 1) when the new speedup drops below ``floor``
times the committed baseline speedup.  A *relative* floor keeps the
gate robust to runner hardware: absolute walls vary wildly across CI
machines, but each record's speedup is a ratio measured on the same
machine in the same job, so a halving of that ratio is a genuine
regression, not noise.

A missing baseline file is not a failure: newly introduced benchmark
artifacts (e.g. ``BENCH_plan.json``) have no committed baseline on
older branches, so the gate prints a note and passes until one lands.

Exit codes: 0 pass (or no baseline yet), 1 regression, 2 unusable input.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

KNOWN_BENCHMARKS = (
    "batched-vs-sequential",
    "sharded-vs-compiled",
    "plan-cache",
    "codegen-vs-compiled",
)


def load_record(path: Path) -> tuple[str, float]:
    """Return ``(benchmark_kind, speedup)`` for a bench record."""
    try:
        record = json.loads(path.read_text())
    except (OSError, ValueError) as exc:
        raise SystemExit(f"error: cannot read {path}: {exc}")
    kind = record.get("benchmark")
    if kind not in KNOWN_BENCHMARKS:
        raise SystemExit(
            f"error: {path} is a {kind!r} record, expected one of "
            f"{', '.join(KNOWN_BENCHMARKS)}"
        )
    speedup = record.get("speedup")
    if not isinstance(speedup, (int, float)) or speedup <= 0:
        raise SystemExit(f"error: {path} has no usable 'speedup' field")
    return kind, float(speedup)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("baseline", type=Path, help="committed bench record")
    parser.add_argument("new", type=Path, help="freshly measured bench record")
    parser.add_argument(
        "--floor",
        type=float,
        default=0.5,
        help="minimum allowed fraction of the baseline speedup "
        "(default: 0.5)",
    )
    args = parser.parse_args(argv)

    new_kind, new = load_record(args.new)
    if not args.baseline.exists():
        print(
            f"no baseline at {args.baseline}; measured {new_kind} "
            f"speedup {new:.2f}x accepted (nothing to compare against)"
        )
        return 0
    base_kind, baseline = load_record(args.baseline)
    if base_kind != new_kind:
        raise SystemExit(
            f"error: benchmark kinds differ: baseline {args.baseline} is "
            f"{base_kind!r}, new {args.new} is {new_kind!r}"
        )
    threshold = args.floor * baseline
    ratio = new / baseline

    print(f"benchmark        : {new_kind}")
    print(f"baseline speedup : {baseline:8.2f}x  ({args.baseline})")
    print(f"measured speedup : {new:8.2f}x  ({args.new})")
    print(f"floor            : {threshold:8.2f}x  ({args.floor:.0%} of baseline)")
    if new < threshold:
        print(
            f"FAIL: {new_kind} speedup regressed to {ratio:.0%} of the "
            f"baseline (floor {args.floor:.0%})"
        )
        return 1
    print(f"OK: measured speedup is {ratio:.0%} of the baseline")
    return 0


if __name__ == "__main__":
    sys.exit(main())
