#!/usr/bin/env python3
"""Gate batched-backend performance against the committed baseline.

Usage::

    python tools/check_bench_regression.py BASELINE.json NEW.json [--floor 0.5]

Both files are ``repro bench`` records (``benchmark: batched-vs-sequential``).
The gate fails (exit 1) when the new batched-vs-sequential speedup drops
below ``floor`` times the committed baseline speedup.  A *relative* floor
keeps the gate robust to runner hardware: absolute walls vary wildly
across CI machines, but the batched/sequential ratio is measured on the
same machine in the same job, so a halving of that ratio is a genuine
regression in the batched table walk, not noise.

Exit codes: 0 pass, 1 regression, 2 unusable input.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path


def load_speedup(path: Path) -> float:
    try:
        record = json.loads(path.read_text())
    except (OSError, ValueError) as exc:
        raise SystemExit(f"error: cannot read {path}: {exc}")
    kind = record.get("benchmark")
    if kind != "batched-vs-sequential":
        raise SystemExit(
            f"error: {path} is a {kind!r} record, expected "
            "'batched-vs-sequential'"
        )
    speedup = record.get("speedup")
    if not isinstance(speedup, (int, float)) or speedup <= 0:
        raise SystemExit(f"error: {path} has no usable 'speedup' field")
    return float(speedup)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("baseline", type=Path, help="committed bench record")
    parser.add_argument("new", type=Path, help="freshly measured bench record")
    parser.add_argument(
        "--floor",
        type=float,
        default=0.5,
        help="minimum allowed fraction of the baseline speedup "
        "(default: 0.5)",
    )
    args = parser.parse_args(argv)

    baseline = load_speedup(args.baseline)
    new = load_speedup(args.new)
    threshold = args.floor * baseline
    ratio = new / baseline

    print(f"baseline speedup : {baseline:8.2f}x  ({args.baseline})")
    print(f"measured speedup : {new:8.2f}x  ({args.new})")
    print(f"floor            : {threshold:8.2f}x  ({args.floor:.0%} of baseline)")
    if new < threshold:
        print(
            f"FAIL: batched speedup regressed to {ratio:.0%} of the "
            f"baseline (floor {args.floor:.0%})"
        )
        return 1
    print(f"OK: measured speedup is {ratio:.0%} of the baseline")
    return 0


if __name__ == "__main__":
    sys.exit(main())
