#!/usr/bin/env python3
"""CI synthetic load against the simulation service.

Boots a :class:`repro.serve.ServeServer` on an ephemeral port, then
drives the scenario the CI ``serve`` job gates on:

* **two designs** (the paper's Fig. 1 example and a deliberate
  bus-conflict model) submitted once and hammered concurrently, so
  batches of both lanes interleave on the executor;
* **concurrent clients** (default 8) per design, coalescing into
  multi-lane sweeps -- the run fails if no sweep ever batched more
  than one lane;
* **one deadline-expired request**: a 1ms budget against a design
  whose lane is pinned behind a gathering window must come back as the
  wire-stable ``deadline`` error, not a success or a hang;
* **batched-vs-sequential identity**: every served register file and
  clean flag is compared against an in-process sequential ``compiled``
  run of the same vector.

With ``--access-log`` / ``--trace-out`` the run also validates the
observability plane end to end:

* every access-log line parses as a wide event, every load request's
  id appears **exactly once**, and no line carries an unexplained 5xx
  (the deliberate deadline 504 happens on the second, slow server);
* the Chrome trace export contains at least one coalesced sweep span
  whose ``traces`` list joins >1 request, and each of those requests
  has ``accept`` and ``queue`` spans under the same trace id, the
  queue span tagged with the sweep's batch number.

Exit codes: 0 pass, 1 any assertion failed.  Needs only the repo
(``PYTHONPATH=src``); no third-party packages.
"""

from __future__ import annotations

import argparse
import json
import random
import sys

sys.path.insert(0, "src")

from repro.core import ModuleSpec, RTModel  # noqa: E402
from repro.observe.log import parse_access_log  # noqa: E402
from repro.serve import (  # noqa: E402
    ServeClient,
    ServeClientError,
    drive_load,
    serve_in_thread,
)
from repro.serve.protocol import decode_registers  # noqa: E402

CLIENTS = 8
VECTORS = 120


def fig1_model() -> RTModel:
    model = RTModel("example", cs_max=7)
    model.register("R1", init=2)
    model.register("R2", init=3)
    model.bus("B1")
    model.bus("B2")
    model.module(ModuleSpec("ADD", latency=1))
    model.add_transfer("(R1,B1,R2,B2,5,ADD,6,B1,R1)")
    return model


def conflict_model() -> RTModel:
    model = RTModel("clash", cs_max=4)
    model.register("R1", init=1)
    model.register("R2", init=2)
    model.register("R3")
    model.bus("B1")
    model.bus("B2")
    model.module(ModuleSpec("ADD", latency=1))
    model.add_transfer("(R1,B1,R2,B2,2,ADD,3,B1,R3)")
    model.add_transfer("(R2,B1,R1,B2,2,ADD,3,B2,R3)")
    return model


def check(condition: bool, message: str) -> None:
    if not condition:
        raise AssertionError(message)


def check_access_log(path: str, expected_ids: set) -> None:
    """Parse the wide-event log; ids exactly once, no unexplained 5xx."""
    events = parse_access_log(path)  # raises on any malformed line
    seen: dict = {}
    for event in events:
        if event.get("op") == "simulate" and "id" in event:
            seen[event["id"]] = seen.get(event["id"], 0) + 1
        check(
            event.get("status", 0) < 500,
            f"unexplained 5xx in access log: {event}",
        )
    missing = expected_ids - set(seen)
    check(not missing, f"{len(missing)} request id(s) never logged: "
          f"{sorted(missing)[:5]}...")
    dupes = {k: n for k, n in seen.items() if k in expected_ids and n != 1}
    check(not dupes, f"request id(s) logged more than once: {dupes}")
    print(
        f"access log: {len(events)} wide events, "
        f"{len(expected_ids)} load ids exactly once, no unexplained 5xx"
    )


def check_trace(path: str) -> None:
    """One coalesced sweep must join >1 trace id, and each joined
    request must have accept + queue spans under that id, the queue
    span pointing at the sweep's batch."""
    with open(path, "r", encoding="utf-8") as handle:
        trace = json.load(handle)
    spans = [e for e in trace["traceEvents"] if e.get("ph") == "X"]
    by_name: dict = {}
    for span in spans:
        by_name.setdefault(span["name"], []).append(span)
    coalesced = [
        s for s in by_name.get("sweep", ())
        if len(s.get("args", {}).get("traces", ())) > 1
    ]
    check(bool(coalesced), "no sweep span coalesced more than one trace")
    sweep = coalesced[0]
    batch = sweep["args"]["batch"]
    for trace_id in sweep["args"]["traces"]:
        accepts = [
            s for s in by_name.get("accept", ())
            if s["args"].get("trace") == trace_id
        ]
        queues = [
            s for s in by_name.get("queue", ())
            if s["args"].get("trace") == trace_id
            and s["args"].get("batch") == batch
        ]
        check(bool(accepts), f"trace {trace_id}: no accept span")
        check(
            bool(queues),
            f"trace {trace_id}: no queue span joining batch {batch}",
        )
    print(
        f"trace export: {len(spans)} spans, sweep batch {batch} "
        f"coalesced {len(sweep['args']['traces'])} traced requests "
        "(accept -> queue -> sweep share trace ids)"
    )


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--access-log", default=None, metavar="PATH",
        help="run the server with a wide-event access log and validate "
        "it after the load (parses, ids exactly once, no 5xx)",
    )
    parser.add_argument(
        "--trace-out", default=None, metavar="PATH",
        help="run the server with request tracing and validate the "
        "Chrome trace export (coalesced sweep joins >1 trace id)",
    )
    args = parser.parse_args(argv)

    rng = random.Random(2026)
    designs = {"fig1": fig1_model(), "clash": conflict_model()}
    expected_ids: set = set()
    with serve_in_thread(
        access_log=args.access_log, trace_out=args.trace_out
    ) as handle:
        host, port = handle.address
        digests = {}
        with ServeClient(host, port) as client:
            for name, model in designs.items():
                digests[name] = client.submit(model)["digest"]

            # -- one deadline-expired request -------------------------
            # Pin a third design's lane behind a long window on a second
            # server so the deadline reliably expires in the queue.
            with serve_in_thread(batch_window_ms=300.0) as slow:
                with ServeClient(*slow.address) as sc:
                    slow_digest = sc.submit(fig1_model())["digest"]
                    try:
                        sc.simulate(slow_digest, deadline_ms=1.0)
                        check(False, "1ms deadline unexpectedly met")
                    except ServeClientError as exc:
                        check(
                            exc.code == "deadline",
                            f"expected 'deadline', got {exc.code!r}",
                        )
            print("deadline expiry: ok (wire-stable 504 'deadline' record)")

        # -- concurrent load on both designs -------------------------
        for name, model in designs.items():
            vectors = [
                {
                    reg: rng.randrange(0, 1 << model.width)
                    for reg in model.registers
                }
                for _ in range(VECTORS)
            ]
            results: dict = {}
            load = drive_load(
                host, port, digests[name], vectors,
                clients=CLIENTS, results=results, id_prefix=f"{name}-",
            )
            expected_ids.update(f"{name}-{i}" for i in range(len(vectors)))
            check(
                load["errors"] == 0,
                f"{name}: {load['errors']} request(s) failed "
                f"({load['error_codes']})",
            )
            # batched-vs-sequential identity, every vector
            mismatched = 0
            for i, vector in enumerate(vectors):
                sim = model.elaborate(
                    register_values=vector, backend="compiled"
                ).run()
                got = results.get(f"{name}-{i}")
                if (
                    got is None
                    or decode_registers(got["registers"]) != sim.registers
                    or got["clean"] != sim.clean
                ):
                    mismatched += 1
            check(mismatched == 0, f"{name}: {mismatched} lane(s) differ")
            print(
                f"{name}: {VECTORS} requests x {CLIENTS} clients, "
                f"{load['rps']:,.0f} req/s, p99 {load['p99_ms']}ms, "
                "identity ok"
            )

        stats = handle.server.engine.stats()
    check(
        stats["batch_mean"] > 1.0,
        f"no coalescing happened (batch_mean={stats['batch_mean']})",
    )
    print(
        f"scheduler: {stats['sweeps']} sweeps, "
        f"{stats['lanes_swept']} lanes, mean batch {stats['batch_mean']}"
    )
    # -- observability validation (after close(): log flushed, trace
    # written) -----------------------------------------------------------
    if args.access_log:
        check_access_log(args.access_log, expected_ids)
    if args.trace_out:
        check_trace(args.trace_out)
    print("serve load smoke: PASS")
    return 0


if __name__ == "__main__":
    try:
        sys.exit(main())
    except AssertionError as exc:
        print(f"serve load smoke: FAIL -- {exc}", file=sys.stderr)
        sys.exit(1)
