#!/usr/bin/env python3
"""CI synthetic load against the simulation service.

Boots a :class:`repro.serve.ServeServer` on an ephemeral port, then
drives the scenario the CI ``serve`` job gates on:

* **two designs** (the paper's Fig. 1 example and a deliberate
  bus-conflict model) submitted once and hammered concurrently, so
  batches of both lanes interleave on the executor;
* **concurrent clients** (default 8) per design, coalescing into
  multi-lane sweeps -- the run fails if no sweep ever batched more
  than one lane;
* **one deadline-expired request**: a 1ms budget against a design
  whose lane is pinned behind a gathering window must come back as the
  wire-stable ``deadline`` error, not a success or a hang;
* **batched-vs-sequential identity**: every served register file and
  clean flag is compared against an in-process sequential ``compiled``
  run of the same vector.

Exit codes: 0 pass, 1 any assertion failed.  Needs only the repo
(``PYTHONPATH=src``); no third-party packages.
"""

from __future__ import annotations

import random
import sys

sys.path.insert(0, "src")

from repro.core import ModuleSpec, RTModel  # noqa: E402
from repro.serve import (  # noqa: E402
    ServeClient,
    ServeClientError,
    drive_load,
    serve_in_thread,
)
from repro.serve.protocol import decode_registers  # noqa: E402

CLIENTS = 8
VECTORS = 120


def fig1_model() -> RTModel:
    model = RTModel("example", cs_max=7)
    model.register("R1", init=2)
    model.register("R2", init=3)
    model.bus("B1")
    model.bus("B2")
    model.module(ModuleSpec("ADD", latency=1))
    model.add_transfer("(R1,B1,R2,B2,5,ADD,6,B1,R1)")
    return model


def conflict_model() -> RTModel:
    model = RTModel("clash", cs_max=4)
    model.register("R1", init=1)
    model.register("R2", init=2)
    model.register("R3")
    model.bus("B1")
    model.bus("B2")
    model.module(ModuleSpec("ADD", latency=1))
    model.add_transfer("(R1,B1,R2,B2,2,ADD,3,B1,R3)")
    model.add_transfer("(R2,B1,R1,B2,2,ADD,3,B2,R3)")
    return model


def check(condition: bool, message: str) -> None:
    if not condition:
        raise AssertionError(message)


def main() -> int:
    rng = random.Random(2026)
    designs = {"fig1": fig1_model(), "clash": conflict_model()}
    with serve_in_thread() as handle:
        host, port = handle.address
        digests = {}
        with ServeClient(host, port) as client:
            for name, model in designs.items():
                digests[name] = client.submit(model)["digest"]

            # -- one deadline-expired request -------------------------
            # Pin a third design's lane behind a long window on a second
            # server so the deadline reliably expires in the queue.
            with serve_in_thread(batch_window_ms=300.0) as slow:
                with ServeClient(*slow.address) as sc:
                    slow_digest = sc.submit(fig1_model())["digest"]
                    try:
                        sc.simulate(slow_digest, deadline_ms=1.0)
                        check(False, "1ms deadline unexpectedly met")
                    except ServeClientError as exc:
                        check(
                            exc.code == "deadline",
                            f"expected 'deadline', got {exc.code!r}",
                        )
            print("deadline expiry: ok (wire-stable 504 'deadline' record)")

        # -- concurrent load on both designs -------------------------
        for name, model in designs.items():
            vectors = [
                {
                    reg: rng.randrange(0, 1 << model.width)
                    for reg in model.registers
                }
                for _ in range(VECTORS)
            ]
            results: dict = {}
            load = drive_load(
                host, port, digests[name], vectors,
                clients=CLIENTS, results=results,
            )
            check(
                load["errors"] == 0,
                f"{name}: {load['errors']} request(s) failed "
                f"({load['error_codes']})",
            )
            # batched-vs-sequential identity, every vector
            mismatched = 0
            for i, vector in enumerate(vectors):
                sim = model.elaborate(
                    register_values=vector, backend="compiled"
                ).run()
                got = results.get(i)
                if (
                    got is None
                    or decode_registers(got["registers"]) != sim.registers
                    or got["clean"] != sim.clean
                ):
                    mismatched += 1
            check(mismatched == 0, f"{name}: {mismatched} lane(s) differ")
            print(
                f"{name}: {VECTORS} requests x {CLIENTS} clients, "
                f"{load['rps']:,.0f} req/s, p99 {load['p99_ms']}ms, "
                "identity ok"
            )

        stats = handle.server.engine.stats()
    check(
        stats["batch_mean"] > 1.0,
        f"no coalescing happened (batch_mean={stats['batch_mean']})",
    )
    print(
        f"scheduler: {stats['sweeps']} sweeps, "
        f"{stats['lanes_swept']} lanes, mean batch {stats['batch_mean']}"
    )
    print("serve load smoke: PASS")
    return 0


if __name__ == "__main__":
    try:
        sys.exit(main())
    except AssertionError as exc:
        print(f"serve load smoke: FAIL -- {exc}", file=sys.stderr)
        sys.exit(1)
